//! Property tests: the analyzer's static verdicts must agree with the
//! runtime behavior of the transforms they describe, over random grids,
//! cluster counts and every indexing variant.

use cta_analyzer::diag::Report;
use cta_analyzer::transform;
use cta_clustering::{rr_binding, rr_unbinding, Indexing, Partition};
use gpu_sim::Dim3;
use proptest::prelude::*;

/// Runtime ground truth: exhaustively checks Eq. 3–5 on `p` the way the
/// redirection/agent kernels consume it — round-trips, balance, coverage.
fn runtime_invariants_hold(p: &Partition) -> bool {
    let total = p.total();
    let m = p.num_clusters();
    // Balance (Eq. 5).
    let small = total / m;
    let extra = total % m;
    let mut sum = 0;
    for i in 0..m {
        let expect = small + u64::from(i < extra);
        if p.cluster_size(i) != expect {
            return false;
        }
        sum += p.cluster_size(i);
    }
    if sum != total {
        return false;
    }
    // Mutual inversion + coverage, both directions (f(v) = (w, i)).
    let mut covered = vec![false; total as usize];
    for v in 0..total {
        let (w, i) = p.assign(v);
        if i >= m || w >= p.cluster_size(i) || p.invert(w, i) != v {
            return false;
        }
    }
    for i in 0..m {
        for w in 0..p.cluster_size(i) {
            let v = p.invert(w, i);
            if v >= total
                || p.assign(v) != (w, i)
                || std::mem::replace(&mut covered[v as usize], true)
            {
                return false;
            }
        }
    }
    covered.into_iter().all(|c| c)
}

/// Deterministic permutation of `0..n` parameterized by `(mul, add)` —
/// enough variety to exercise `Indexing::Custom` without an RNG inside
/// the strategy output.
fn permutation(n: u64, mul: u64, add: u64) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n).collect();
    // A multiplicative shuffle: sort by a keyed mix of the id.
    order.sort_by_key(|&v| (v.wrapping_mul(2 * mul + 1).wrapping_add(add)) % (2 * n + 1));
    order
}

fn indexing_for(n: u64, kind: u8, a: u64, b: u64) -> Indexing {
    match kind {
        0 => Indexing::RowMajor,
        1 => Indexing::ColMajor,
        2 => Indexing::Tile {
            tile_x: (a % 7 + 1) as u32,
            tile_y: (b % 7 + 1) as u32,
        },
        _ => Indexing::Custom(permutation(n, a, b)),
    }
}

proptest! {
    #[test]
    fn analyzer_partition_verdict_matches_runtime(
        (nx, ny, m, kind, a, b) in (1u64..28, 1u64..28, 1u64..40, 0u8..4, 0u64..64, 0u64..64)
    ) {
        let grid = Dim3::new(nx as u32, ny as u32, 1);
        let indexing = indexing_for(nx * ny, kind, a, b);
        let p = match Partition::new(grid, m, indexing) {
            Ok(p) => p,
            // Construction refused the geometry; nothing to compare.
            Err(_) => return Ok(()),
        };

        let mut report = Report::new();
        transform::check_partition(&p, "prop", &mut report);
        let static_clean = report.deny_count() == 0;
        let runtime_clean = runtime_invariants_hold(&p);

        prop_assert!(
            static_clean == runtime_clean,
            "static {static_clean} vs runtime {runtime_clean}: grid {nx}x{ny} m {m} kind {kind} a {a} b {b}\n{}",
            report.render_human()
        );
        prop_assert!(
            static_clean,
            "real Partition must verify cleanly: {}",
            report.render_human()
        );
    }

    /// Sampled round-trips on grids whose CTA count sits at the very top
    /// of the u64 domain — exactly where the closed forms of Eqs. 4–7
    /// need their u128 intermediates (the symbolic proof in
    /// `cta_analyzer::absint` covers the same regime; this is its
    /// concrete witness). Exhaustive checking is impossible here, so the
    /// test drives `assign`/`invert` at the structural corners: id 0, the
    /// `extra * big` big/small-cluster boundary, and `|V| - 1`.
    #[test]
    fn partition_round_trips_at_the_top_of_u64(
        (dx, dy, msel, col, vsel) in
            (0u32..9, 0u32..9, 0u8..7, 0u8..2, 0u8..8)
    ) {
        let col = col == 1;
        let grid = Dim3::plane(u32::MAX - dx, u32::MAX - dy);
        let total = grid.count();
        let m = match msel {
            0 => 1,
            1 => 2,
            2 => 3,
            3 => total / 2 + 1, // small == 1, extra huge
            4 => total - 1,     // one big cluster, the rest size 1
            5 => total,         // every cluster size 1
            _ => total / 3,
        };
        let p = if col { Partition::x(grid, m) } else { Partition::y(grid, m) }
            .expect("huge plane grids are valid partitions");

        let small = total / m;
        let extra = total % m;
        let boundary = u128::from(extra) * (u128::from(small) + 1);
        let bnd = boundary.min(u128::from(total) - 1) as u64;
        let v = match vsel {
            0 => 0,
            1 => 1,
            2 => total - 1,
            3 => total / 2,
            4 => bnd.saturating_sub(1),
            5 => bnd,
            6 => (bnd + 1).min(total - 1),
            _ => total - 2,
        };

        let (w, i) = p.assign(v);
        prop_assert!(i < m, "cluster id out of range: v={v} -> (w={w}, i={i}), m={m}");
        prop_assert!(
            w < p.cluster_size(i),
            "position out of range: v={v} -> (w={w}, i={i}), |C_i|={}",
            p.cluster_size(i)
        );
        prop_assert_eq!(p.invert(w, i), v);
    }

    /// The other direction at the top of the domain: `f(f⁻¹(w, i)) = (w, i)`
    /// for cluster coordinates sampled at the extra/small crossover and at
    /// both ends of each cluster.
    #[test]
    fn inversion_round_trips_at_the_top_of_u64(
        (dx, dy, msel, col, isel, wend) in
            (0u32..9, 0u32..9, 0u8..5, 0u8..2, 0u8..5, 0u8..2)
    ) {
        let (col, wend) = (col == 1, wend == 1);
        let grid = Dim3::plane(u32::MAX - dx, u32::MAX - dy);
        let total = grid.count();
        let m = match msel {
            0 => 1,
            1 => 2,
            2 => total / 2 + 1,
            3 => total - 1,
            _ => total,
        };
        let p = if col { Partition::x(grid, m) } else { Partition::y(grid, m) }
            .expect("huge plane grids are valid partitions");

        let extra = total % m;
        let i = match isel {
            0 => 0,
            1 => extra.saturating_sub(1).min(m - 1), // last big cluster
            2 => extra.min(m - 1),                   // first small cluster
            3 => m / 2,
            _ => m - 1,
        };
        let sz = p.cluster_size(i);
        if sz == 0 {
            // Empty tail cluster (m == total with extra == 0 never hits
            // this, but guard anyway): nothing to invert.
            return Ok(());
        }
        let w = if wend { sz - 1 } else { 0 };

        let v = p.invert(w, i);
        prop_assert!(v < total, "f^-1({w}, {i}) = {v} escapes the grid");
        prop_assert_eq!(p.assign(v), (w, i));
    }

    /// Round-robin binding (Eq. 6) and its inversion must agree right up
    /// to `u64::MAX`, and the inversion must *refuse* coordinates whose
    /// recomposition would wrap instead of aliasing them onto small ids.
    #[test]
    fn rr_binding_round_trips_at_the_top_of_u64(
        (du, msel) in (0u64..4096, 0u8..6)
    ) {
        let u = u64::MAX - du;
        let m = match msel {
            0 => 1,
            1 => 2,
            2 => 3,
            3 => u64::MAX,
            4 => u / 2 + 1,
            _ => 1 << 40,
        };
        let (w, i) = rr_binding(u, m);
        prop_assert!(i < m);
        prop_assert_eq!(rr_unbinding(w, i, m), Some(u));
        // An in-cluster index at or beyond the stride is malformed.
        prop_assert_eq!(rr_unbinding(w, m, m), None);
    }

    /// `rr_unbinding` on a window index past the top of the domain: for
    /// any stride `m >= 2`, `w = u64::MAX / m + 1` recomposes past
    /// `u64::MAX` for every residue, so the checked arithmetic must
    /// report `None` rather than a wrapped id.
    #[test]
    fn rr_unbinding_refuses_overflow(
        (m, iseed) in (2u64..u64::MAX, 0u64..u64::MAX)
    ) {
        let w = u64::MAX / m + 1;
        prop_assert_eq!(rr_unbinding(w, iseed % m, m), None);
    }

    #[test]
    fn clamp_is_idempotent_and_in_range(
        (active, max) in (0u32..2000, 0u32..64)
    ) {
        let c = cta_clustering::clamp_active_agents(active, max);
        prop_assert!(c >= 1);
        prop_assert!(c <= max.max(1));
        prop_assert_eq!(c, cta_clustering::clamp_active_agents(c, max));
        // In-range requests pass through untouched.
        if (1..=max.max(1)).contains(&active) {
            prop_assert_eq!(c, active);
        }
    }
}
