//! Pass family 3: optimization-plan audit.
//!
//! Cross-checks a [`Plan`] (the Figure 11 framework's output) against the
//! statically re-derived locality profile: the plan must not exploit
//! unexploitable locality, must not bypass reused arrays, must not
//! prefetch where clustering already wins, and must keep its throttle
//! inside the occupancy bound.

use crate::diag::{
    Report, DEGENERATE_CACHE_GEOMETRY, PLAN_BYPASS_REUSED_TAG, PLAN_EXPLOITS_UNEXPLOITABLE,
    PLAN_PREFETCH_ON_EXPLOITABLE, SERVED_PLAN_FAILS_AUDIT, STATIC_CATEGORY_MISMATCH,
    THROTTLE_CLAMPED, THROTTLE_EXCEEDS_OCCUPANCY,
};
use crate::profile::StaticProfile;
use cta_clustering::{clamp_active_agents, Plan};
use gpu_sim::{CacheConfig, GpuConfig};

/// A bypassed tag with at least this static word-reuse rate is flagged.
const BYPASS_TAG_REUSE_MAX: f64 = 0.05;

/// Audits `plan` against the static `profile` and the occupancy-derived
/// `max_agents`, emitting CL026/CL027 and CL030–CL033.
pub fn audit(
    plan: &Plan,
    profile: &StaticProfile,
    max_agents: u32,
    subject: &str,
    report: &mut Report,
) {
    report.note_subject();

    // CL030: the category the plan is predicated on must match what the
    // address streams say. Warn-level: threshold effects on borderline
    // kernels are expected, a disagreement is a review prompt.
    let static_cat = profile.category;
    if static_cat != plan.category {
        report.emit(
            &STATIC_CATEGORY_MISMATCH,
            subject,
            format!(
                "plan says {}, static address streams classify as {static_cat}",
                plan.category
            ),
        );
    }

    // CL031: an exploit plan over a category the paper calls
    // unexploitable is self-contradictory (Figure 5's decision table).
    if plan.exploit_locality && !plan.category.exploitable() {
        report.emit(
            &PLAN_EXPLOITS_UNEXPLOITABLE,
            subject,
            format!(
                "plan exploits locality but its category is {}",
                plan.category
            ),
        );
    }

    // CL032: bypassing an array whose accesses carry word reuse defeats
    // the bypass's purpose — the L1 was serving those hits.
    let mut reused: Vec<String> = Vec::new();
    for &tag in &plan.bypass {
        let s = profile.tag_summary(tag);
        if s.reuse_rate() >= BYPASS_TAG_REUSE_MAX {
            reused.push(format!(
                "tag {tag}: {:.0}% word reuse over {} accesses",
                s.reuse_rate() * 100.0,
                s.accesses
            ));
        }
    }
    if !reused.is_empty() {
        report.emit(&PLAN_BYPASS_REUSED_TAG, subject, reused.join("; "));
    }

    // CL033: prefetching exists to salvage unexploitable kernels (§4.3);
    // on an exploit plan it competes with the locality it should yield to.
    if plan.prefetch > 0 && plan.exploit_locality {
        report.emit(
            &PLAN_PREFETCH_ON_EXPLOITABLE,
            subject,
            format!(
                "prefetch depth {} on an exploit plan (category {})",
                plan.prefetch, plan.category
            ),
        );
    }

    // CL026/CL027: throttle vs occupancy. An out-of-range request is
    // repaired at apply time by `clamp_active_agents`; the deny lint
    // fires only if the repair would *not* restore validity (impossible
    // by construction — kept as the analyzer's own consistency check),
    // the warn lint whenever the repair changes the request.
    if let Some(active) = plan.active_agents {
        let clamped = clamp_active_agents(active, max_agents);
        if clamped == 0 || clamped > max_agents {
            report.emit(
                &THROTTLE_EXCEEDS_OCCUPANCY,
                subject,
                format!(
                    "ACTIVE_AGENTS = {active} not repairable against MAX_AGENTS = {max_agents}"
                ),
            );
        } else if clamped != active {
            report.emit(
                &THROTTLE_CLAMPED,
                subject,
                format!("requested ACTIVE_AGENTS = {active}, runtime clamps to {clamped} (MAX_AGENTS = {max_agents})"),
            );
        }
    }

    // Note: a bypass list on an unexploitable plan is deliberately not a
    // lint of its own — streaming kernels have nothing to protect in L1,
    // and the other unexploitable categories are already covered by
    // CL032 through their per-tag reuse rates.
}

/// Gate form of [`audit`] for the serving layer: runs the full plan
/// audit into a scratch report and collapses any deny-level finding
/// into one CL401 against `subject`, returning `true` when the plan is
/// clean enough to serve. Warn-level findings (category mismatch,
/// clamped throttle) are forwarded verbatim — they annotate but do not
/// block a response; deny-level ones mean the plan must not leave the
/// server. `cta-serve` runs every response through this before it is
/// written, and the serve test-suite re-audits golden fixtures with it.
pub fn audit_served(
    plan: &Plan,
    profile: &StaticProfile,
    max_agents: u32,
    subject: &str,
    report: &mut Report,
) -> bool {
    let mut scratch = Report::new();
    audit(plan, profile, max_agents, subject, &mut scratch);
    report.note_subject();
    let denies: Vec<String> = scratch
        .diagnostics()
        .iter()
        .filter(|d| d.level == crate::diag::Level::Deny)
        .map(|d| format!("{}: {}", d.code, d.message))
        .collect();
    let clean = denies.is_empty();
    for d in scratch.diagnostics() {
        if d.level != crate::diag::Level::Deny {
            report.emit(
                crate::diag::lint_by_code(d.code).expect("audit emits registered lints"),
                subject,
                d.message.clone(),
            );
        }
    }
    if !clean {
        report.emit(&SERVED_PLAN_FAILS_AUDIT, subject, denies.join("; "));
    }
    clean
}

/// Audits the cache geometry a plan will run on, emitting CL034 for
/// shapes the engine cannot model sanely: a sector size that does not
/// evenly split the line (or splits it into more sectors than the `u32`
/// state masks hold), an aggregated-tag array over a non-power-of-two
/// bank/sector split, or an array whose size, line and associativity
/// leave zero sets. The engine's constructors panic on these; the lint
/// turns that panic into an analyze-gate failure at plan-audit time.
pub fn check_cache_geometry(cfg: &GpuConfig, subject: &str, report: &mut Report) {
    let mut check = |level: &str, c: &CacheConfig, split: u32, split_what: &str| {
        // The engine carves the configured array into `split` equal
        // sub-arrays (L1 CTA-slot sectors, L2 banks) before computing
        // sets, so the degenerate-set check applies to the carved size.
        let sub_bytes = c.size_bytes.checked_div(split).unwrap_or(0);
        let line_cost = c.line_bytes.saturating_mul(c.associativity);
        if split == 0 || line_cost == 0 || sub_bytes / line_cost == 0 {
            report.emit(
                &DEGENERATE_CACHE_GEOMETRY,
                subject,
                format!(
                    "{level}: {sub_bytes}B per {split_what} holds zero sets \
                     of {}B lines x {} ways",
                    c.line_bytes, c.associativity
                ),
            );
        }
        if c.sector_bytes != 0 {
            if !c.sector_bytes.is_power_of_two() || !c.line_bytes.is_multiple_of(c.sector_bytes) {
                report.emit(
                    &DEGENERATE_CACHE_GEOMETRY,
                    subject,
                    format!(
                        "{level}: sector size {}B does not evenly split the {}B line",
                        c.sector_bytes, c.line_bytes
                    ),
                );
            } else if c.line_bytes / c.sector_bytes > 32 {
                report.emit(
                    &DEGENERATE_CACHE_GEOMETRY,
                    subject,
                    format!(
                        "{level}: {} sectors per line exceed the 32-bit sector state masks",
                        c.line_bytes / c.sector_bytes
                    ),
                );
            }
        }
        if c.aggregated_tags && !split.is_power_of_two() {
            report.emit(
                &DEGENERATE_CACHE_GEOMETRY,
                subject,
                format!(
                    "{level}: aggregated tag array over {split} {split_what}s \
                     needs a power-of-two split"
                ),
            );
        }
    };
    check("L1", &cfg.l1, cfg.l1_sectors, "sector array");
    check("L2", &cfg.l2, cfg.timings.l2_banks, "bank");
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_clustering::Axis;
    use gpu_sim::{arch, CtaContext, Dim3, KernelSpec, LaunchConfig, MemAccess, Op, Program};
    use locality::Category;

    /// CTAs re-read a shared table (tag 0) and stream tag 1.
    #[derive(Debug, Clone)]
    struct Shared;

    impl KernelSpec for Shared {
        fn name(&self) -> String {
            "shared".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(16), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(1, (1 << 30) + ctx.cta * 128, 32, 4)),
            ]
        }
    }

    fn profile() -> StaticProfile {
        StaticProfile::collect(&Shared, &arch::gtx570())
    }

    fn exploit_plan() -> Plan {
        Plan {
            category: Category::Algorithm,
            axis: Axis::Y,
            exploit_locality: true,
            active_agents: Some(4),
            bypass: vec![1],
            prefetch: 0,
        }
    }

    #[test]
    fn consistent_plan_is_clean() {
        let p = profile();
        assert_eq!(p.category, Category::Algorithm);
        let mut r = Report::new();
        audit(&exploit_plan(), &p, 8, "t", &mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert_eq!(r.warn_count(), 0);
    }

    #[test]
    fn category_mismatch_fires_cl030() {
        let mut plan = exploit_plan();
        plan.category = Category::CacheLine;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&STATIC_CATEGORY_MISMATCH));
        assert_eq!(r.deny_count(), 0, "mismatch is warn-level");
    }

    #[test]
    fn exploiting_streaming_fires_cl031() {
        let mut plan = exploit_plan();
        plan.category = Category::Streaming;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_EXPLOITS_UNEXPLOITABLE));
    }

    #[test]
    fn bypassing_reused_tag_fires_cl032() {
        let mut plan = exploit_plan();
        plan.bypass = vec![0]; // the shared table
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_BYPASS_REUSED_TAG), "{}", r.render_human());
    }

    #[test]
    fn prefetch_on_exploit_plan_fires_cl033() {
        let mut plan = exploit_plan();
        plan.prefetch = 2;
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&PLAN_PREFETCH_ON_EXPLOITABLE));
    }

    #[test]
    fn sane_preset_geometries_pass_cl034() {
        let mut r = Report::new();
        for cfg in arch::all_presets() {
            check_cache_geometry(&cfg, &cfg.name.clone(), &mut r);
            check_cache_geometry(&arch::ata_variant(cfg), "ata", &mut r);
        }
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
    }

    #[test]
    fn sector_not_dividing_line_fires_cl034() {
        let mut cfg = arch::gtx570();
        cfg.l1.sector_bytes = 48; // non-pow2, does not divide 128
        let mut r = Report::new();
        check_cache_geometry(&cfg, "t", &mut r);
        assert!(r.has(&DEGENERATE_CACHE_GEOMETRY), "{}", r.render_human());
    }

    #[test]
    fn oversplit_sectors_fire_cl034() {
        let mut cfg = arch::gtx570();
        cfg.l1.line_bytes = 128;
        cfg.l1.sector_bytes = 2; // 64 sectors: exceeds the u32 masks
        let mut r = Report::new();
        check_cache_geometry(&cfg, "t", &mut r);
        assert!(r.has(&DEGENERATE_CACHE_GEOMETRY));
    }

    #[test]
    fn ata_over_non_pow2_banks_fires_cl034() {
        let mut cfg = arch::gtx570(); // 6 L2 banks
        cfg.l2.aggregated_tags = true;
        let mut r = Report::new();
        check_cache_geometry(&cfg, "t", &mut r);
        assert!(r.has(&DEGENERATE_CACHE_GEOMETRY), "{}", r.render_human());
        // The same flag over the power-of-two L1 sector split is fine.
        let mut ok = Report::new();
        check_cache_geometry(&arch::ata_variant(arch::gtx570()), "t", &mut ok);
        assert_eq!(ok.deny_count(), 0);
    }

    #[test]
    fn zero_set_config_fires_cl034() {
        let mut cfg = arch::gtx570();
        cfg.l1.size_bytes = 256; // under one 128B line x 4 ways
        let mut r = Report::new();
        check_cache_geometry(&cfg, "t", &mut r);
        assert!(r.has(&DEGENERATE_CACHE_GEOMETRY), "{}", r.render_human());
    }

    #[test]
    fn audit_served_passes_clean_plan() {
        let mut r = Report::new();
        assert!(audit_served(&exploit_plan(), &profile(), 8, "t", &mut r));
        assert!(!r.has(&SERVED_PLAN_FAILS_AUDIT));
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.subjects_checked(), 1);
    }

    #[test]
    fn audit_served_collapses_denies_into_cl401() {
        let mut plan = exploit_plan();
        plan.category = Category::Streaming; // CL031 (deny)
        plan.bypass = vec![0]; // CL032 (deny)
        let mut r = Report::new();
        assert!(!audit_served(&plan, &profile(), 8, "t", &mut r));
        assert!(r.has(&SERVED_PLAN_FAILS_AUDIT), "{}", r.render_human());
        assert_eq!(r.deny_count(), 1, "denies collapse into one CL401");
        let diags = r.diagnostics();
        let cl401 = diags.iter().find(|d| d.code == "CL401").unwrap();
        assert!(cl401.message.contains("CL031"), "{}", cl401.message);
        assert!(cl401.message.contains("CL032"), "{}", cl401.message);
    }

    #[test]
    fn audit_served_forwards_warns_without_cl401() {
        let mut plan = exploit_plan();
        plan.active_agents = Some(100); // CL027 (warn) after clamping
        let mut r = Report::new();
        assert!(audit_served(&plan, &profile(), 8, "t", &mut r));
        assert!(r.has(&THROTTLE_CLAMPED), "{}", r.render_human());
        assert!(!r.has(&SERVED_PLAN_FAILS_AUDIT));
        assert_eq!(r.deny_count(), 0);
    }

    #[test]
    fn clamped_throttle_fires_cl027_not_cl026() {
        let mut plan = exploit_plan();
        plan.active_agents = Some(100);
        let mut r = Report::new();
        audit(&plan, &profile(), 8, "t", &mut r);
        assert!(r.has(&THROTTLE_CLAMPED));
        assert!(!r.has(&THROTTLE_EXCEEDS_OCCUPANCY));
        assert_eq!(r.deny_count(), 0, "a repairable request is warn-level");
    }
}
