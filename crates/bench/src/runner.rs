//! Shared harness machinery: the optimization variants of Figure 12/13
//! and the code that runs a workload under each of them.

use cta_clustering::{AgentKernel, BypassKernel, Framework, Partition, RedirectionKernel};
use gpu_kernels::{PartitionHint, Workload};
use gpu_sim::{ArrayTag, CtaContext, GpuConfig, KernelSpec, LaunchConfig, Program, RunStats, Simulation};
use std::rc::Rc;

/// A cloneable handle to a boxed workload, so the clustering transforms
/// (which need `Clone`) can wrap suite entries.
#[derive(Clone)]
pub struct SharedKernel(Rc<Box<dyn Workload>>);

impl SharedKernel {
    /// Wraps a suite workload.
    pub fn new(w: Box<dyn Workload>) -> Self {
        SharedKernel(Rc::new(w))
    }

    /// The workload's Table 2 metadata.
    pub fn info(&self) -> gpu_kernels::WorkloadInfo {
        self.0.info()
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedKernel({})", self.0.name())
    }
}

impl KernelSpec for SharedKernel {
    fn name(&self) -> String {
        self.0.name()
    }
    fn launch(&self) -> LaunchConfig {
        self.0.launch()
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        self.0.warp_program(ctx, warp)
    }
}

/// The evaluated configurations, matching the series of Figures 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `BSL` — unmodified kernel under the default scheduler.
    Baseline,
    /// `RD` — redirection-based clustering.
    Redirection,
    /// `CLU` — agent-based clustering, all agents active.
    Clustering,
    /// `CLU+TOT` — agent-based clustering at the optimal throttling
    /// degree (selected by sweep, as the paper's dynamic voting does).
    ClusteringThrottled,
    /// `CLU+TOT+BPS` — adds L1 bypassing of streaming arrays.
    ClusteringThrottledBypass,
    /// `PFH+TOT` — clustering used only to reshape the CTA order,
    /// plus cross-CTA prefetching (the path for apps without
    /// exploitable inter-CTA locality).
    PrefetchThrottled,
}

impl Variant {
    /// The paper's series label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "BSL",
            Variant::Redirection => "RD",
            Variant::Clustering => "CLU",
            Variant::ClusteringThrottled => "CLU+TOT",
            Variant::ClusteringThrottledBypass => "CLU+TOT+BPS",
            Variant::PrefetchThrottled => "PFH+TOT",
        }
    }

    /// All variants in figure order.
    pub const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::Redirection,
        Variant::Clustering,
        Variant::ClusteringThrottled,
        Variant::ClusteringThrottledBypass,
        Variant::PrefetchThrottled,
    ];
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The partition the workload's Table 2 hint selects.
pub fn hinted_partition(kernel: &SharedKernel, cfg: &GpuConfig) -> Partition {
    let grid = kernel.launch().grid;
    let m = cfg.num_sms as u64;
    match kernel.info().partition {
        PartitionHint::X => Partition::x(grid, m),
        PartitionHint::Y => Partition::y(grid, m),
    }
    .expect("suite grids are partitionable")
}

/// Results of one workload under every variant on one GPU.
#[derive(Debug, Clone)]
pub struct AppEvaluation {
    /// Table 2 metadata of the workload.
    pub info: gpu_kernels::WorkloadInfo,
    /// Per-variant stats, in [`Variant::ALL`] order.
    pub runs: Vec<(Variant, RunStats)>,
    /// The throttling degree the sweep selected.
    pub chosen_agents: u32,
}

impl AppEvaluation {
    /// Stats of one variant.
    pub fn stats(&self, v: Variant) -> &RunStats {
        &self.runs.iter().find(|(rv, _)| *rv == v).expect("variant present").1
    }

    /// Speedup of `v` over baseline.
    pub fn speedup(&self, v: Variant) -> f64 {
        self.stats(v).speedup_vs(self.stats(Variant::Baseline))
    }

    /// Normalized L2 transactions of `v` (baseline = 1.0).
    pub fn l2_norm(&self, v: Variant) -> f64 {
        self.stats(v).l2_txns_vs(self.stats(Variant::Baseline))
    }
}

/// Evaluates one workload under all six variants on `base_cfg`.
///
/// The GPU is configured `cudaFuncCachePreferL1`-style on the
/// configurable architectures (uniformly, including the baseline).
/// `CLU+TOT` sweeps the throttling degree over a small candidate set —
/// always including Table 2's published optimum — and keeps the fastest,
/// mirroring how the paper selected its "Opt Agents" empirically.
pub fn evaluate_app(base_cfg: &GpuConfig, workload: Box<dyn Workload>) -> AppEvaluation {
    let kernel = SharedKernel::new(workload);
    let info = kernel.info();
    let cfg = base_cfg.prefer_l1(kernel.launch().smem_per_cta);
    let mut runs = Vec::new();

    let baseline = Simulation::new(cfg.clone(), &kernel).run().expect("baseline run");
    runs.push((Variant::Baseline, baseline));

    let rd = RedirectionKernel::new(kernel.clone(), hinted_partition(&kernel, &cfg));
    runs.push((Variant::Redirection, Simulation::new(cfg.clone(), &rd).run().expect("RD run")));

    let agents = AgentKernel::with_partition(kernel.clone(), &cfg, hinted_partition(&kernel, &cfg))
        .expect("agent transform");
    let max_agents = agents.max_agents();
    runs.push((Variant::Clustering, Simulation::new(cfg.clone(), &agents).run().expect("CLU run")));

    // Throttling sweep.
    let mut candidates = vec![1u32, 2, 4, info.opt_agents_for(cfg.arch), max_agents];
    candidates.retain(|&c| c >= 1 && c <= max_agents);
    candidates.sort_unstable();
    candidates.dedup();
    let mut best: Option<(u32, RunStats)> = None;
    for active in candidates {
        let throttled = agents.clone().with_active_agents(active).expect("valid throttle");
        let stats = Simulation::new(cfg.clone(), &throttled).run().expect("TOT run");
        if best.as_ref().is_none_or(|(_, b)| stats.cycles < b.cycles) {
            best = Some((active, stats));
        }
    }
    let (chosen_agents, tot_stats) = best.expect("nonempty sweep");
    runs.push((Variant::ClusteringThrottled, tot_stats));

    // Bypassing: streaming tags from the framework's probe.
    let fw = Framework::new(cfg.clone());
    let tags: Vec<ArrayTag> = fw
        .analyze(&kernel)
        .map(|a| a.streaming_tags)
        .unwrap_or_default();
    let bypassed = AgentKernel::with_partition(
        BypassKernel::new(kernel.clone(), tags),
        &cfg,
        hinted_partition(&kernel, &cfg),
    )
    .expect("bypass transform")
    .with_active_agents(chosen_agents)
    .expect("valid throttle");
    runs.push((
        Variant::ClusteringThrottledBypass,
        Simulation::new(cfg.clone(), &bypassed).run().expect("BPS run"),
    ));

    // Prefetching over the reshaped order.
    let prefetching = AgentKernel::with_partition(kernel.clone(), &cfg, hinted_partition(&kernel, &cfg))
        .expect("prefetch transform")
        .with_active_agents(chosen_agents)
        .expect("valid throttle")
        .with_prefetch(2);
    runs.push((
        Variant::PrefetchThrottled,
        Simulation::new(cfg.clone(), &prefetching).run().expect("PFH run"),
    ));

    AppEvaluation {
        info,
        runs,
        chosen_agents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn evaluate_small_app_produces_all_variants() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let eval = evaluate_app(&arch::gtx570(), w);
        assert_eq!(eval.runs.len(), 6);
        assert!(eval.speedup(Variant::Baseline) == 1.0);
        assert!(eval.chosen_agents >= 1);
        for v in Variant::ALL {
            assert!(eval.stats(v).cycles > 0, "{v}");
        }
    }

    #[test]
    fn variant_labels_match_paper() {
        let labels: Vec<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["BSL", "RD", "CLU", "CLU+TOT", "CLU+TOT+BPS", "PFH+TOT"]);
    }
}
