//! `cta-analyzer`: static verification and lint pass over the clustering
//! transforms and the kernel IR.
//!
//! Everything the runtime stack executes — partitions, redirection and
//! agent kernels, cache-op rewrites, the framework's optimization plan —
//! has an invariant the paper states in closed form (Eqs. 3–7, the
//! Figure 5 decision table, the occupancy bound of §4.2). This crate
//! checks those invariants *statically*: it walks warp programs with
//! [`gpu_sim::walk`] instead of simulating them, re-derives the locality
//! category from the address streams, and reports violations through a
//! rustc-style diagnostics framework with stable `CL0xx` codes.
//!
//! Eight pass families:
//!
//! 1. **Transform invariants** ([`transform`]) — partition bijection,
//!    balance and coverage; redirection permutation; agent-kernel
//!    coverage, throttling and occupancy consistency.
//! 2. **IR lints** ([`ir`]) — bypass-on-reused-line, prefetch lifecycle
//!    (never used / after last use / duplicate), pathological divergence.
//! 3. **Plan audit** ([`plan`]) — the statically re-derived category vs
//!    the plan's, exploit/bypass/prefetch consistency, throttle range.
//! 4. **Happens-before races** ([`hb`]) — unordered conflicting accesses
//!    within a CTA, cross-CTA conflicts, unsynchronized counter words,
//!    barrier divergence, all over the same walked warp programs.
//! 5. **Protocol model checking** ([`modelcheck`]) — a bounded model
//!    checker over the agent binding protocol, proving deadlock-freedom,
//!    exactly-once consumption and starvation-freedom for every
//!    `(BindingMode, MAX_AGENTS, ACTIVE_AGENTS)` combination, with
//!    replayable counterexample traces.
//! 6. **Arithmetic proofs** ([`absint`]) — symbolic polynomial proofs
//!    that the partition/binding closed forms are mutually inverse and
//!    overflow-free over the entire `u64` domain.
//! 7. **Cost model** ([`costmodel`]) — a sound static hit-rate interval
//!    per kernel × geometry, cross-checked against measured simulator
//!    hit rates (`CL2xx`).
//! 8. **Set-conflict model** ([`setmodel`]) — per-set occupancy and
//!    stack-distance abstraction over the same demand-read stream,
//!    flagging set camping, indexing-insensitive geometries and
//!    conflict-bound intervals, and machine-checking per-set predictions
//!    against simulator per-set counters (`CL3xx`).
//!
//! The `analyze` binary sweeps the full Figure 3 suite across all four
//! architecture presets, model-checks the protocol per preset, runs the
//! arithmetic proofs, and exits nonzero on any deny-level finding.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absint;
pub mod costmodel;
pub mod diag;
pub mod driver;
pub mod explain;
pub mod hb;
pub mod ir;
pub mod json;
pub mod modelcheck;
pub mod plan;
pub mod profile;
pub mod setmodel;
pub mod transform;

pub use diag::{lint_by_code, lint_by_name, Diagnostic, Level, Lint, Report, LINTS};
pub use driver::{analyze_arch, analyze_workload};
pub use json::render_json;
pub use profile::{StaticProfile, TagLineStats};
