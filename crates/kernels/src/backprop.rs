//! BKP — perceptron back-propagation, layer-forward kernel (Rodinia).
//!
//! CTAs tile the (hidden x input) weight matrix. The hidden-unit value
//! vector segment a CTA needs is indexed by `blockIdx.x` only, so every
//! CTA in a grid column re-reads it (and revisits it once per partial-sum
//! reduction round): algorithm-related locality clustered by
//! X-partitioning.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "BKP",
    full_name: "backprop",
    description: "Perceptron back propagation",
    category: PaperCategory::Algorithm,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [6, 8, 8, 8],
    regs: [11, 11, 16, 18],
    smem: 1092,
    source: "Rodinia",
};

const TAG_WEIGHTS: u16 = 0;
const TAG_HIDDEN: u16 = 1;
const TAG_PARTIAL: u16 = 2;

/// Reduction rounds per CTA (each re-reads the hidden segment).
const ROUNDS: u64 = 4;

/// The back-propagation layer-forward workload model.
#[derive(Debug, Clone)]
pub struct Backprop {
    /// Grid tiles along X (hidden-unit blocks of 16).
    pub grid_x: u32,
    /// Grid tiles along Y (input blocks of 16).
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Backprop {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Backprop {
            grid_x: 16,
            grid_y: 64,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Backprop {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn weight_row_words(&self) -> u64 {
        self.grid_y as u64 * 16
    }
}

impl KernelSpec for Backprop {
    fn name(&self) -> String {
        format!("BKP({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), Dim3::plane(16, 16))
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        for round in 0..ROUNDS {
            // Hidden-unit segment, indexed by bx alone: shared across the
            // grid column, re-read every round.
            prog.push(read_words(TAG_HIDDEN, bx as u64 * 16, 16));
            // This CTA's two weight-matrix rows per warp (streaming).
            for r in 0..2u64 {
                let row = bx as u64 * 16 + warp as u64 * 2 + r;
                let col = by as u64 * 16;
                prog.push(read_words(
                    TAG_WEIGHTS,
                    row * self.weight_row_words() + col,
                    16,
                ));
            }
            prog.push(Op::Compute(8));
            prog.push(Op::Barrier);
            let _ = round;
        }
        // One partial-sum row per CTA.
        if warp == 0 {
            prog.push(write_words(
                TAG_PARTIAL,
                (by as u64 * self.grid_x as u64 + bx as u64) * 16,
                16,
            ));
        } else {
            // Keep the barrier count uniform (warp 0 writes after the last
            // barrier; others are already balanced).
            prog.push(Op::Compute(1));
        }
        prog
    }
}

impl Workload for Backprop {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn table2_occupancy() {
        let expect = [6u32, 8, 8, 8];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let b = Backprop::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &b.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn grid_column_shares_hidden_segment() {
        let b = Backprop::new(4, 4);
        let hidden = |cta| {
            b.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_HIDDEN)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        // CTA 1 is (bx=1, by=0); CTA 5 is (bx=1, by=1): same column.
        assert_eq!(hidden(1), hidden(5));
        assert_ne!(hidden(1), hidden(2));
    }

    #[test]
    fn weights_are_streamed_once() {
        let b = Backprop::new(2, 2);
        let mut all: Vec<u64> = Vec::new();
        for cta in 0..4 {
            for w in 0..8 {
                all.extend(
                    b.warp_program(&ctx(cta), w)
                        .iter()
                        .filter_map(|op| op.access())
                        .filter(|a| a.tag == TAG_WEIGHTS)
                        .flat_map(|a| a.addrs.clone()),
                );
            }
        }
        // Each weight word is touched exactly ROUNDS times (once per
        // round) by exactly one CTA: dedup factor == ROUNDS.
        let n = all.len() as u64;
        all.sort_unstable();
        all.dedup();
        assert_eq!(n, all.len() as u64 * ROUNDS);
    }
}
