//! Static IR walking: enumerate every warp program of a kernel **without
//! running the timing model**.
//!
//! The walker hands each CTA a deterministic, idealized-round-robin
//! [`CtaContext`] (CTA `u` lands on SM `u % num_sms`, occupying slot
//! `u / num_sms` with the matching arrival ticket). Under this dispatch
//! every `(sm, slot)` pair of an agent-transformed kernel appears exactly
//! once, so transforms that read `%smid`/`%warpid`-style hardware state
//! (e.g. `AgentKernel`) generate the same task coverage the real engine
//! would produce when all slots fill — which is precisely the invariant
//! static analysis wants to check.
//!
//! This is the substrate of the `cta-analyzer` crate's IR lints: walking
//! the op streams costs only program generation, no cache or latency
//! simulation, so whole-suite sweeps stay cheap.

use crate::config::GpuConfig;
use crate::kernel::{CtaContext, KernelSpec, MemAccess, Op, Program};

/// How one op participates in synchronization and conflict analysis.
///
/// This is the view of the IR that concurrency passes (happens-before
/// race detection in `cta-analyzer`) consume: every op is either a
/// memory event on a location set (read / write / atomic
/// read-modify-write), a CTA-wide barrier, or invisible (pure compute —
/// including the agent transform's shared-memory broadcast delay, which
/// carries no globally-visible location).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp<'a> {
    /// A demand or prefetch read of the access's locations.
    Read(&'a MemAccess),
    /// A store to the access's locations.
    Write(&'a MemAccess),
    /// A serializing read-modify-write: both a conflict source against
    /// plain accesses and a synchronization (release/acquire) point —
    /// this is the agent protocol's id-bidding ticket op.
    Atomic(&'a MemAccess),
    /// CTA-wide `__syncthreads()`: joins all warps of the CTA.
    Barrier,
}

impl<'a> SyncOp<'a> {
    /// Classifies one op; `None` for ops with no synchronization or
    /// memory semantics (compute delays).
    pub fn classify(op: &'a Op) -> Option<Self> {
        match op {
            Op::Load(a) => Some(SyncOp::Read(a)),
            Op::Store(a) => Some(SyncOp::Write(a)),
            Op::Atomic(a) => Some(SyncOp::Atomic(a)),
            Op::Barrier => Some(SyncOp::Barrier),
            Op::Compute(_) => None,
        }
    }

    /// The memory access carried by this sync op, if any.
    pub fn access(&self) -> Option<&'a MemAccess> {
        match self {
            SyncOp::Read(a) | SyncOp::Write(a) | SyncOp::Atomic(a) => Some(a),
            SyncOp::Barrier => None,
        }
    }
}

/// Iterates the synchronization-relevant ops of a warp program in issue
/// order, with their op indices (compute delays are skipped).
pub fn sync_ops(prog: &Program) -> impl Iterator<Item = (usize, SyncOp<'_>)> {
    prog.iter()
        .enumerate()
        .filter_map(|(i, op)| SyncOp::classify(op).map(|s| (i, s)))
}

/// Iterator over the idealized-RR dispatch contexts of a launch.
///
/// Yields one [`CtaContext`] per CTA of the grid, in CTA-id order.
pub fn dispatch_contexts(
    kernel: &(impl KernelSpec + ?Sized),
    num_sms: usize,
) -> impl Iterator<Item = CtaContext> {
    let total = kernel.launch().num_ctas();
    let sms = num_sms.max(1);
    (0..total).map(move |cta| CtaContext {
        cta,
        sm_id: (cta % sms as u64) as usize,
        slot: (cta / sms as u64) as u32,
        arrival: cta / sms as u64,
        num_sms: sms,
    })
}

/// Walks every warp program of `kernel` under idealized-RR dispatch,
/// invoking `f(ctx, warp, program)` once per (CTA, warp) pair in
/// deterministic order (CTA-major, warp-minor).
///
/// Program buffers are recycled across calls, so the walk performs O(1)
/// allocations regardless of grid size.
pub fn each_warp_program<K, F>(kernel: &K, num_sms: usize, warp_size: u32, mut f: F)
where
    K: KernelSpec + ?Sized,
    F: FnMut(&CtaContext, u32, &Program),
{
    let warps = kernel.launch().warps_per_cta(warp_size.max(1));
    let mut prog = Program::new();
    for ctx in dispatch_contexts(kernel, num_sms) {
        for warp in 0..warps {
            kernel.warp_program_into(&ctx, warp, &mut prog);
            f(&ctx, warp, &prog);
        }
    }
}

/// [`each_warp_program`] with geometry taken from a GPU preset.
pub fn each_warp_program_on<K, F>(kernel: &K, cfg: &GpuConfig, f: F)
where
    K: KernelSpec + ?Sized,
    F: FnMut(&CtaContext, u32, &Program),
{
    each_warp_program(kernel, cfg.num_sms, cfg.warp_size, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::dim::Dim3;
    use crate::kernel::{LaunchConfig, MemAccess, Op};

    #[derive(Debug, Clone)]
    struct Probe;

    impl KernelSpec for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::plane(5, 2), 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(
                0,
                ctx.cta * 8 + warp as u64 * 4,
                4,
            ))]
        }
    }

    #[test]
    fn sync_op_classification() {
        let prog: Program = vec![
            Op::Load(MemAccess::scalar(0, 0, 4)),
            Op::Compute(7),
            Op::Atomic(MemAccess::scalar(1, 64, 4)),
            Op::Barrier,
            Op::Store(MemAccess::scalar(2, 128, 4)),
        ];
        let evs: Vec<(usize, SyncOp)> = sync_ops(&prog).collect();
        assert_eq!(evs.len(), 4, "compute is invisible");
        assert!(matches!(evs[0], (0, SyncOp::Read(a)) if a.tag == 0));
        assert!(matches!(evs[1], (2, SyncOp::Atomic(a)) if a.tag == 1));
        assert!(matches!(evs[2], (3, SyncOp::Barrier)));
        assert!(matches!(evs[3], (4, SyncOp::Write(a)) if a.tag == 2));
        assert_eq!(evs[3].1.access().unwrap().addrs, vec![128]);
        assert_eq!(SyncOp::Barrier.access(), None);
    }

    #[test]
    fn contexts_cover_grid_with_rr_placement() {
        let ctxs: Vec<CtaContext> = dispatch_contexts(&Probe, 4).collect();
        assert_eq!(ctxs.len(), 10);
        assert_eq!(ctxs[0].sm_id, 0);
        assert_eq!(ctxs[5].sm_id, 1);
        assert_eq!(ctxs[5].slot, 1);
        assert_eq!(ctxs[5].arrival, 1);
        assert!(ctxs.iter().all(|c| c.num_sms == 4));
    }

    #[test]
    fn walk_visits_every_cta_warp_pair_in_order() {
        let mut seen: Vec<(u64, u32, u64)> = Vec::new();
        each_warp_program(&Probe, 3, 32, |ctx, warp, prog| {
            let addr = prog[0].access().unwrap().addrs[0];
            seen.push((ctx.cta, warp, addr));
        });
        // 10 CTAs x 2 warps, CTA-major order, programs match warp_program.
        assert_eq!(seen.len(), 20);
        assert_eq!(seen[0], (0, 0, 0));
        assert_eq!(seen[1], (0, 1, 4));
        assert_eq!(seen[19], (9, 1, 9 * 8 + 4));
    }

    #[test]
    fn config_walk_uses_preset_geometry() {
        let cfg = arch::gtx570();
        let mut ctas = 0u64;
        each_warp_program_on(&Probe, &cfg, |ctx, _, _| {
            assert_eq!(ctx.num_sms, 15);
            ctas += 1;
        });
        assert_eq!(ctas, 20); // 10 CTAs x 2 warps
    }
}
