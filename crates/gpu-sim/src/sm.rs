//! Per-SM execution state: resident CTAs, warp contexts, the L1 sectors,
//! occupancy accounting, and the SM's event queues.
//!
//! The engine advances SMs strictly by next-event time. Each SM keeps
//! two lazily-cleaned min-heaps instead of scanning its warp slots on
//! every step: `ready` orders `(ready_at, warp_slot)` wake entries, and
//! `pending_dispatch` orders the GigaThread dispatch polls owed to freed
//! CTA slots. Heap entries are never removed eagerly — an entry is valid
//! only if the warp it names is still live, not parked at a barrier, and
//! still ready at exactly the recorded time; stale entries are popped on
//! the next peek. Every warp state transition pushes a fresh entry, so
//! the minimum valid entry always equals the scan-based minimum the
//! cycle-stepped engine computed (the golden-stats differential pins
//! this equivalence).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cache::{Cache, CacheStats, SetProfile};
use crate::config::{CacheConfig, GpuConfig};
use crate::program::{Cursor, WarpProgram};

/// One resident warp's execution context.
#[derive(Debug)]
pub(crate) struct WarpState {
    /// CTA slot this warp belongs to.
    pub cta_slot: u32,
    /// Warp index within its CTA.
    pub warp: u32,
    /// Remaining instruction stream.
    pub program: WarpProgram,
    /// Next op index.
    pub pc: usize,
    /// Segment cursor matching `pc` (segmented programs).
    pub cursor: Cursor,
    /// Earliest cycle the next op may issue.
    pub ready_at: u64,
    /// Parked at a `__syncthreads()`.
    pub at_barrier: bool,
}

/// Bookkeeping for one resident CTA.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResidentCta {
    /// Linear CTA id within the launched grid.
    pub cta: u64,
    /// Warps the CTA launched with.
    pub warps_total: u32,
    /// Warps that ran their program to completion.
    pub warps_done: u32,
    /// Warps currently parked at the barrier.
    pub barrier_count: u32,
    /// Dispatch cycle.
    pub dispatched: u64,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub(crate) struct SmState {
    pub id: usize,
    /// Next cycle the issue stage is free.
    pub clock: u64,
    /// L1 sectors (one for Fermi/Kepler, two for Maxwell/Pascal).
    pub l1_sectors: Vec<Cache>,
    /// Warp contexts, indexed by hardware warp slot
    /// (`cta_slot * warps_per_cta + warp`).
    pub warps: Vec<Option<WarpState>>,
    /// Wake entries `(ready_at, warp_slot)`, min-first, lazily cleaned.
    pub ready: BinaryHeap<Reverse<(u64, u32)>>,
    /// Resident CTAs, indexed by CTA slot.
    pub ctas: Vec<Option<ResidentCta>>,
    /// CTAs dispatched to this SM so far (the atomic-ticket value).
    pub dispatch_count: u64,
    /// Times at which a freed slot owes the scheduler a dispatch poll,
    /// min-first.
    pub pending_dispatch: BinaryHeap<Reverse<u64>>,
    /// Next cycle the load/store unit can accept a transaction: the LSU
    /// replays divergent accesses one line-transaction per cycle, which
    /// bounds how fast one SM can flood the memory system.
    pub lsu_free: u64,
    /// L2-line transactions issued by loads that bypassed L1 (explicit
    /// `BypassL1` cache op, or L1 disabled architecturally).
    pub bypassed_reads: u64,
    /// Occupancy accounting: live warps right now.
    pub active_warps: u32,
    /// Integral of `active_warps` over time.
    pub occ_integral: u64,
    /// Last time `active_warps` changed.
    pub occ_last_change: u64,
    /// Pushes into `ready` and `pending_dispatch` — the per-SM share of
    /// the work model's `ready_heap_pushes` counter.
    pub heap_pushes: u64,
}

impl SmState {
    pub(crate) fn new(id: usize, cfg: &GpuConfig, max_ctas: u32, warps_per_cta: u32) -> Self {
        let sector_cfg = CacheConfig {
            size_bytes: cfg.l1.size_bytes / cfg.l1_sectors,
            ..cfg.l1.clone()
        };
        SmState {
            id,
            clock: 0,
            l1_sectors: (0..cfg.l1_sectors)
                .map(|_| Cache::new(sector_cfg.clone()))
                .collect(),
            warps: (0..(max_ctas * warps_per_cta) as usize)
                .map(|_| None)
                .collect(),
            ready: BinaryHeap::new(),
            ctas: (0..max_ctas as usize).map(|_| None).collect(),
            dispatch_count: 0,
            pending_dispatch: BinaryHeap::new(),
            lsu_free: 0,
            bypassed_reads: 0,
            active_warps: 0,
            occ_integral: 0,
            occ_last_change: 0,
            heap_pushes: 0,
        }
    }

    /// Lowest free CTA slot, if any.
    pub(crate) fn free_slot(&self) -> Option<u32> {
        self.ctas.iter().position(|c| c.is_none()).map(|i| i as u32)
    }

    /// Number of resident CTAs.
    #[allow(dead_code)] // exercised by tests; kept as an inspection helper
    pub(crate) fn resident(&self) -> usize {
        self.ctas.iter().filter(|c| c.is_some()).count()
    }

    /// Updates the occupancy integral up to `now`, then applies a delta to
    /// the live-warp count.
    pub(crate) fn account_warps(&mut self, now: u64, delta: i64) {
        let now = now.max(self.occ_last_change);
        self.occ_integral += self.active_warps as u64 * (now - self.occ_last_change);
        self.occ_last_change = now;
        self.active_warps = (self.active_warps as i64 + delta) as u32;
    }

    /// The L1 sector serving a given CTA slot. The paper speculates the
    /// Maxwell/Pascal unified-cache sectors "are private to particular
    /// CTA-slots following certain mapping mechanism"; we map slots to
    /// sectors round-robin. The engine inlines this mapping in its
    /// split-borrow hot path; this method is the documented reference.
    #[allow(dead_code)]
    pub(crate) fn sector_of_slot(&self, slot: u32) -> usize {
        (slot as usize) % self.l1_sectors.len()
    }

    /// Aggregated L1 statistics over this SM's sectors.
    pub(crate) fn l1_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.l1_sectors {
            agg.absorb(&s.stats);
        }
        agg
    }

    /// Turns on per-set profiling on every L1 sector array (the CL3xx
    /// machine-check path; a no-op for ordinary runs).
    pub(crate) fn enable_l1_set_profile(&mut self) {
        for s in &mut self.l1_sectors {
            s.enable_set_profile();
        }
    }

    /// Merged per-set profile over this SM's sectors (every sector array
    /// shares the sub-array geometry, so sets align one-to-one). `None`
    /// when profiling was never enabled.
    pub(crate) fn l1_set_profile(&self) -> Option<SetProfile> {
        let mut merged: Option<SetProfile> = None;
        for s in &self.l1_sectors {
            let p = s.set_profile()?;
            match &mut merged {
                Some(m) => m.absorb(p),
                None => merged = Some(p.clone()),
            }
        }
        merged
    }

    /// Records that warp slot `idx` (re)becomes issuable at `t`. Every
    /// transition that sets a warp's `ready_at` must push an entry, or
    /// the heap minimum falls behind the true state.
    #[inline]
    pub(crate) fn wake(&mut self, t: u64, idx: u32) {
        self.heap_pushes += 1;
        self.ready.push(Reverse((t, idx)));
    }

    /// Pops stale wake entries until the top is valid: the warp is live,
    /// not parked at a barrier, and still ready at exactly the recorded
    /// time. Entries go stale when a warp issues (new `ready_at`), parks,
    /// or retires; each entry is popped at most once, so cleaning is
    /// amortized O(log warps) per state transition.
    fn clean_ready(&mut self) {
        while let Some(&Reverse((t, idx))) = self.ready.peek() {
            let valid = self.warps[idx as usize]
                .as_ref()
                .is_some_and(|w| !w.at_barrier && w.ready_at == t);
            if valid {
                return;
            }
            self.ready.pop();
        }
    }

    /// Earliest ready time among issuable warps (not done, not at a
    /// barrier), with the warp-slot index as deterministic tiebreak.
    pub(crate) fn next_issuable(&mut self) -> Option<(u64, usize)> {
        self.clean_ready();
        self.ready
            .peek()
            .map(|&Reverse((t, idx))| (t, idx as usize))
    }

    /// The SM's next event time: earliest of issuable-warp readiness
    /// (clamped by the issue clock) and pending dispatch polls. `None`
    /// when the SM has nothing to do.
    pub(crate) fn next_event(&mut self) -> Option<u64> {
        let issue = self.next_issuable().map(|(t, _)| t.max(self.clock));
        let dispatch = self.pending_dispatch.peek().map(|&Reverse(t)| t);
        match (issue, dispatch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::program::Cursor;

    #[test]
    fn slot_and_sector_mapping() {
        let cfg = arch::gtx980();
        let sm = SmState::new(0, &cfg, 4, 2);
        assert_eq!(sm.l1_sectors.len(), 2);
        assert_eq!(sm.sector_of_slot(0), 0);
        assert_eq!(sm.sector_of_slot(1), 1);
        assert_eq!(sm.sector_of_slot(2), 0);
        assert_eq!(sm.free_slot(), Some(0));
        assert_eq!(sm.resident(), 0);
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let cfg = arch::gtx570();
        let mut sm = SmState::new(0, &cfg, 2, 1);
        sm.account_warps(0, 2); // 2 warps live from t=0
        sm.account_warps(100, -1); // one retires at t=100
        sm.account_warps(150, -1);
        assert_eq!(sm.occ_integral, 2 * 100 + 50); // 2 warps for 100 cy, then 1 for 50
        assert_eq!(sm.active_warps, 0);
    }

    #[test]
    fn next_event_prefers_earliest() {
        let cfg = arch::gtx570();
        let mut sm = SmState::new(0, &cfg, 2, 1);
        assert_eq!(sm.next_event(), None);
        sm.pending_dispatch.push(Reverse(500));
        assert_eq!(sm.next_event(), Some(500));
        sm.warps[0] = Some(WarpState {
            cta_slot: 0,
            warp: 0,
            program: WarpProgram::Owned(vec![crate::kernel::Op::Compute(1)]),
            pc: 0,
            cursor: Cursor::default(),
            ready_at: 30,
            at_barrier: false,
        });
        sm.wake(30, 0);
        assert_eq!(sm.next_event(), Some(30));
    }

    #[test]
    fn stale_wake_entries_are_cleaned() {
        let cfg = arch::gtx570();
        let mut sm = SmState::new(0, &cfg, 2, 1);
        sm.warps[0] = Some(WarpState {
            cta_slot: 0,
            warp: 0,
            program: WarpProgram::Owned(vec![crate::kernel::Op::Compute(1)]),
            pc: 0,
            cursor: Cursor::default(),
            ready_at: 40,
            at_barrier: false,
        });
        sm.wake(10, 0); // stale: the warp has moved on to 40
        sm.wake(40, 0);
        sm.wake(25, 1); // stale: no warp in slot 1
        assert_eq!(sm.next_issuable(), Some((40, 0)));
        // Parked warps are not issuable even with a matching entry.
        sm.warps[0].as_mut().unwrap().at_barrier = true;
        assert_eq!(sm.next_issuable(), None);
    }
}
