//! Error types for the simulator.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when validating or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The launch configuration is malformed (zero-sized grid or block,
    /// block larger than hardware limits, ...).
    InvalidLaunch(String),
    /// The kernel cannot run on the configured GPU: a single CTA exceeds
    /// a per-SM resource (registers, shared memory, warp slots).
    Unschedulable {
        /// Name of the exhausted resource.
        resource: &'static str,
        /// Amount required by one CTA.
        required: u64,
        /// Amount available on one SM.
        available: u64,
    },
    /// The GPU configuration itself is inconsistent.
    InvalidConfig(String),
    /// A CTA deadlocked at a barrier (warps arrived at differing barrier
    /// counts), indicating a malformed kernel program.
    BarrierDeadlock {
        /// Linear CTA id within the launched grid.
        cta: u64,
        /// SM the CTA was resident on.
        sm_id: usize,
    },
    /// The CTA scheduler stopped producing CTAs while work remained.
    SchedulerStarved {
        /// Number of CTAs never dispatched.
        remaining: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::Unschedulable {
                resource,
                required,
                available,
            } => write!(
                f,
                "kernel unschedulable: one CTA needs {required} of {resource}, SM has {available}"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid GPU configuration: {msg}"),
            SimError::BarrierDeadlock { cta, sm_id } => {
                write!(f, "barrier deadlock in CTA {cta} on SM {sm_id}")
            }
            SimError::SchedulerStarved { remaining } => {
                write!(f, "scheduler starved with {remaining} CTAs pending")
            }
        }
    }
}

impl StdError for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<SimError> = vec![
            SimError::InvalidLaunch("grid is empty".into()),
            SimError::Unschedulable {
                resource: "registers",
                required: 100_000,
                available: 65_536,
            },
            SimError::InvalidConfig("zero SMs".into()),
            SimError::BarrierDeadlock { cta: 3, sm_id: 1 },
            SimError::SchedulerStarved { remaining: 12 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
