//! `analyze`: sweep the static analysis over the full Figure 3 suite on
//! every architecture preset and report findings.
//!
//! ```text
//! cargo run --release -p cta-analyzer --bin analyze [-- OPTIONS]
//!
//!   --json           emit the machine-readable report instead of text
//!   --arch NAME      only sweep presets whose name contains NAME
//!   --app ABBR       only analyze the workload with this abbreviation
//!   --list-lints     print the lint registry and exit
//! ```
//!
//! Exits with status 1 on any deny-level finding (the CI gate), 2 on
//! usage errors.

use cta_analyzer::diag::Report;
use cta_analyzer::{analyze_workload, render_json, LINTS};
use gpu_sim::{arch, GpuConfig};
use std::process::ExitCode;

struct Options {
    json: bool,
    arch_filter: Vec<String>,
    app_filter: Vec<String>,
    list_lints: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        arch_filter: Vec::new(),
        app_filter: Vec::new(),
        list_lints: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--list-lints" => opts.list_lints = true,
            "--arch" => {
                let v = args.next().ok_or("--arch needs a value")?;
                opts.arch_filter.push(v.to_lowercase());
            }
            "--app" => {
                let v = args.next().ok_or("--app needs a value")?;
                opts.app_filter.push(v.to_uppercase());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Analyzes one preset's share of the sweep into a fresh report.
fn analyze_preset(cfg: &GpuConfig, app_filter: &[String]) -> Report {
    let mut report = Report::new();
    for w in gpu_kernels::suite::fig3_suite(cfg.arch) {
        if !app_filter.is_empty() && !app_filter.iter().any(|a| a == w.info().abbr) {
            continue;
        }
        analyze_workload(w, cfg, &mut report);
    }
    report
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_lints {
        for lint in LINTS {
            println!(
                "{} {:<28} {:<5} {}",
                lint.code, lint.name, lint.default_level, lint.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let presets: Vec<GpuConfig> = arch::all_presets()
        .into_iter()
        .filter(|c| {
            opts.arch_filter.is_empty()
                || opts
                    .arch_filter
                    .iter()
                    .any(|f| c.name.to_lowercase().contains(f))
        })
        .collect();
    if presets.is_empty() {
        eprintln!("analyze: no architecture preset matches the --arch filter");
        return ExitCode::from(2);
    }

    // One worker per preset; merge in preset order so the report (and its
    // JSON rendering) is deterministic regardless of finish order.
    let reports: Vec<Report> = std::thread::scope(|scope| {
        let handles: Vec<_> = presets
            .iter()
            .map(|cfg| scope.spawn(|| analyze_preset(cfg, &opts.app_filter)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis worker panicked"))
            .collect()
    });
    let mut report = Report::new();
    for r in reports {
        report.merge(r);
    }

    if opts.json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", report.render_human());
    }

    if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
