//! Integration tests of the automatic framework (Figure 11) against the
//! real benchmark suite: the probe-driven classification must agree with
//! the paper's Table 2 categories, and the assembled transforms must be
//! sound.

use cluster_bench::SharedKernel;
use cta_clustering::Framework;
use gpu_kernels::{suite, PaperCategory};
use gpu_sim::{arch, ArchGen, KernelSpec, Simulation};
use locality::Category;

fn analyze(abbr: &str) -> (cta_clustering::Analysis, SharedKernel, gpu_sim::GpuConfig) {
    let w = suite::by_abbr(abbr, ArchGen::Fermi).expect("known");
    let kernel = SharedKernel::new(w);
    let cfg = arch::gtx570().prefer_l1(kernel.launch().smem_per_cta);
    let fw = Framework::new(cfg.clone());
    (fw.analyze(&kernel).expect("probes run"), kernel, cfg)
}

#[test]
fn classifies_algorithm_apps() {
    for abbr in ["KMN", "NN", "BKP"] {
        let (analysis, _, _) = analyze(abbr);
        assert_eq!(analysis.category, Category::Algorithm, "{abbr}");
    }
}

#[test]
fn classifies_cache_line_apps() {
    for abbr in ["SYK", "ATX", "MVT", "BC"] {
        let (analysis, _, _) = analyze(abbr);
        assert_eq!(analysis.category, Category::CacheLine, "{abbr}");
    }
}

#[test]
fn classifies_streaming_apps() {
    for abbr in ["BS", "MON", "SAD", "DXT"] {
        let (analysis, _, _) = analyze(abbr);
        assert_eq!(analysis.category, Category::Streaming, "{abbr}");
    }
}

#[test]
fn classifies_write_related() {
    let (analysis, _, _) = analyze("NW");
    assert_eq!(analysis.category, Category::Write);
}

#[test]
fn classifies_data_related() {
    for abbr in ["BTR", "BFS"] {
        let (analysis, _, _) = analyze(abbr);
        assert!(
            matches!(analysis.category, Category::Data | Category::Write),
            "{abbr} got {}",
            analysis.category
        );
    }
}

#[test]
fn axis_choice_agrees_with_table2_for_clear_cases() {
    // The probe should rediscover the paper's partition hints where the
    // locality is one-sided.
    for (abbr, expect) in [("NN", "Y-P"), ("SYK", "X-P"), ("BKP", "X-P")] {
        let (analysis, _, _) = analyze(abbr);
        assert_eq!(analysis.axis.to_string(), expect, "{abbr}");
    }
}

#[test]
fn exploitability_matches_paper_rule() {
    // Algorithm + cache-line exploitable; the rest not (§4.1).
    for w in suite::table2_suite(ArchGen::Fermi) {
        let info = w.info();
        let expected = matches!(
            info.category,
            PaperCategory::Algorithm | PaperCategory::CacheLine
        );
        assert_eq!(info.category.exploitable(), expected, "{}", info.abbr);
    }
}

#[test]
fn optimize_pipeline_never_degrades_badly() {
    // End-to-end: the framework's chosen transform must stay within a
    // small tolerance of baseline even when there is nothing to gain.
    for abbr in ["BS", "NN"] {
        let w = suite::by_abbr(abbr, ArchGen::Fermi).expect("known");
        let kernel = SharedKernel::new(w);
        let cfg = arch::gtx570().prefer_l1(kernel.launch().smem_per_cta);
        let fw = Framework::new(cfg.clone());
        let baseline = Simulation::new(cfg.clone(), &kernel).run().unwrap();
        let (optimized, _plan) = fw.optimize(kernel).unwrap();
        let stats = Simulation::new(cfg.clone(), &optimized).run().unwrap();
        let speedup = stats.speedup_vs(&baseline);
        assert!(speedup > 0.9, "{abbr} degraded to {speedup:.2}x");
    }
}
