//! CSV export of simulation results, for plotting the reproduced figures
//! with external tooling.
//!
//! Hand-rolled on purpose: the values exported here are all numeric or
//! simple identifiers, so a serializer dependency would buy nothing.

use crate::stats::RunStats;
use std::fmt::Write as _;

/// Escapes one CSV cell (quotes fields containing separators or quotes).
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders one CSV row.
pub fn csv_row<I, S>(cells: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::new();
    for (i, c) in cells.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csv_escape(c.as_ref()));
    }
    out.push('\n');
    out
}

/// The header matching [`run_stats_row`].
pub fn run_stats_header() -> String {
    csv_row([
        "kernel",
        "gpu",
        "cycles",
        "instructions",
        "l1_reads",
        "l1_hits",
        "l1_reserved",
        "l1_misses",
        "l1_hit_rate",
        "l2_read_txns",
        "l2_write_txns",
        "l2_atomic_txns",
        "l2_transactions",
        "dram_reads",
        "dram_writes",
        "achieved_occupancy",
        "max_ctas_per_sm",
    ])
}

/// Renders one run as a CSV row (columns per [`run_stats_header`]).
pub fn run_stats_row(s: &RunStats) -> String {
    csv_row([
        s.kernel.as_str(),
        s.gpu.as_str(),
        &s.cycles.to_string(),
        &s.instructions.to_string(),
        &s.l1.reads.to_string(),
        &s.l1.read_hits.to_string(),
        &s.l1.read_reserved.to_string(),
        &s.l1.read_misses.to_string(),
        &format!("{:.4}", s.l1_hit_rate()),
        &s.memory.l2_read_txns.to_string(),
        &s.memory.l2_write_txns.to_string(),
        &s.memory.l2_atomic_txns.to_string(),
        &s.l2_transactions().to_string(),
        &s.memory.dram_reads.to_string(),
        &s.memory.dram_writes.to_string(),
        &format!("{:.4}", s.achieved_occupancy),
        &s.max_ctas_per_sm.to_string(),
    ])
}

/// Renders a whole result set as a CSV document.
pub fn run_stats_csv<'a>(runs: impl IntoIterator<Item = &'a RunStats>) -> String {
    let mut out = run_stats_header();
    for r in runs {
        let _ = write!(out, "{}", run_stats_row(r));
    }
    out
}

/// Renders a generic `(x, y)` series (e.g. a Figure 2 panel) as CSV.
pub fn series_csv(
    x_name: &str,
    y_name: &str,
    points: impl IntoIterator<Item = (u64, u64)>,
) -> String {
    let mut out = csv_row([x_name, y_name]);
    for (x, y) in points {
        let _ = write!(out, "{}", csv_row([x.to_string(), y.to_string()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arch, CtaContext, KernelSpec, LaunchConfig, MemAccess, Op, Program, Simulation};

    #[derive(Debug)]
    struct Tiny;
    impl KernelSpec for Tiny {
        fn name(&self) -> String {
            "tiny,\"csv\"".into() // deliberately hostile to CSV
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(4u32, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(0, ctx.cta * 64, 4))]
        }
    }

    #[test]
    fn escaping_quotes_hostile_cells() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn run_stats_round_trip_shape() {
        let stats = Simulation::new(arch::gtx570(), &Tiny).run().unwrap();
        let csv = run_stats_csv([&stats]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].split(',').count(),
            17,
            "header arity: {}",
            lines[0]
        );
        // Kernel name with comma/quotes stays one quoted field.
        assert!(lines[1].starts_with("\"tiny,\"\"csv\"\"\""));
    }

    #[test]
    fn series_is_two_columns() {
        let csv = series_csv("cta", "cycles", [(0, 800), (1, 125)]);
        assert_eq!(csv, "cta,cycles\n0,800\n1,125\n");
    }
}
