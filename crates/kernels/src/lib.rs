//! # gpu-kernels
//!
//! Workload models of the 33 GPU applications evaluated by
//! *"Locality-Aware CTA Clustering for Modern GPUs"* (ASPLOS 2017): the
//! 23 benchmarks of its Table 2 plus the 10 additional apps of its
//! Figure 3, and the Listing 3 microbenchmark behind its Figure 2.
//!
//! Each workload implements [`gpu_sim::KernelSpec`] — generating the
//! kernel's per-warp global-memory access stream — plus [`Workload`],
//! which carries the Table 2 metadata (category, warps/CTA, registers,
//! shared memory, partition axis, optimal throttling agents).
//!
//! Inter-CTA locality is a property of address streams, and these models
//! generate the documented streams of the original CUDA kernels:
//! algorithm-related apps share concrete words across CTAs along their
//! partition axis, cache-line-related apps share 128-byte lines but not
//! words, data-related apps collide through seeded irregular structures,
//! NW's wavefront reads neighbours' freshly-written lines, and streaming
//! apps touch every word exactly once.
//!
//! ## Example
//!
//! ```
//! use gpu_kernels::{suite, Workload};
//! use gpu_sim::{arch, ArchGen, Simulation};
//!
//! let mm = suite::by_abbr("MM", ArchGen::Kepler).expect("known workload");
//! let stats = Simulation::new(arch::tesla_k40(), &mm).run()?;
//! println!("{}: {} cycles, {} L2 txns", mm.info().abbr, stats.cycles, stats.l2_transactions());
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
mod info;
pub mod suite;

mod atax;
mod backprop;
mod bfs;
mod bicg;
mod blackscholes;
mod btree;
mod conv3d;
mod dct;
mod dxtc;
pub mod extras;
mod histogram;
mod hotspot;
mod image_denoise;
mod kmeans;
mod matrix_mul;
mod microbench;
mod montecarlo;
mod mvt;
mod nbody;
mod nn;
mod nw;
mod sad;
mod sgemm;
mod syr2k;
mod syrk;

pub use atax::Atax;
pub use backprop::Backprop;
pub use bfs::Bfs;
pub use bicg::Bicg;
pub use blackscholes::BlackScholes;
pub use btree::BTree;
pub use conv3d::Conv3d;
pub use dct::Dct;
pub use dxtc::Dxtc;
pub use extras::ExtraApp;
pub use histogram::Histogram;
pub use hotspot::Hotspot;
pub use image_denoise::ImageDenoise;
pub use info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
pub use kmeans::Kmeans;
pub use matrix_mul::MatrixMul;
pub use microbench::Microbench;
pub use montecarlo::MonteCarlo;
pub use mvt::Mvt;
pub use nbody::Nbody;
pub use nn::NeuralNet;
pub use nw::NeedlemanWunsch;
pub use sad::Sad;
pub use sgemm::Sgemm;
pub use syr2k::Syr2k;
pub use syrk::Syrk;
