//! Regenerates the paper's Table 1: experiment platforms.

fn main() {
    println!("Table 1: Experiment Platforms (paper Table 1)");
    println!();
    print!("{}", cluster_bench::tables::table1());
}
