//! ATX — matrix-transpose-and-vector multiply (PolyBench `atax`),
//! computing `y = A' * (A * x)`.
//!
//! The first phase walks row panels of A (cache-line sharing across
//! column-panel CTAs of the same rows) while broadcasting the small `x`
//! vector; the second phase streams the transposed contribution. The
//! paper reaches its best throttling effect here (optimal agents = 1
//! everywhere).

use crate::common::{panel_reads, read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "ATX",
    full_name: "atax",
    description: "Matrix transpose and vector multiply",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [1, 1, 1, 1],
    regs: [13, 17, 17, 22],
    smem: 0,
    source: "PolyBench",
};

const TAG_A: u16 = 0;
const TAG_X: u16 = 1;
const TAG_TMP: u16 = 2;
const TAG_Y: u16 = 3;

const PANEL_WORDS: u64 = 8;

/// The atax workload model.
#[derive(Debug, Clone)]
pub struct Atax {
    /// Row blocks (256 rows each).
    pub grid_x: u32,
    /// Column panels.
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Atax {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Atax {
            grid_x: 4,
            grid_y: 32,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Atax {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_y as u64 * PANEL_WORDS
    }
}

impl KernelSpec for Atax {
    fn name(&self) -> String {
        format!("ATX({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let row0 = bx as u64 * 256 + warp as u64 * 32;
        let col0 = by as u64 * PANEL_WORDS;
        let mut prog = Program::new();
        // tmp = A * x over this panel: x segment broadcast, A panel walked.
        prog.push(read_words(TAG_X, col0, PANEL_WORDS as u32));
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS,
            32,
        ));
        prog.push(Op::Compute(6));
        // Partial tmp for the row block (one coalesced store per warp).
        prog.push(write_words(TAG_TMP, row0, 32));
        prog.push(Op::Barrier);
        // y += A' * tmp over the same panel: re-walk the panel.
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS / 2,
            32,
        ));
        prog.push(Op::Compute(6));
        if warp == 0 {
            prog.push(write_words(
                TAG_Y,
                (bx as u64 * self.grid_y as u64 + by as u64) * PANEL_WORDS,
                PANEL_WORDS as u32,
            ));
        } else {
            prog.push(Op::Compute(1));
        }
        prog
    }
}

impl Workload for Atax {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn x_vector_segment_indexed_by_panel() {
        let a = Atax::new(2, 4);
        let xs = |cta| {
            a.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access().cloned())
                .filter(|acc| acc.tag == TAG_X)
                .flat_map(|acc| acc.addrs)
                .collect::<Vec<_>>()
        };
        // Same panel (by=0) -> same x words even across row blocks.
        assert_eq!(xs(0), xs(1));
        assert_ne!(xs(0), xs(2));
    }

    #[test]
    fn a_panel_lines_shared_across_panels_of_same_rows() {
        let a = Atax::new(2, 8);
        let lines = |cta: u64| {
            (0..8)
                .flat_map(|w| a.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|acc| acc.tag == TAG_A)
                .flat_map(|acc| coalesce_lines(&acc, 128))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(lines(0).intersection(&lines(2)).count() > 0);
        assert_eq!(lines(0).intersection(&lines(1)).count(), 0);
    }

    #[test]
    fn uniform_barrier_counts() {
        let a = Atax::new(2, 2);
        for w in 0..8 {
            assert_eq!(
                a.warp_program(&ctx(0), w)
                    .iter()
                    .filter(|o| o.is_barrier())
                    .count(),
                1
            );
        }
    }
}
