//! SYK — symmetric rank-k update (PolyBench `syrk`).
//!
//! `C = alpha*A*A' + beta*C`, tiled so that CTA `(x, y)` updates the
//! column panel `y` of the C rows owned by `x`. Each thread walks its row
//! of A with the row-panel pattern: the fetched 128-byte lines are shared
//! — at line granularity only — with the CTAs covering neighbouring
//! panels of the same rows, i.e. the paper's cache-line-related locality,
//! clustered by X-partitioning.

use crate::common::{panel_reads, write_column};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "SYK",
    full_name: "syrk",
    description: "Symmetric rank-k operations",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [3, 2, 8, 8],
    regs: [21, 26, 21, 28],
    smem: 0,
    source: "PolyBench",
};

const TAG_A: u16 = 0;
const TAG_C: u16 = 1;

/// Column words each thread consumes per panel (32 bytes: one Maxwell
/// line, a quarter of a Fermi line).
const PANEL_WORDS: u64 = 8;

/// The syrk workload model.
#[derive(Debug, Clone)]
pub struct Syrk {
    /// Row blocks (each 256 rows, one per grid-X index).
    pub grid_x: u32,
    /// Column panels (each `PANEL_WORDS` wide, one per grid-Y index).
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Syrk {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Syrk {
            grid_x: 4,
            grid_y: 32,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Syrk {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_y as u64 * PANEL_WORDS
    }
}

impl KernelSpec for Syrk {
    fn name(&self) -> String {
        format!("SYK({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let row0 = bx as u64 * 256 + warp as u64 * 32;
        let col0 = by as u64 * PANEL_WORDS;
        let mut prog = Program::new();
        // A walked twice (A and A-transpose contributions of the rank-k
        // update read the same row panel).
        for pass in 0..2 {
            prog.extend(panel_reads(
                TAG_A,
                row0,
                self.row_words(),
                col0,
                PANEL_WORDS,
                32,
            ));
            prog.push(Op::Compute(8));
            let _ = pass;
        }
        // C panel update (read-modify-write, column strided).
        prog.extend(panel_reads(TAG_C, row0, self.row_words(), col0, 2, 32));
        prog.push(write_column(TAG_C, row0, self.row_words(), col0, 32));
        prog
    }
}

impl Workload for Syrk {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn a_lines(s: &Syrk, cta: u64, line_bytes: u32) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| s.warp_program(&ctx(cta), w))
            .filter_map(|op| op.access().cloned())
            .filter(|a| a.tag == TAG_A)
            .flat_map(|a| coalesce_lines(&a, line_bytes))
            .collect()
    }

    fn a_words(s: &Syrk, cta: u64) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| s.warp_program(&ctx(cta), w))
            .filter_map(|op| op.access().cloned())
            .filter(|a| a.tag == TAG_A)
            .flat_map(|a| a.addrs)
            .collect()
    }

    #[test]
    fn line_sharing_without_word_sharing_on_128b() {
        let s = Syrk::new(2, 8);
        // Row-major cta = by*grid_x + bx: CTAs 0 and 2 share the bx=0 row
        // block and cover adjacent column panels (by=0 and by=1).
        let w0 = a_words(&s, 0);
        let w1 = a_words(&s, 2);
        assert_eq!(w0.intersection(&w1).count(), 0, "no word sharing");
        let l0 = a_lines(&s, 0, 128);
        let l1 = a_lines(&s, 2, 128);
        assert!(l0.intersection(&l1).count() > 0, "128B lines shared");
    }

    #[test]
    fn no_line_sharing_on_32b() {
        let s = Syrk::new(2, 8);
        let l0 = a_lines(&s, 0, 32);
        let l1 = a_lines(&s, 2, 32);
        assert_eq!(l0.intersection(&l1).count(), 0, "32B lines private");
    }

    #[test]
    fn different_row_blocks_fully_disjoint() {
        let s = Syrk::new(2, 4);
        // CTA 0 is (bx=0, by=0); CTA 1 is (bx=1, by=0): different row block.
        let l0 = a_lines(&s, 0, 128);
        let l1 = a_lines(&s, 1, 128);
        assert_eq!(l0.intersection(&l1).count(), 0);
    }

    #[test]
    fn info_matches_table2() {
        let s = Syrk::for_arch(ArchGen::Maxwell);
        assert_eq!(s.info().category, PaperCategory::CacheLine);
        assert_eq!(s.info().opt_agents, [3, 2, 8, 8]);
        assert_eq!(s.regs, 21);
    }
}
