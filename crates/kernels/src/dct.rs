//! DCT — 8x8 discrete cosine transform (CUDA SDK `dct8x8`).
//!
//! Every CTA re-reads the 8x8 cosine coefficient table (shared by the
//! whole grid) and additionally walks a per-column quantization strip
//! indexed by `blockIdx.x`, shared down each grid column: algorithm
//! locality clustered by X-partitioning. Its own image blocks stream
//! through once.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "DCT",
    full_name: "dct8x8",
    description: "Discrete cosine transform",
    category: PaperCategory::Algorithm,
    warps_per_cta: 2,
    partition: PartitionHint::X,
    opt_agents: [8, 16, 32, 24],
    regs: [14, 17, 22, 19],
    smem: 512,
    source: "CUDA SDK",
};

const TAG_IMAGE: u16 = 0;
const TAG_COEF: u16 = 1;
const TAG_QUANT: u16 = 2;
const TAG_OUT: u16 = 3;

/// The 8x8 DCT workload model.
#[derive(Debug, Clone)]
pub struct Dct {
    /// CTA tiles along X.
    pub grid_x: u32,
    /// CTA tiles along Y.
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Dct {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Dct {
            grid_x: 32,
            grid_y: 96,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Dct {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn image_row_words(&self) -> u64 {
        self.grid_x as u64 * 8
    }
}

impl KernelSpec for Dct {
    fn name(&self) -> String {
        format!("DCT({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 64u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        // The 64-word cosine table, shared by every CTA.
        prog.push(read_words(TAG_COEF, 0, 32));
        prog.push(read_words(TAG_COEF, 32, 32));
        // Per-column quantization strip (64 words indexed by bx).
        prog.push(read_words(TAG_QUANT, bx as u64 * 64 + warp as u64 * 32, 32));
        // The CTA's own 8x8 block: warp w loads rows 4w..4w+4 (streaming).
        for r in 0..4u64 {
            let row = by as u64 * 8 + warp as u64 * 4 + r;
            let word = row * self.image_row_words() + bx as u64 * 8;
            prog.push(read_words(TAG_IMAGE, word, 8));
        }
        prog.push(Op::Barrier);
        prog.push(Op::Compute(32)); // row pass + column pass
        prog.push(Op::Barrier);
        for r in 0..4u64 {
            let row = by as u64 * 8 + warp as u64 * 4 + r;
            let word = row * self.image_row_words() + bx as u64 * 8;
            prog.push(write_words(TAG_OUT, word, 8));
        }
        prog
    }
}

impl Workload for Dct {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn occupancy_is_slot_bound() {
        // WP=2: Fermi is CTA-slot bound at 8; Kepler at 16; Maxwell 32.
        let expect = [8u32, 16, 32, 32];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let d = Dct::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &d.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn coefficient_table_shared_quant_strip_columnar() {
        let d = Dct::new(4, 4);
        let by_tag = |cta, tag| {
            d.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == tag)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(by_tag(0, TAG_COEF), by_tag(9, TAG_COEF));
        // Quant strip: CTA 1 (bx=1,by=0) matches CTA 5 (bx=1,by=1).
        assert_eq!(by_tag(1, TAG_QUANT), by_tag(5, TAG_QUANT));
        assert_ne!(by_tag(1, TAG_QUANT), by_tag(2, TAG_QUANT));
    }

    #[test]
    fn image_blocks_disjoint() {
        let d = Dct::new(3, 3);
        let mut all: Vec<u64> = Vec::new();
        for cta in 0..9 {
            for w in 0..2 {
                all.extend(
                    d.warp_program(&ctx(cta), w)
                        .iter()
                        .filter_map(|op| op.access())
                        .filter(|a| a.tag == TAG_IMAGE)
                        .flat_map(|a| a.addrs.clone()),
                );
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
