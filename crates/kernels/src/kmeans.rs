//! KMN — k-means clustering (Rodinia).
//!
//! Every CTA streams its own slice of the point array but re-reads the
//! *entire centroid table* when assigning points to clusters. The
//! centroid table is therefore reused by every CTA in the grid: textbook
//! algorithm-related inter-CTA locality. The paper finds KMN is also the
//! algorithm app most sensitive to CTA throttling (optimal agents = 1 on
//! all four architectures): the point stream of concurrently-resident
//! CTAs thrashes the centroids out of the small L1 between reuses.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "KMN",
    full_name: "kmeans",
    description: "Clustering algorithm",
    category: PaperCategory::Algorithm,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [1, 1, 1, 1],
    regs: [14, 17, 16, 18],
    smem: 0,
    source: "Rodinia",
};

const TAG_POINTS: u16 = 0;
const TAG_CENTROIDS: u16 = 1;
const TAG_ASSIGN: u16 = 2;

/// The k-means workload model.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// CTAs in the (1D) grid.
    pub grid: u32,
    /// Clusters (centroid count).
    pub k: u32,
    /// Features per point.
    pub features: u32,
    /// Point chunks per CTA; the centroid table is re-walked once per
    /// chunk, as the Rodinia kernel re-reads every centroid per point.
    pub chunks: u32,
    /// Registers per thread (architecture dependent, Table 2).
    pub regs: u32,
}

impl Kmeans {
    /// Default evaluation-scale instance for `arch`. The centroid table
    /// (k x features words) is sized so that it thrashes against the
    /// point stream at full occupancy but survives in L1 once throttled —
    /// the effect behind KMN's optimal agent count of 1 in Table 2.
    pub fn for_arch(arch: ArchGen) -> Self {
        Kmeans {
            grid: 240,
            k: 256,
            features: 8,
            chunks: 2,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance (Fermi register footprint).
    pub fn new(grid: u32, k: u32, features: u32) -> Self {
        Kmeans {
            grid,
            k,
            features,
            chunks: 1,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for Kmeans {
    fn name(&self) -> String {
        format!("KMN(grid={},k={},f={})", self.grid, self.k, self.features)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        let threads_per_cta = 256u64;
        for c in 0..self.chunks as u64 {
            let point0 = ((ctx.cta * self.chunks as u64 + c) * threads_per_cta + warp as u64 * 32)
                * self.features as u64;
            // Stream this chunk's 32 points per warp (feature-major rows,
            // coalesced per feature plane).
            for f in 0..self.features as u64 {
                prog.push(read_words(TAG_POINTS, point0 + f * 32, 32));
            }
            // Walk the full centroid table: k * features words, warp-wide,
            // once per point chunk (every point compares to every centroid).
            let table_words = self.k as u64 * self.features as u64;
            let mut w = 0;
            while w < table_words {
                let lanes = (table_words - w).min(32) as u32;
                prog.push(read_words(TAG_CENTROIDS, w, lanes));
                prog.push(Op::Compute(4));
                w += 32;
            }
            // Write the chunk's per-point cluster assignments.
            prog.push(write_words(
                TAG_ASSIGN,
                (ctx.cta * self.chunks as u64 + c) * threads_per_cta + warp as u64 * 32,
                32,
            ));
        }
        prog
    }
}

impl Workload for Kmeans {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn table2_row() {
        let k = Kmeans::for_arch(ArchGen::Fermi);
        assert_eq!(k.info().abbr, "KMN");
        assert_eq!(k.info().warps_per_cta, 8);
        assert_eq!(k.launch().warps_per_cta(32), 8);
        assert_eq!(k.regs, 14);
        assert_eq!(Kmeans::for_arch(ArchGen::Pascal).regs, 18);
    }

    #[test]
    fn baseline_ctas_per_sm_matches_table2() {
        // Table 2 "CTAs": 6/8/8/8 for Fermi/Kepler/Maxwell/Pascal.
        let expect = [6u32, 8, 8, 8];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let k = Kmeans::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &k.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn centroid_table_is_shared_across_ctas() {
        let k = Kmeans::new(4, 16, 4);
        let ctx = |cta| CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        };
        let p0 = k.warp_program(&ctx(0), 0);
        let p1 = k.warp_program(&ctx(1), 0);
        let centroid_addrs = |p: &Program| {
            p.iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_CENTROIDS)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(centroid_addrs(&p0), centroid_addrs(&p1));
        // Point loads are disjoint.
        let points = |p: &Program| {
            p.iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_POINTS)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        assert!(points(&p0).iter().all(|a| !points(&p1).contains(a)));
    }

    #[test]
    fn partial_tail_load_has_fewer_lanes() {
        // 5 features x 5 clusters = 25 words: single 25-lane load.
        let k = Kmeans::new(1, 5, 5);
        let ctx = CtaContext {
            cta: 0,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 1,
        };
        let p = k.warp_program(&ctx, 0);
        let lanes: Vec<usize> = p
            .iter()
            .filter_map(|op| op.access())
            .filter(|a| a.tag == TAG_CENTROIDS)
            .map(|a| a.addrs.len())
            .collect();
        assert_eq!(lanes, vec![25]);
    }
}
