//! BFS — breadth-first search (Rodinia `bfs`).
//!
//! Each CTA scans a slice of the frontier, gathers the irregular
//! adjacency lists of its active vertices and writes visited flags. The
//! cross-CTA reuse (shared neighbours) is data-dependent, and the flag
//! writes interfere with other CTAs' reads of the same cache lines —
//! Table 2 labels BFS with the combined "Data&Writing" category.

use crate::common::{gather_words, mix_range, read_words, scatter_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "BFS",
    full_name: "bfs",
    description: "Breadth-first search",
    category: PaperCategory::DataWrite,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [2, 6, 6, 7],
    regs: [17, 18, 19, 20],
    smem: 0,
    source: "Rodinia",
};

const TAG_FRONTIER: u16 = 0;
const TAG_EDGES: u16 = 1;
const TAG_VISITED: u16 = 2;

/// The BFS workload model.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// CTAs in the 1D grid.
    pub grid: u32,
    /// Vertices in the (synthetic) graph.
    pub vertices: u64,
    /// Neighbours expanded per vertex.
    pub degree: u32,
    /// Deterministic seed shaping the graph.
    pub seed: u64,
    /// Registers per thread.
    pub regs: u32,
}

impl Bfs {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Bfs {
            grid: 240,
            vertices: 1 << 16,
            degree: 4,
            seed: 0xBF5,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, vertices: u64, degree: u32, seed: u64) -> Self {
        Bfs {
            grid,
            vertices,
            degree,
            seed,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for Bfs {
    fn name(&self) -> String {
        format!(
            "BFS(grid={},v{},d{})",
            self.grid, self.vertices, self.degree
        )
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        // Scan this warp's frontier slice (coalesced).
        let f0 = (ctx.cta * 8 + warp as u64) * 32;
        prog.push(read_words(TAG_FRONTIER, f0, 32));
        for hop in 0..self.degree as u64 {
            // Gather neighbour records: a small-world mixture of local and
            // far edges, with hubs (low vertex ids) shared across CTAs.
            let addrs: Vec<u64> = (0..32u64)
                .map(|lane| {
                    let v = f0 + lane;
                    let r = mix_range(self.seed ^ (v * self.degree as u64 + hop), 100);
                    if r < 30 {
                        // Hub edge: lands on a popular vertex.
                        mix_range(v ^ hop, 64)
                    } else {
                        mix_range(v.wrapping_mul(31) ^ hop, self.vertices)
                    }
                })
                .collect();
            prog.push(gather_words(TAG_EDGES, &addrs));
            prog.push(Op::Compute(4));
            // Mark neighbours visited: irregular writes that evict other
            // CTAs' cached lines (the write-related half of the category).
            prog.push(scatter_words(TAG_VISITED, &addrs));
        }
        prog
    }
}

impl Workload for Bfs {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn edge_words(b: &Bfs, cta: u64) -> std::collections::BTreeSet<u64> {
        (0..8)
            .flat_map(|w| b.warp_program(&ctx(cta), w))
            .filter_map(|op| match op {
                Op::Load(a) if a.tag == TAG_EDGES => Some(a.addrs.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn hubs_create_accidental_sharing() {
        let b = Bfs::new(16, 1 << 14, 4, 3);
        let shared = edge_words(&b, 0).intersection(&edge_words(&b, 7)).count();
        assert!(shared > 0, "hub vertices must collide across CTAs");
    }

    #[test]
    fn visited_writes_hit_read_lines() {
        let b = Bfs::new(4, 1 << 12, 2, 3);
        let p = b.warp_program(&ctx(0), 0);
        let reads: std::collections::BTreeSet<u64> = p
            .iter()
            .filter_map(|op| match op {
                Op::Load(a) if a.tag == TAG_EDGES => Some(a.addrs.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        let writes: std::collections::BTreeSet<u64> = p
            .iter()
            .filter_map(|op| match op {
                Op::Store(a) if a.tag == TAG_VISITED => Some(a.addrs.clone()),
                _ => None,
            })
            .flatten()
            .map(|a| {
                a - crate::common::array_base(TAG_VISITED) + crate::common::array_base(TAG_EDGES)
            })
            .collect();
        assert_eq!(reads.len(), writes.len());
    }

    #[test]
    fn degree_scales_expansion() {
        let b1 = Bfs::new(2, 1 << 10, 1, 1);
        let b3 = Bfs::new(2, 1 << 10, 3, 1);
        let gathers = |b: &Bfs| {
            b.warp_program(&ctx(0), 0)
                .iter()
                .filter(|op| matches!(op, Op::Load(a) if a.tag == TAG_EDGES))
                .count()
        };
        assert_eq!(gathers(&b3), 3 * gathers(&b1));
    }
}
