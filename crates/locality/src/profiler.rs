//! The reuse profiler: classifies every global-memory reuse in the pre-L1
//! access stream as intra-warp, intra-CTA (inter-warp) or inter-CTA.
//!
//! This replaces the paper's GPGPU-Sim instrumentation (§3.2): "we use
//! GPGPU-Sim to track the data reuse of all memory access requests and
//! estimate the percentage of inter-CTA reuse among the overall
//! data-reuse. Note that this estimation is data-driven and is independent
//! of cache design or CTA-scheduling policy." The profiler is likewise
//! purely address-stream-driven: it implements
//! [`TraceSink`](gpu_sim::TraceSink) and never looks at latencies or
//! placements.

use crate::wordmap::WordMap;
use gpu_sim::{AccessEvent, TraceSink};

/// The scope a reuse was classified into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseScope {
    /// Same warp of the same CTA touched the word before.
    IntraWarp,
    /// A different warp of the same CTA touched the word before.
    IntraCta,
    /// A different CTA touched the word before.
    InterCta,
}

/// Word-granularity toucher record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Toucher {
    cta: u64,
    warp: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct WordInfo {
    last: Option<Toucher>,
    /// Distinct-CTA approximation: the first toucher plus a flag for
    /// "another CTA has touched this word".
    first_cta: u64,
    multi_cta: bool,
    /// 0 means "never touched" (the [`WordMap`] presence sentinel).
    touches: u64,
}

/// Aggregate reuse statistics over one traced kernel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseSummary {
    /// Word-granularity accesses observed (per active lane, deduplicated
    /// within one warp instruction).
    pub accesses: u64,
    /// Accesses that re-touched a word previously touched by the same warp.
    pub intra_warp: u64,
    /// Accesses that re-touched a word previously touched by another warp
    /// of the same CTA.
    pub intra_cta: u64,
    /// Accesses that re-touched a word previously touched by another CTA.
    pub inter_cta: u64,
    /// Distinct words touched.
    pub words: u64,
    /// Words touched by more than one CTA.
    pub words_multi_cta: u64,
    /// Words touched more than once (by anyone).
    pub words_reused: u64,
}

impl ReuseSummary {
    /// Total reuse events (every access that touched a known word).
    pub fn reuses(&self) -> u64 {
        self.intra_warp + self.intra_cta + self.inter_cta
    }

    /// Fraction of all reuse that crosses the CTA boundary — the paper's
    /// Figure 3 metric (its average over 33 applications is ≈45%).
    pub fn inter_cta_share(&self) -> f64 {
        let r = self.reuses();
        if r == 0 {
            return 0.0;
        }
        self.inter_cta as f64 / r as f64
    }

    /// Fraction of all reuse that stays within a CTA (intra-warp plus
    /// inter-warp).
    pub fn intra_cta_share(&self) -> f64 {
        let r = self.reuses();
        if r == 0 {
            return 0.0;
        }
        (self.intra_warp + self.intra_cta) as f64 / r as f64
    }

    /// Fraction of accesses that are reuses at all (data-reuse intensity).
    pub fn reuse_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.reuses() as f64 / self.accesses as f64
    }
}

/// Trace sink that builds a [`ReuseSummary`] at word granularity.
///
/// # Examples
///
/// ```
/// use gpu_sim::{arch, Simulation};
/// use gpu_sim::{CtaContext, KernelSpec, LaunchConfig, MemAccess, Op, Program};
/// use locality::ReuseProfiler;
///
/// struct Shared;
/// impl KernelSpec for Shared {
///     fn name(&self) -> String { "shared".into() }
///     fn launch(&self) -> LaunchConfig { LaunchConfig::new(32u32, 32u32) }
///     fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
///         // Every CTA reads the same 32 words: pure inter-CTA reuse.
///         vec![Op::Load(MemAccess::coalesced(0, 0, 32, 4))]
///     }
/// }
///
/// let mut profiler = ReuseProfiler::new();
/// Simulation::new(arch::gtx570(), &Shared).run_traced(&mut profiler)?;
/// let summary = profiler.summary();
/// assert!(summary.inter_cta_share() > 0.9);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct ReuseProfiler {
    words: WordMap<WordInfo>,
    /// Maintained incrementally, including the word-population fields
    /// (`words`, `words_multi_cta`, `words_reused`), so [`summary`]
    /// [`Self::summary`] is O(1) instead of a scan.
    summary: ReuseSummary,
    /// Optional per-array filter: when set, only accesses with this tag
    /// are profiled.
    only_tag: Option<u16>,
    /// Per-record lane-dedup scratch (reused so the per-access hot path
    /// stays allocation-free).
    seen_words: Vec<u64>,
}

impl ReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts profiling to a single array tag.
    pub fn for_tag(tag: u16) -> Self {
        ReuseProfiler {
            only_tag: Some(tag),
            ..Self::default()
        }
    }

    /// Finishes and returns the aggregate summary.
    pub fn summary(&self) -> ReuseSummary {
        self.summary
    }

    /// Emits the profiler's classification decisions as telemetry
    /// counters under `scope`: one `locality/reuse_*` counter per scope
    /// class plus the access and word totals. The conservation law
    /// `reuse_intra_warp + reuse_intra_cta + reuse_inter_cta <=
    /// accesses` is pinned by the repo-root telemetry tests.
    pub fn record_obs(&self, obs: &cta_obs::Obs, scope: &str) {
        let s = self.summary();
        obs.counter("locality/accesses", scope, s.accesses);
        obs.counter("locality/reuse_intra_warp", scope, s.intra_warp);
        obs.counter("locality/reuse_intra_cta", scope, s.intra_cta);
        obs.counter("locality/reuse_inter_cta", scope, s.inter_cta);
        obs.counter("locality/words", scope, s.words);
        obs.counter("locality/words_multi_cta", scope, s.words_multi_cta);
    }

    /// Per-word reuse scope shares `(intra_warp, intra_cta, inter_cta)`
    /// normalized to sum to 1.0 over all reuse (0s when no reuse).
    pub fn shares(&self) -> (f64, f64, f64) {
        let s = self.summary();
        let r = s.reuses();
        if r == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            s.intra_warp as f64 / r as f64,
            s.intra_cta as f64 / r as f64,
            s.inter_cta as f64 / r as f64,
        )
    }
}

impl TraceSink for ReuseProfiler {
    fn record(&mut self, e: &AccessEvent<'_>) {
        if let Some(t) = self.only_tag {
            if e.tag != t {
                return;
            }
        }
        // Deduplicate lanes within one warp instruction at word granularity
        // (a warp touching the same word in many lanes is one request).
        let mut seen_words = std::mem::take(&mut self.seen_words);
        seen_words.clear();
        for &addr in e.addrs {
            let word = addr / 4;
            if seen_words.contains(&word) {
                continue;
            }
            seen_words.push(word);
            self.summary.accesses += 1;
            let info = self.words.slot(word);
            if info.touches == 0 {
                info.first_cta = e.cta;
                self.summary.words += 1;
            } else if info.touches == 1 {
                self.summary.words_reused += 1;
            }
            info.touches += 1;
            if info.first_cta != e.cta && !info.multi_cta {
                info.multi_cta = true;
                self.summary.words_multi_cta += 1;
            }
            if let Some(prev) = info.last {
                let scope = if prev.cta != e.cta {
                    ReuseScope::InterCta
                } else if prev.warp != e.warp {
                    ReuseScope::IntraCta
                } else {
                    ReuseScope::IntraWarp
                };
                match scope {
                    ReuseScope::IntraWarp => self.summary.intra_warp += 1,
                    ReuseScope::IntraCta => self.summary.intra_cta += 1,
                    ReuseScope::InterCta => self.summary.inter_cta += 1,
                }
            }
            info.last = Some(Toucher {
                cta: e.cta,
                warp: e.warp,
            });
        }
        self.seen_words = seen_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Level;

    fn event(cta: u64, warp: u32, addrs: &[u64], is_write: bool) -> gpu_sim::OwnedAccessEvent {
        gpu_sim::OwnedAccessEvent {
            time: 0,
            sm_id: 0,
            slot: 0,
            cta,
            warp,
            tag: 0,
            is_write,
            is_atomic: false,
            bytes_per_lane: 4,
            addrs: addrs.to_vec(),
            latency: 1,
            served_by: Level::L1,
        }
    }

    fn feed(p: &mut ReuseProfiler, ev: &gpu_sim::OwnedAccessEvent) {
        p.record(&AccessEvent {
            time: ev.time,
            sm_id: ev.sm_id,
            slot: ev.slot,
            cta: ev.cta,
            warp: ev.warp,
            tag: ev.tag,
            is_write: ev.is_write,
            is_atomic: ev.is_atomic,
            bytes_per_lane: ev.bytes_per_lane,
            addrs: &ev.addrs,
            latency: ev.latency,
            served_by: ev.served_by,
        });
    }

    #[test]
    fn classifies_three_scopes() {
        let mut p = ReuseProfiler::new();
        feed(&mut p, &event(0, 0, &[0, 4], false)); // first touches
        feed(&mut p, &event(0, 0, &[0], false)); // intra-warp
        feed(&mut p, &event(0, 1, &[4], false)); // intra-CTA
        feed(&mut p, &event(1, 0, &[0], false)); // inter-CTA
        let s = p.summary();
        assert_eq!(s.accesses, 5);
        assert_eq!(s.intra_warp, 1);
        assert_eq!(s.intra_cta, 1);
        assert_eq!(s.inter_cta, 1);
        assert_eq!(s.words, 2);
        assert_eq!(s.words_multi_cta, 1);
        assert_eq!(s.words_reused, 2);
    }

    #[test]
    fn duplicate_lanes_in_one_instruction_count_once() {
        let mut p = ReuseProfiler::new();
        feed(&mut p, &event(0, 0, &[0, 0, 4], false)); // lanes 0 and 1 hit word 0
        let s = p.summary();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reuses(), 0);
    }

    #[test]
    fn shares_normalize() {
        let mut p = ReuseProfiler::new();
        feed(&mut p, &event(0, 0, &[0], false));
        feed(&mut p, &event(1, 0, &[0], false));
        feed(&mut p, &event(2, 0, &[0], false));
        let (iw, ic, xc) = p.shares();
        assert_eq!((iw, ic), (0.0, 0.0));
        assert!((xc - 1.0).abs() < 1e-12);
        assert!((p.summary().inter_cta_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tag_filter_ignores_other_arrays() {
        let mut p = ReuseProfiler::for_tag(7);
        feed(&mut p, &event(0, 0, &[0], false)); // tag 0 -> ignored
        assert_eq!(p.summary().accesses, 0);
    }

    #[test]
    fn empty_profile_is_well_defined() {
        let p = ReuseProfiler::new();
        let s = p.summary();
        assert_eq!(s.reuse_rate(), 0.0);
        assert_eq!(s.inter_cta_share(), 0.0);
        assert_eq!(s.intra_cta_share(), 0.0);
    }
}
