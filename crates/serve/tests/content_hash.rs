//! Property battery for the request content digest — the key of the
//! content-addressed plan cache.
//!
//! Three properties carry the cache's correctness:
//!
//! 1. **Formatting invariance**: the digest depends only on semantic
//!    fields. Field order, whitespace, unknown fields, the request id
//!    and the deadline must not move it — otherwise parameter-sweep
//!    twins stop sharing traced programs.
//! 2. **Semantic sensitivity**: flipping any semantic field (GPU, app,
//!    grid, block, regs, smem, any access parameter, the mode) must
//!    move the digest — otherwise the cache serves a wrong plan.
//! 3. **App-space injectivity**: every Figure 3 suite app on every
//!    preset hashes to a distinct digest, and the cached response is
//!    byte-identical to a cold plan of the same request.

use cta_serve::proto::parse_request;
use cta_serve::{Server, ServerConfig};
use proptest::prelude::*;

fn digest_of(line: &str) -> u128 {
    let req = parse_request(line)
        .unwrap_or_else(|(_, e)| panic!("fixture must parse, got {}: {}", e.code, e.message));
    req.digest().0
}

/// A raw-kernel request line built from explicit parameters, with the
/// fields in a caller-chosen order and optional noise fields.
#[allow(clippy::too_many_arguments)]
fn raw_line(
    id: &str,
    gpu: &str,
    grid: (u32, u32),
    block: u32,
    regs: u32,
    stride: (u64, u64),
    swapped: bool,
    noise: bool,
) -> String {
    let access = format!(
        r#"{{"tag":0,"base":4096,"cta_stride":{},"warp_stride":{}}}"#,
        stride.0, stride.1
    );
    let kernel = if swapped {
        format!(
            r#"{{"regs":{regs},"accesses":[{access}],"block":{block},"grid":[{},{}]}}"#,
            grid.0, grid.1
        )
    } else {
        format!(
            r#"{{"grid":[{},{}],"block":{block},"regs":{regs},"accesses":[{access}]}}"#,
            grid.0, grid.1
        )
    };
    let noise = if noise {
        r#""client":"sweep-7","attempt":3,"#
    } else {
        ""
    };
    if swapped {
        format!(r#"  {{ {noise}"kernel": {kernel} , "gpu" : "{gpu}" , "id":"{id}" }}"#)
    } else {
        format!(r#"{{"id":"{id}","gpu":"{gpu}",{noise}"kernel":{kernel}}}"#)
    }
}

proptest! {
    #[test]
    fn digest_ignores_formatting_ids_and_unknown_fields(
        (gx, gy, block) in (1u32..512, 1u32..16, 1u32..33),
        (regs, cs, ws) in (1u32..64, 0u64..1 << 20, 0u64..4096),
    ) {
        let block = block * 32;
        let a = raw_line("a", "GTX980", (gx, gy), block, regs, (cs, ws), false, false);
        let b = raw_line(
            "totally-different-id", "gtx 980", (gx, gy), block, regs, (cs, ws), true, true,
        );
        prop_assert_eq!(digest_of(&a), digest_of(&b));
        // The deadline is an execution hint, not plan content.
        let c = a.replacen("\"gpu\"", "\"deadline_ms\":250,\"gpu\"", 1);
        prop_assert_eq!(digest_of(&a), digest_of(&c));
    }

    #[test]
    fn digest_moves_with_every_semantic_field(
        (gx, gy, block) in (2u32..512, 2u32..16, 1u32..32),
        (regs, cs, ws) in (2u32..64, 1u64..1 << 20, 1u64..4096),
    ) {
        let block = block * 32;
        let base = raw_line("p", "GTX980", (gx, gy), block, regs, (cs, ws), false, false);
        let flips = [
            raw_line("p", "GTX570", (gx, gy), block, regs, (cs, ws), false, false),
            raw_line("p", "GTX980", (gx + 1, gy), block, regs, (cs, ws), false, false),
            raw_line("p", "GTX980", (gx, gy - 1), block, regs, (cs, ws), false, false),
            raw_line("p", "GTX980", (gx, gy), block + 32, regs, (cs, ws), false, false),
            raw_line("p", "GTX980", (gx, gy), block, regs - 1, (cs, ws), false, false),
            raw_line("p", "GTX980", (gx, gy), block, regs, (cs - 1, ws), false, false),
            raw_line("p", "GTX980", (gx, gy), block, regs, (cs, ws + 1), false, false),
        ];
        let d0 = digest_of(&base);
        for flipped in &flips {
            prop_assert!(d0 != digest_of(flipped), "flip not hashed: {}", flipped);
        }
        // Access-list extension and kind/bytes flips move it too.
        let extended = base.replacen(
            "]}}",
            r#",{"tag":1,"base":0,"reps":2}]}}"#,
            1,
        );
        prop_assert!(d0 != digest_of(&extended));
        let store = base.replacen("\"tag\":0,", "\"tag\":0,\"kind\":\"store\",", 1);
        prop_assert!(d0 != digest_of(&store));
        let wide = base.replacen("\"tag\":0,", "\"tag\":0,\"bytes\":8,", 1);
        prop_assert!(d0 != digest_of(&wide));
    }

    #[test]
    fn named_digest_separates_app_gpu_and_mode((a, g) in (0usize..33, 0usize..4)) {
        let apps = fig3_abbrs();
        let gpus = ["GTX570", "TeslaK40", "GTX980", "GTX1080"];
        let base = format!(r#"{{"id":"n","gpu":"{}","app":"{}"}}"#, gpus[g], apps[a]);
        let d0 = digest_of(&base);
        let other_gpu = gpus[(g + 1) % gpus.len()];
        let flipped = format!(r#"{{"id":"n","gpu":"{}","app":"{}"}}"#, other_gpu, apps[a]);
        prop_assert!(d0 != digest_of(&flipped));
        let other_app = apps[(a + 1) % apps.len()].clone();
        let flipped = format!(r#"{{"id":"n","gpu":"{}","app":"{}"}}"#, gpus[g], other_app);
        prop_assert!(d0 != digest_of(&flipped));
        let measured = base.replacen("\"app\"", "\"mode\":\"measured\",\"app\"", 1);
        prop_assert!(d0 != digest_of(&measured), "mode is semantic");
        // Case and whitespace of the names are not.
        let sloppy = format!(
            r#"{{ "id":"m", "gpu":" {} ", "app":"{}" }}"#,
            gpus[g].to_lowercase(),
            apps[a]
        );
        prop_assert_eq!(d0, digest_of(&sloppy));
    }
}

fn fig3_abbrs() -> Vec<String> {
    gpu_kernels::suite::fig3_suite(gpu_sim::ArchGen::Fermi)
        .iter()
        .map(|w| w.info().abbr.to_string())
        .collect()
}

#[test]
fn all_fig3_apps_on_all_presets_hash_pairwise_distinct() {
    let apps = fig3_abbrs();
    assert_eq!(apps.len(), 33, "Figure 3 suite");
    let gpus = ["GTX570", "TeslaK40", "GTX980", "GTX1080"];
    let mut seen = std::collections::HashMap::new();
    for gpu in gpus {
        for app in &apps {
            let line = format!(r#"{{"id":"x","gpu":"{gpu}","app":"{app}"}}"#);
            let d = digest_of(&line);
            if let Some(prev) = seen.insert(d, (gpu, app.clone())) {
                panic!("digest collision: {gpu}/{app} vs {}/{}", prev.0, prev.1);
            }
        }
    }
    assert_eq!(seen.len(), 33 * 4);
}

#[test]
fn cached_response_is_byte_identical_to_a_cold_plan() {
    // A cold server per request vs one warmed server answering twice:
    // the cache must be invisible in the response bytes. A handful of
    // apps spanning the locality categories keeps this fast in debug.
    let warmed = Server::new(ServerConfig {
        threads: 1,
        queue_cap: 0,
        ..ServerConfig::default()
    });
    for (gpu, app) in [
        ("GTX570", "MM"),
        ("GTX980", "BS"),
        ("GTX1080", "NW"),
        ("TeslaK40", "HS"),
    ] {
        let line = format!(r#"{{"id":"c","gpu":"{gpu}","app":"{app}"}}"#);
        let cold = Server::new(ServerConfig {
            threads: 1,
            queue_cap: 0,
            ..ServerConfig::default()
        })
        .answer(&line, None);
        let miss = warmed.answer(&line, None);
        let hit = warmed.answer(&line, None);
        assert_eq!(cold, miss, "{gpu}/{app}");
        assert_eq!(miss, hit, "{gpu}/{app}: hits serve the filled body");
    }
    let stats = warmed.cache_stats();
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.hits, 4);
}
