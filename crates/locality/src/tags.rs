//! Per-array reuse accounting: which logical arrays of a kernel carry
//! reuse and which merely stream.
//!
//! This is the probe behind the paper's bypassing decision (§4.3-(II)):
//! "we bypass the streaming accesses to L1 ... to prevent them from
//! contending resources with the accesses that have inter-CTA reuse."

use crate::wordmap::WordMap;
use gpu_sim::{AccessEvent, ArrayTag, FxHashMap, LaneSet, TraceSink};

/// Reuse statistics of one array tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagSummary {
    /// Word-granularity accesses to this array.
    pub accesses: u64,
    /// Accesses that re-touched a previously-touched word.
    pub reuses: u64,
    /// Reuses whose previous toucher was a different CTA.
    pub inter_cta: u64,
    /// Stores to this array.
    pub writes: u64,
}

impl TagSummary {
    /// Fraction of accesses that are reuses.
    pub fn reuse_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.reuses as f64 / self.accesses as f64
    }
}

/// Trace sink building per-tag reuse summaries.
///
/// # Examples
///
/// ```
/// use gpu_sim::{arch, Simulation};
/// use gpu_kernels::Kmeans;
/// use locality::TagReuseProfiler;
///
/// let kmn = Kmeans::new(16, 32, 4);
/// let mut profiler = TagReuseProfiler::new();
/// Simulation::new(arch::gtx570(), &kmn).run_traced(&mut profiler)?;
/// // Tag 1 is the centroid table (heavy reuse); tag 0 the point stream.
/// assert!(profiler.summary(1).reuse_rate() > 0.5);
/// assert!(profiler.summary(0).reuse_rate() < 0.05);
/// assert_eq!(profiler.streaming_tags(64), vec![0, 2]);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct TagReuseProfiler {
    /// Per-tag word map: word -> last toucher CTA + 1 (0 = unseen). Tags
    /// are few (a handful of logical arrays), so a linear-scanned vec
    /// beats hashing the composite `(tag, word)` key per lane.
    words: Vec<(ArrayTag, WordMap<u64>)>,
    tags: FxHashMap<ArrayTag, TagSummary>,
    /// Per-record word dedup scratch: a generation-stamped set cleared in
    /// O(1) per event, replacing a linear-scanned vec that went quadratic
    /// on wide gathers.
    seen: LaneSet,
}

impl TagReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summary for one tag (zeros if never seen).
    pub fn summary(&self, tag: ArrayTag) -> TagSummary {
        self.tags.get(&tag).copied().unwrap_or_default()
    }

    /// All observed tags with their summaries, sorted by tag.
    pub fn summaries(&self) -> Vec<(ArrayTag, TagSummary)> {
        let mut v: Vec<_> = self.tags.iter().map(|(&t, &s)| (t, s)).collect();
        v.sort_by_key(|(t, _)| *t);
        v
    }

    /// Tags that stream: at least `min_accesses` word accesses with a
    /// reuse rate under 2% — the bypass candidates.
    pub fn streaming_tags(&self, min_accesses: u64) -> Vec<ArrayTag> {
        let mut v: Vec<ArrayTag> = self
            .tags
            .iter()
            .filter(|(_, s)| {
                s.accesses >= min_accesses && (s.reuses as f64) < 0.02 * s.accesses as f64
            })
            .map(|(&t, _)| t)
            .collect();
        v.sort_unstable();
        v
    }
}

impl TraceSink for TagReuseProfiler {
    fn record(&mut self, e: &AccessEvent<'_>) {
        let entry = self.tags.entry(e.tag).or_default();
        if e.is_write {
            entry.writes += e.addrs.len() as u64;
        }
        let words = match self.words.iter().position(|(t, _)| *t == e.tag) {
            Some(i) => &mut self.words[i].1,
            None => {
                self.words.push((e.tag, WordMap::default()));
                &mut self.words.last_mut().expect("just pushed").1
            }
        };
        self.seen.begin();
        for &addr in e.addrs {
            let word = addr / 4;
            if !self.seen.insert(word) {
                continue;
            }
            entry.accesses += 1;
            let slot = words.slot(word);
            if *slot != 0 {
                entry.reuses += 1;
                if *slot != e.cta + 1 {
                    entry.inter_cta += 1;
                }
            }
            *slot = e.cta + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut TagReuseProfiler, tag: u16, cta: u64, addrs: &[u64], is_write: bool) {
        p.record(&AccessEvent {
            time: 0,
            sm_id: 0,
            slot: 0,
            cta,
            warp: 0,
            tag,
            is_write,
            is_atomic: false,
            bytes_per_lane: 4,
            addrs,
            latency: 1,
            served_by: gpu_sim::Level::L1,
        });
    }

    #[test]
    fn separates_streaming_from_reused_tags() {
        let mut p = TagReuseProfiler::new();
        for cta in 0..4u64 {
            feed(
                &mut p,
                0,
                cta,
                &(0..32).map(|l| cta * 128 + l * 4).collect::<Vec<_>>(),
                false,
            );
            feed(
                &mut p,
                1,
                cta,
                &(0..32).map(|l| l * 4).collect::<Vec<_>>(),
                false,
            );
        }
        assert_eq!(p.summary(0).reuses, 0);
        assert_eq!(p.summary(1).reuses, 96);
        assert_eq!(p.summary(1).inter_cta, 96);
        assert_eq!(p.streaming_tags(64), vec![0]);
    }

    #[test]
    fn write_counting() {
        let mut p = TagReuseProfiler::new();
        feed(&mut p, 3, 0, &[0, 4], true);
        assert_eq!(p.summary(3).writes, 2);
        assert_eq!(p.summaries().len(), 1);
    }

    #[test]
    fn small_tags_never_flagged_streaming() {
        let mut p = TagReuseProfiler::new();
        feed(&mut p, 5, 0, &[0], false);
        assert!(p.streaming_tags(64).is_empty());
    }
}
