//! Pass family 4a: happens-before race detection over walked warp
//! programs.
//!
//! The pass replays every warp program of a kernel (idealized-RR
//! dispatch, see [`gpu_sim::walk`]) through a FastTrack-style
//! happens-before engine. Each `(CTA, warp)` pair is a thread; its
//! accesses carry *epochs* `(warp, phase)` — the projection of the full
//! vector clock that the launch's synchronization structure admits:
//!
//! * **Program order** within a warp totally orders its own accesses.
//! * **CTA-wide barriers** (`__syncthreads()`) join all warps of one CTA:
//!   after the k-th barrier every warp's vector clock dominates every
//!   pre-barrier epoch of every peer warp. Since barriers are the *only*
//!   intra-CTA edge, two epochs of different warps are ordered iff their
//!   barrier phases differ — so the clock per access collapses to the
//!   scalar phase without losing precision (the FastTrack epoch
//!   optimization, specialized to barrier-structured programs).
//! * **Across CTAs** of one launch there is no ordering at all (the
//!   paper's transforms use no grid-wide sync), so every conflicting
//!   cross-CTA pair is unordered by construction. Atomics never race
//!   with each other — the hardware serializes them — which is exactly
//!   why the agent protocol's ticket word (Listing 5) must only ever be
//!   touched atomically.
//!
//! Findings: [`INTRA_CTA_RACE`] and [`CROSS_CTA_CONFLICT`] (warn —
//! several suite kernels model real benign idempotent races, e.g. BFS
//! visited flags and HST bin scatters, so unordered conflicts report
//! without failing the gate), [`UNSYNCED_COUNTER_ACCESS`] (deny — a
//! plain access to the reserved agent-counter word is a protocol bug,
//! never benign), and [`BARRIER_DIVERGENCE`] (deny — warps of one CTA
//! disagree on barrier count, a hang on real hardware).

use crate::diag::{
    Report, BARRIER_DIVERGENCE, CROSS_CTA_CONFLICT, INTRA_CTA_RACE, UNSYNCED_COUNTER_ACCESS,
};
use cta_clustering::protocol::COUNTER_TAG;
use gpu_sim::walk::{self, SyncOp};
use gpu_sim::{ArrayTag, CacheOp, FxHashMap, GpuConfig, KernelSpec};
use std::collections::BTreeMap;

/// Memory event kinds the conflict rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Atomic,
}

/// Who has accessed one word, per kind: the first accessor plus a
/// "multiple distinct accessors" flag. Enough to decide whether a new
/// accessor conflicts with *some other* party without storing the set.
#[derive(Debug, Clone, Copy, Default)]
struct Accessors {
    seen: bool,
    first: u64,
    multi: bool,
}

impl Accessors {
    fn note(&mut self, id: u64) {
        if !self.seen {
            self.seen = true;
            self.first = id;
        } else if self.first != id {
            self.multi = true;
        }
    }

    /// Whether some accessor other than `id` has been recorded.
    fn other_than(&self, id: u64) -> bool {
        self.seen && (self.first != id || self.multi)
    }
}

/// Per-(word, epoch) access summary — intra-CTA keyed by barrier phase,
/// cross-CTA keyed by word alone (no inter-CTA edges exist).
#[derive(Debug, Clone, Copy, Default)]
struct WordState {
    reads: Accessors,
    writes: Accessors,
    atomics: Accessors,
}

impl WordState {
    /// Does `(id, kind)` conflict with a recorded access by another
    /// party? Read/read and atomic/atomic pairs never conflict.
    fn conflicts(&self, id: u64, kind: Kind) -> bool {
        match kind {
            Kind::Read => self.writes.other_than(id) || self.atomics.other_than(id),
            Kind::Write => {
                self.reads.other_than(id)
                    || self.writes.other_than(id)
                    || self.atomics.other_than(id)
            }
            Kind::Atomic => self.reads.other_than(id) || self.writes.other_than(id),
        }
    }

    fn note(&mut self, id: u64, kind: Kind) {
        match kind {
            Kind::Read => self.reads.note(id),
            Kind::Write => self.writes.note(id),
            Kind::Atomic => self.atomics.note(id),
        }
    }
}

/// Per-tag finding aggregation (one diagnostic per tag keeps reports
/// readable and deterministic).
#[derive(Debug, Default)]
struct TagFindings {
    count: u64,
    example: Option<String>,
}

impl TagFindings {
    fn note(&mut self, example: impl FnOnce() -> String) {
        self.count += 1;
        if self.example.is_none() {
            self.example = Some(example());
        }
    }
}

/// The streaming happens-before engine: feed it warp programs in walk
/// order ([`visit`](HbPass::visit)), then [`finish`](HbPass::finish) to
/// emit findings. The streaming shape lets the driver fuse this pass
/// with other per-program passes over one walk — program *generation*
/// dominates walk cost for agent kernels, so fusing is the difference
/// between one and two expensive walks per variant.
#[derive(Debug, Default)]
pub struct HbPass {
    /// Intra-CTA state, keyed by (tag, word, phase); cleared at each CTA
    /// boundary (the walk is CTA-major). Keying by phase is load-bearing:
    /// the walk is warp-major, so warp 1 re-enters phase 0 *after* warp 0
    /// ran all its phases — epochs of every phase must stay live until
    /// the CTA ends.
    intra: FxHashMap<(ArrayTag, u64, u32), WordState>,
    /// Cross-CTA state over the whole launch, keyed by (tag, word).
    cross: FxHashMap<(ArrayTag, u64), WordState>,
    /// Tags that are ever stored to or atomic'd anywhere in the launch,
    /// when the caller knows them (e.g. from the static profile of the
    /// wrapped kernel). Reads of a never-written tag cannot conflict
    /// with anything, so the pass skips their per-word bookkeeping —
    /// the bulk of traffic in read-heavy kernels. `None` tracks all.
    written_tags: Option<Vec<ArrayTag>>,
    /// Lane-dedup scratch: words one op touches.
    words: Vec<u64>,
    intra_races: BTreeMap<ArrayTag, TagFindings>,
    cross_conflicts: BTreeMap<ArrayTag, TagFindings>,
    counter_violations: TagFindings,
    divergent_ctas: TagFindings,
    cur_cta: Option<u64>,
    /// Barriers executed per warp of the current CTA.
    barrier_counts: Vec<u32>,
}

impl HbPass {
    /// A fresh pass tracking every access.
    pub fn new() -> Self {
        HbPass::default()
    }

    /// Restricts conflict tracking to `tags` (the launch's write/atomic
    /// tag set, typically from [`crate::StaticProfile`]). Sound as long
    /// as `tags` really covers every tag the walked kernel stores to or
    /// atomics — a read of any other tag can race with nothing.
    pub fn with_written_tags(mut self, tags: Vec<ArrayTag>) -> Self {
        self.written_tags = Some(tags);
        self
    }

    fn flush_cta(&mut self, cta: u64) {
        if self.barrier_counts.windows(2).any(|w| w[0] != w[1]) {
            let counts = &self.barrier_counts;
            self.divergent_ctas
                .note(|| format!("CTA {cta}: per-warp barrier counts {counts:?}"));
        }
        self.barrier_counts.clear();
        self.intra.clear();
    }

    /// Feeds one warp program (walk order: CTA-major, warp-minor).
    pub fn visit(&mut self, ctx: &gpu_sim::CtaContext, warp: u32, prog: &gpu_sim::Program) {
        if self.cur_cta != Some(ctx.cta) {
            if let Some(prev) = self.cur_cta {
                self.flush_cta(prev);
            }
            self.cur_cta = Some(ctx.cta);
        }
        let mut phase: u32 = 0;
        for (_, ev) in walk::sync_ops(prog) {
            let (access, kind) = match ev {
                SyncOp::Barrier => {
                    phase += 1;
                    continue;
                }
                // Prefetches are non-binding hints, not demand accesses:
                // they cannot participate in a data race.
                SyncOp::Read(a) if a.cache_op == CacheOp::PrefetchL1 => continue,
                SyncOp::Read(a) => (a, Kind::Read),
                SyncOp::Write(a) => (a, Kind::Write),
                SyncOp::Atomic(a) => (a, Kind::Atomic),
            };
            if access.tag == COUNTER_TAG && kind != Kind::Atomic {
                let cta = ctx.cta;
                let addr = access.addrs.first().copied().unwrap_or(0);
                self.counter_violations.note(|| {
                    format!(
                        "CTA {cta} warp {warp}: {} to counter word {addr:#x}",
                        if kind == Kind::Write { "store" } else { "load" },
                    )
                });
            }
            // Reads of a tag nobody ever writes cannot conflict: skip
            // their per-word bookkeeping when the write-set is known.
            if kind == Kind::Read {
                if let Some(tags) = &self.written_tags {
                    if !tags.contains(&access.tag) {
                        continue;
                    }
                }
            }
            self.words.clear();
            for &addr in &access.addrs {
                let w = addr / 4;
                if !self.words.contains(&w) {
                    self.words.push(w);
                }
            }
            for &word in &self.words {
                let st = self.intra.entry((access.tag, word, phase)).or_default();
                if st.conflicts(u64::from(warp), kind) {
                    let (cta, tag) = (ctx.cta, access.tag);
                    self.intra_races.entry(access.tag).or_default().note(|| {
                        format!(
                            "CTA {cta}: warp {warp} {kind:?} on tag {tag} word {word:#x} \
                             unordered against a peer warp in barrier phase {phase}"
                        )
                    });
                }
                st.note(u64::from(warp), kind);

                let gl = self.cross.entry((access.tag, word)).or_default();
                if gl.conflicts(ctx.cta, kind) {
                    let (cta, tag) = (ctx.cta, access.tag);
                    self.cross_conflicts
                        .entry(access.tag)
                        .or_default()
                        .note(|| {
                            format!(
                                "CTA {cta} {kind:?} on tag {tag} word {word:#x} conflicts with \
                             another CTA (no inter-CTA ordering exists)"
                            )
                        });
                }
                gl.note(ctx.cta, kind);
            }
        }
        if warp as usize >= self.barrier_counts.len() {
            self.barrier_counts.resize(warp as usize + 1, 0);
        }
        self.barrier_counts[warp as usize] = phase;
    }

    /// Emits the pass's findings onto `report` under `subject`.
    pub fn finish(mut self, subject: &str, report: &mut Report) {
        report.note_subject();
        if let Some(prev) = self.cur_cta.take() {
            self.flush_cta(prev);
        }
        for (tag, f) in &self.intra_races {
            report.emit(
                &INTRA_CTA_RACE,
                subject,
                format!(
                    "{} unordered intra-CTA conflict(s) on tag {tag}; first: {}",
                    f.count,
                    f.example.as_deref().unwrap_or("")
                ),
            );
        }
        for (tag, f) in &self.cross_conflicts {
            report.emit(
                &CROSS_CTA_CONFLICT,
                subject,
                format!(
                    "{} cross-CTA conflicting access(es) on tag {tag}; first: {}",
                    f.count,
                    f.example.as_deref().unwrap_or("")
                ),
            );
        }
        if self.counter_violations.count > 0 {
            report.emit(
                &UNSYNCED_COUNTER_ACCESS,
                subject,
                format!(
                    "{} non-atomic access(es) to the reserved agent-counter tag; first: {}",
                    self.counter_violations.count,
                    self.counter_violations.example.as_deref().unwrap_or("")
                ),
            );
        }
        if self.divergent_ctas.count > 0 {
            report.emit(
                &BARRIER_DIVERGENCE,
                subject,
                format!(
                    "{} CTA(s) with divergent barrier counts; first: {}",
                    self.divergent_ctas.count,
                    self.divergent_ctas.example.as_deref().unwrap_or("")
                ),
            );
        }
    }
}

/// Walks `kernel` under `cfg`'s geometry and emits the concurrency lints
/// onto `report` under `subject` (standalone wrapper around [`HbPass`]).
pub fn check_kernel<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) {
    let mut pass = HbPass::new();
    walk::each_warp_program_on(kernel, cfg, |ctx, warp, prog| pass.visit(ctx, warp, prog));
    pass.finish(subject, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_clustering::protocol::counter_addr;
    use cta_clustering::AgentKernel;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Op, Program};

    /// A configurable two-warp fixture: each warp runs `prog_of(warp)`.
    #[derive(Debug)]
    struct TwoWarp<F: Fn(u64, u32) -> Program>(F);

    impl<F: Fn(u64, u32) -> Program + Send + Sync> KernelSpec for TwoWarp<F> {
        fn name(&self) -> String {
            "two-warp".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(4), 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            (self.0)(ctx.cta, warp)
        }
    }

    fn run<F: Fn(u64, u32) -> Program + Send + Sync>(f: F) -> Report {
        let mut r = Report::new();
        check_kernel(&TwoWarp(f), &arch::gtx570(), "test", &mut r);
        r
    }

    #[test]
    fn same_phase_conflicting_warps_race() {
        // Both warps store CTA-private word 0 with no barrier between.
        let r = run(|cta, _warp| vec![Op::Store(MemAccess::scalar(0, cta * 64, 4))]);
        assert!(r.has(&INTRA_CTA_RACE), "{}", r.render_human());
        assert!(!r.has(&CROSS_CTA_CONFLICT));
    }

    #[test]
    fn barrier_separates_writer_phases() {
        // Warp 0 writes in phase 0, warp 1 in phase 1; both pass one
        // barrier, so the accesses are ordered by the barrier join.
        let r = run(|cta, warp| {
            if warp == 0 {
                vec![Op::Store(MemAccess::scalar(0, cta * 64, 4)), Op::Barrier]
            } else {
                vec![Op::Barrier, Op::Store(MemAccess::scalar(0, cta * 64, 4))]
            }
        });
        assert!(!r.has(&INTRA_CTA_RACE), "{}", r.render_human());
        assert!(!r.has(&BARRIER_DIVERGENCE));
    }

    #[test]
    fn read_read_and_atomic_atomic_never_race() {
        let r = run(|_, _| {
            vec![
                Op::Load(MemAccess::scalar(0, 0, 4)),
                Op::Atomic(MemAccess::scalar(1, 64, 4)),
            ]
        });
        assert!(!r.has(&INTRA_CTA_RACE));
        assert!(!r.has(&CROSS_CTA_CONFLICT), "{}", r.render_human());
    }

    #[test]
    fn cross_cta_write_sharing_warns() {
        // Every CTA stores the same global word: benign-or-not, it is
        // unordered, so the pass reports the warn-level conflict.
        let r = run(|_cta, warp| {
            if warp == 0 {
                vec![Op::Store(MemAccess::scalar(2, 128, 4))]
            } else {
                Vec::new()
            }
        });
        assert!(r.has(&CROSS_CTA_CONFLICT), "{}", r.render_human());
        assert!(!r.has(&INTRA_CTA_RACE));
        assert_eq!(r.deny_count(), 0, "cross-CTA conflicts default to warn");
    }

    #[test]
    fn seeded_bug_plain_counter_access_denied() {
        // Injected bug: the ticket is read with a plain load and written
        // with a plain store instead of one atomic — the Maxwell binding
        // bug the protocol lint exists for.
        let r = run(|_cta, warp| {
            if warp == 0 {
                vec![
                    Op::Load(MemAccess::scalar(COUNTER_TAG, counter_addr(0), 4)),
                    Op::Store(MemAccess::scalar(COUNTER_TAG, counter_addr(0), 4)),
                ]
            } else {
                Vec::new()
            }
        });
        assert!(r.has(&UNSYNCED_COUNTER_ACCESS), "{}", r.render_human());
        assert!(r.deny_count() > 0);
    }

    #[test]
    fn seeded_bug_divergent_barriers_denied() {
        // Injected bug: warp 1 skips the barrier (the unmatched-barrier
        // hazard the throttled agent path must avoid).
        let r = run(|_cta, warp| {
            if warp == 0 {
                vec![Op::Barrier]
            } else {
                Vec::new()
            }
        });
        assert!(r.has(&BARRIER_DIVERGENCE), "{}", r.render_human());
        assert!(r.deny_count() > 0);
    }

    /// The real agent transform's dynamic-binding ticket path must be
    /// race-free: the counter is only ever touched atomically, and the
    /// broadcast barrier keeps all warps phase-aligned.
    #[test]
    fn agent_ticket_path_is_clean() {
        #[derive(Debug, Clone)]
        struct Probe;
        impl KernelSpec for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(Dim3::linear(128), 64u32)
            }
            fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
                vec![Op::Load(MemAccess::scalar(
                    0,
                    ctx.cta * 8 + u64::from(warp) * 4,
                    4,
                ))]
            }
        }
        let cfg = arch::gtx980(); // Maxwell: atomic-ticket binding
        let a = AgentKernel::build(Probe, &cfg).unwrap();
        let mut r = Report::new();
        check_kernel(&a, &cfg, "probe/CLU", &mut r);
        assert!(!r.has(&UNSYNCED_COUNTER_ACCESS), "{}", r.render_human());
        assert!(!r.has(&INTRA_CTA_RACE));
        assert!(!r.has(&BARRIER_DIVERGENCE));
        assert_eq!(r.deny_count(), 0);
    }
}
