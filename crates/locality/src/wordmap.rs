//! Paged word-indexed storage for the stream profilers.
//!
//! The profilers key their state by *word index* (`addr / 4`), and the
//! access streams they observe are overwhelmingly dense: a coalesced warp
//! instruction touches 32 consecutive words, and successive instructions
//! walk consecutive lines. A general-purpose hash map serves that pattern
//! one cache miss per lane — on streaming kernels the map grows to
//! millions of entries and the probe run costs more than the simulation
//! it observes. `WordMap` stores values in fixed-size pages indexed by
//! the high bits of the word index, so neighbouring words share cache
//! lines, and memoizes the last page so the per-lane fast path is a
//! compare plus an array index, no hashing at all.
//!
//! The map is insert-only and value slots are materialized eagerly per
//! page: a freshly-created slot is `V::default()`, and callers encode
//! presence in the value itself (every profiler already carries a
//! "touched" sentinel). Aggregation results are therefore identical to a
//! hash-map-backed implementation; only the memory layout differs.
//!
//! Pages are recycled through a thread-local, per-value-type pool: a
//! matrix run builds and drops one profiler per probe (90+ probes per
//! figure), and without pooling every probe re-pays the allocator for the
//! same few megabytes of page storage. Dropping a `WordMap` returns its
//! pages to the pool; creating a page prefers the pool and re-zeroes the
//! recycled storage (`V::default()` per slot), so pooled and fresh pages
//! are indistinguishable to callers — the differential property test pins
//! that.

use gpu_sim::FxHashMap;
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// log2 of the page size in words: 1024 words = 4 KiB of address space.
const PAGE_SHIFT: u32 = 10;
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
const NO_PAGE: u32 = u32::MAX;

/// Most pages the pool retains per value type. 4096 pages of 1024 words
/// bound the idle pool at a few tens of megabytes for the largest
/// profiler value types while still covering the biggest single-probe
/// footprint seen in the matrix.
const POOL_CAP: usize = 4096;

thread_local! {
    /// Retired pages by value type, awaiting reuse. Thread-local so the
    /// parallel figure harness needs no locking; each worker thread
    /// recycles the pages of the probes it runs.
    static PAGE_POOL: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
}

/// A page for `V` slots: recycled from the pool when available (re-zeroed
/// to `V::default()`), freshly allocated otherwise.
fn acquire_page<V: Default + Clone + 'static>() -> Box<[V]> {
    let recycled = PAGE_POOL
        .try_with(|pool| {
            let mut pool = pool.borrow_mut();
            let page = pool.get_mut(&TypeId::of::<V>())?.pop()?;
            page.downcast::<Box<[V]>>().ok()
        })
        .ok()
        .flatten();
    match recycled {
        Some(mut page) => {
            page.fill(V::default());
            *page
        }
        None => vec![V::default(); PAGE_WORDS].into_boxed_slice(),
    }
}

/// Insert-only sparse array keyed by word index, paged for locality.
#[derive(Debug)]
pub(crate) struct WordMap<V: Default + Clone + 'static> {
    /// Page id (`word >> PAGE_SHIFT`) to index into `pages`.
    index: FxHashMap<u64, u32>,
    pages: Vec<Box<[V]>>,
    /// Memoized resolution of the most recent `slot` call.
    last_page: u64,
    last_idx: u32,
}

impl<V: Default + Clone + 'static> Default for WordMap<V> {
    fn default() -> Self {
        WordMap {
            index: FxHashMap::default(),
            pages: Vec::new(),
            last_page: 0,
            last_idx: NO_PAGE,
        }
    }
}

impl<V: Default + Clone + 'static> Drop for WordMap<V> {
    fn drop(&mut self) {
        if self.pages.is_empty() {
            return;
        }
        // Return pages to the thread's pool, up to the cap. try_with:
        // during thread teardown the pool may already be gone, in which
        // case the pages just drop.
        let _ = PAGE_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            let stack = pool.entry(TypeId::of::<V>()).or_default();
            for page in self.pages.drain(..) {
                if stack.len() >= POOL_CAP {
                    break;
                }
                stack.push(Box::new(page));
            }
        });
    }
}

impl<V: Default + Clone + 'static> WordMap<V> {
    /// The value slot for `word`, creating its page on first touch.
    #[inline]
    pub(crate) fn slot(&mut self, word: u64) -> &mut V {
        let page = word >> PAGE_SHIFT;
        if self.last_idx == NO_PAGE || self.last_page != page {
            let pages = &mut self.pages;
            let idx = *self.index.entry(page).or_insert_with(|| {
                pages.push(acquire_page::<V>());
                (pages.len() - 1) as u32
            });
            self.last_page = page;
            self.last_idx = idx;
        }
        &mut self.pages[self.last_idx as usize][(word & (PAGE_WORDS as u64 - 1)) as usize]
    }

    /// Read-only probe: the slot for `word` if its page exists. A slot
    /// that was never written reads as `V::default()` — callers
    /// distinguish via their presence sentinel, exactly as they would
    /// treat a hash-map miss.
    #[inline]
    pub(crate) fn get(&self, word: u64) -> Option<&V> {
        let idx = *self.index.get(&(word >> PAGE_SHIFT))?;
        Some(&self.pages[idx as usize][(word & (PAGE_WORDS as u64 - 1)) as usize])
    }

    /// Pages currently pooled for this value type on this thread
    /// (test observability).
    #[cfg(test)]
    fn pooled_pages() -> usize {
        PAGE_POOL
            .try_with(|pool| pool.borrow().get(&TypeId::of::<V>()).map_or(0, |s| s.len()))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_persist_and_default() {
        let mut m: WordMap<u64> = WordMap::default();
        assert_eq!(m.get(7), None);
        *m.slot(7) = 42;
        assert_eq!(m.get(7), Some(&42));
        // Same page, untouched slot: default, not absent.
        assert_eq!(m.get(8), Some(&0));
        // Different page.
        assert_eq!(m.get(7 + (1 << 20)), None);
        *m.slot(7 + (1 << 20)) = 9;
        assert_eq!(m.get(7 + (1 << 20)), Some(&9));
        // The memoized page still resolves correctly after switching back.
        assert_eq!(*m.slot(7), 42);
    }

    #[test]
    fn page_boundaries_do_not_alias() {
        let mut m: WordMap<u32> = WordMap::default();
        let last_of_page = (PAGE_WORDS - 1) as u64;
        *m.slot(last_of_page) = 1;
        *m.slot(last_of_page + 1) = 2;
        assert_eq!(m.get(last_of_page), Some(&1));
        assert_eq!(m.get(last_of_page + 1), Some(&2));
    }

    use proptest::prelude::*;
    use std::collections::HashMap as StdHashMap;

    /// A value type no other test uses, so the pool accounting below is
    /// not perturbed by tests running on the same thread.
    #[derive(Debug, Clone, Default, PartialEq)]
    struct PoolProbe(u64);

    #[test]
    fn dropped_pages_are_recycled_zeroed() {
        let before = WordMap::<PoolProbe>::pooled_pages();
        {
            let mut m: WordMap<PoolProbe> = WordMap::default();
            *m.slot(0) = PoolProbe(0xDEAD);
            *m.slot(1 << 20) = PoolProbe(0xBEEF);
        } // drop returns 2 pages
        assert_eq!(WordMap::<PoolProbe>::pooled_pages(), before + 2);
        let mut m2: WordMap<PoolProbe> = WordMap::default();
        // Reuses a pooled page...
        let v = m2.slot(0);
        assert_eq!(*v, PoolProbe::default(), "recycled slot must be zeroed");
        assert_eq!(WordMap::<PoolProbe>::pooled_pages(), before + 1);
        // ...and the whole recycled page reads as default.
        for w in 1..PAGE_WORDS as u64 {
            assert_eq!(m2.get(w), Some(&PoolProbe::default()));
        }
    }

    /// Isolated value type for the pooled-vs-fresh differential below.
    #[derive(Debug, Clone, Default, PartialEq)]
    struct DiffProbe(u64);

    /// Deterministic per-case random stream: proptest drives the seed,
    /// the LCG stretches it into a write sequence.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    proptest! {
        /// Pool recycling is invisible to callers: a map built from
        /// deliberately polluted recycled pages agrees slot-for-slot with
        /// a hash-map reference over the whole address domain — written
        /// slots hold the written value, untouched slots of touched pages
        /// read as `default()` (never as stale garbage from the previous
        /// owner), and untouched pages stay absent.
        #[test]
        fn pooled_pages_behave_like_fresh(
            (seed, polluted_pages, n_writes) in (0u64..u64::MAX, 1usize..8, 1usize..256),
        ) {
            let domain = 6 * PAGE_WORDS as u64;
            let mut rng = Lcg(seed | 1);
            // Pollute the pool: scatter garbage values over several
            // pages, then drop the map so the dirty pages are recycled.
            {
                let mut m: WordMap<DiffProbe> = WordMap::default();
                for p in 0..polluted_pages as u64 {
                    for _ in 0..32 {
                        let w = (p << PAGE_SHIFT) | (rng.next() % PAGE_WORDS as u64);
                        *m.slot(w) = DiffProbe(rng.next() | 1);
                    }
                }
            }
            // Differential: a map that prefers those recycled pages vs a
            // plain hash map.
            let mut m: WordMap<DiffProbe> = WordMap::default();
            let mut reference: StdHashMap<u64, DiffProbe> = StdHashMap::new();
            for _ in 0..n_writes {
                let w = rng.next() % domain;
                let v = DiffProbe(rng.next());
                *m.slot(w) = v.clone();
                reference.insert(w, v);
            }
            let absent = DiffProbe::default();
            for w in 0..domain {
                match m.get(w) {
                    Some(v) => prop_assert_eq!(v, reference.get(&w).unwrap_or(&absent)),
                    // Page never materialized: the reference cannot hold
                    // a value there either.
                    None => prop_assert!(!reference.contains_key(&w)),
                }
            }
        }
    }
}
