//! The Figure 12 / Figure 13 evaluation matrix: all Table 2 applications
//! under all optimization variants on all four architectures.

use crate::runner::{evaluate_app, AppEvaluation, Variant};
use cta_clustering::ClusterError;
use gpu_kernels::PaperCategory;
use gpu_sim::{geometric_mean, ArchGen, GpuConfig};

/// The paper's three figure panels per architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Panel {
    /// Left panels: algorithm-related applications.
    Algorithm,
    /// Middle panels: cache-line-related applications.
    CacheLine,
    /// Right panels: data-, write-related and streaming applications
    /// (no exploitable inter-CTA locality).
    Unexploitable,
}

impl Panel {
    /// Which panel an application belongs to.
    pub fn of(category: PaperCategory) -> Panel {
        match category {
            PaperCategory::Algorithm => Panel::Algorithm,
            PaperCategory::CacheLine => Panel::CacheLine,
            _ => Panel::Unexploitable,
        }
    }

    /// All panels in figure order.
    pub const ALL: [Panel; 3] = [Panel::Algorithm, Panel::CacheLine, Panel::Unexploitable];
}

impl std::fmt::Display for Panel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Panel::Algorithm => "algorithm-related",
            Panel::CacheLine => "cache-line-related",
            Panel::Unexploitable => "data/write/streaming",
        })
    }
}

/// Complete evaluation of one architecture.
#[derive(Debug, Clone)]
pub struct ArchEvaluation {
    /// GPU evaluated.
    pub gpu: String,
    /// Architecture generation.
    pub arch: ArchGen,
    /// Per-application results, in Table 2 order.
    pub apps: Vec<AppEvaluation>,
}

impl ArchEvaluation {
    /// Applications belonging to `panel`, in suite order.
    pub fn panel_apps(&self, panel: Panel) -> Vec<&AppEvaluation> {
        self.apps
            .iter()
            .filter(|a| Panel::of(a.info.category) == panel)
            .collect()
    }

    /// Geometric-mean speedup of `variant` over the apps of `panel`
    /// (the paper's "G-M" bars).
    pub fn geomean_speedup(&self, panel: Panel, variant: Variant) -> f64 {
        geometric_mean(self.panel_apps(panel).iter().map(|a| a.speedup(variant)))
    }

    /// Geometric-mean normalized L2 transactions of `variant` over the
    /// apps of `panel` (Figure 13's aggregate).
    pub fn geomean_l2(&self, panel: Panel, variant: Variant) -> f64 {
        geometric_mean(
            self.panel_apps(panel)
                .iter()
                .map(|a| a.l2_norm(variant).max(1e-9)),
        )
    }

    /// The best clustering variant per app (how the paper summarizes its
    /// headline speedups: the framework picks the right transform).
    pub fn best_clustering_speedup(&self, app: &AppEvaluation) -> f64 {
        [
            Variant::Clustering,
            Variant::ClusteringThrottled,
            Variant::ClusteringThrottledBypass,
        ]
        .iter()
        .map(|&v| app.speedup(v))
        .fold(f64::MIN, f64::max)
    }
}

/// Runs the full evaluation matrix for one GPU.
///
/// # Errors
///
/// Propagates the first app-evaluation failure.
pub fn evaluate_arch(cfg: &GpuConfig) -> Result<ArchEvaluation, ClusterError> {
    let apps = gpu_kernels::suite::table2_suite(cfg.arch)
        .into_iter()
        .map(|w| evaluate_app(cfg, w))
        .collect::<Result<_, _>>()?;
    Ok(ArchEvaluation {
        gpu: cfg.name.clone(),
        arch: cfg.arch,
        apps,
    })
}

/// Runs the evaluation on all four Table 1 platforms.
///
/// # Errors
///
/// Propagates the first app-evaluation failure.
pub fn evaluate_all() -> Result<Vec<ArchEvaluation>, ClusterError> {
    gpu_sim::arch::all_presets()
        .iter()
        .map(evaluate_arch)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_classification() {
        assert_eq!(Panel::of(PaperCategory::Algorithm), Panel::Algorithm);
        assert_eq!(Panel::of(PaperCategory::CacheLine), Panel::CacheLine);
        assert_eq!(Panel::of(PaperCategory::Streaming), Panel::Unexploitable);
        assert_eq!(Panel::of(PaperCategory::DataWrite), Panel::Unexploitable);
        assert_eq!(Panel::of(PaperCategory::Write), Panel::Unexploitable);
        assert_eq!(Panel::of(PaperCategory::Data), Panel::Unexploitable);
    }
}
