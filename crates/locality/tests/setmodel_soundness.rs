//! Soundness battery for the per-set conflict model: the decoder-
//! computed per-set footprints, read counts and stability verdicts of
//! [`locality::SetConflictModel`] must agree *exactly* with the
//! simulator's per-set counters ([`gpu_sim::SetProfile`]), for every
//! kernel, cache geometry, set-index function, aggregated-tag mode and
//! CTA scheduler thrown at it. These are the same three machine-checked
//! invariants `analyze --verify-costmodel` holds over the committed
//! 885-run matrix:
//!
//! 1. the union of distinct tags ever installed into set `s`, across
//!    every SM's sector arrays, equals the model's `footprint[s]`;
//! 2. the simulator's `read_hits[s] + read_misses[s]` equals the
//!    model's `set_reads[s]`;
//! 3. a stable set (`footprint[s] <= ways`) never evicts.

use gpu_sim::sched::{CtaScheduler, HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{
    arch, CacheOp, CtaContext, Dim3, GpuConfig, IndexFn, KernelSpec, LaunchConfig, MemAccess, Op,
    Program, SetProfile, Simulation, WritePolicy,
};
use locality::{AccessSummary, SetConflictModel};
use proptest::prelude::*;

/// Asserts the three per-set invariants between one model and one
/// measured profile.
fn assert_per_set_agreement(model: &SetConflictModel, profile: &SetProfile, what: &str) {
    assert_eq!(
        model.num_sets(),
        profile.num_sets() as u64,
        "{what}: set count diverges"
    );
    for s in 0..profile.num_sets() {
        assert_eq!(
            profile.installed_footprint(s),
            model.footprint[s],
            "{what}: set {s} installed footprint diverges"
        );
        assert_eq!(
            profile.read_hits[s] + profile.read_misses[s],
            model.set_reads[s],
            "{what}: set {s} read transactions diverge"
        );
        if model.footprint[s] <= model.associativity {
            assert_eq!(
                profile.evictions[s], 0,
                "{what}: stable set {s} (footprint {} <= {} ways) evicted",
                model.footprint[s], model.associativity
            );
        }
    }
}

/// Simulates `kernel` on `cfg` with the per-set profile enabled, under
/// every scheduler, and checks the model against each measured profile.
fn assert_profiled<K: KernelSpec>(kernel: &K, cfg: &GpuConfig, what: &str) {
    let summary = AccessSummary::collect_on(kernel, cfg);
    let model = summary.set_conflicts(cfg);
    let scheds: Vec<Box<dyn CtaScheduler>> = vec![
        Box::new(StrictRoundRobin::new()),
        Box::new(HardwareLike::new(0xC1A0_0017)),
        Box::new(Randomized::new(99)),
    ];
    for sched in scheds {
        let label = sched.label();
        let (_, _, profile) = Simulation::new(cfg.clone(), kernel)
            .with_scheduler(sched)
            .run_profiled()
            .unwrap_or_else(|e| panic!("{what}/{label}: {e}"));
        assert_per_set_agreement(&model, &profile, &format!("{what}/{label}"));
    }
}

#[test]
fn suite_apps_agree_per_set_under_both_index_fns() {
    for abbr in ["NW", "BS", "HS"] {
        for index in [IndexFn::Hashed, IndexFn::Modulo] {
            let mut cfg = arch::gtx570();
            cfg.l1.index_fn = index;
            let w = gpu_kernels::suite::by_abbr(abbr, cfg.arch).expect("suite app");
            let adjusted = cfg.prefer_l1(w.launch().smem_per_cta);
            assert_profiled(&w, &adjusted, &format!("{abbr}/{}", index.label()));
        }
    }
}

#[test]
fn ata_variant_agrees_per_set() {
    let cfg = arch::ata_variant(arch::gtx980());
    let w = gpu_kernels::suite::by_abbr("HS", cfg.arch).expect("suite app");
    let adjusted = cfg.prefer_l1(w.launch().smem_per_cta);
    assert_profiled(&w, &adjusted, "gtx980-ATA/HS");
}

// ---------------------------------------------------------------------
// Random kernels × random geometries × index functions × ATA
// ---------------------------------------------------------------------

/// Deterministic per-case random stream (a 64-bit LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// A random but deterministic workload (the same shape as the cost-model
/// battery): each (CTA, warp) program is a pure function of the seed and
/// ids, so walking it statically sees the stream the engine presents.
#[derive(Debug, Clone)]
struct RandKernel {
    seed: u64,
    ctas: u32,
    warps: u32,
    ops: u32,
    /// Footprint in lines of the configured size; small ranges force
    /// set conflicts, large ones leave sets stable.
    range_lines: u64,
}

impl KernelSpec for RandKernel {
    fn name(&self) -> String {
        format!("rand({:#x})", self.seed)
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::linear(self.ctas), self.warps * 32)
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut rng = Lcg(self
            .seed
            .wrapping_add(ctx.cta.wrapping_mul(0x9E37_79B9))
            .wrapping_add(warp as u64 * 0x85EB_CA6B));
        let range = self.range_lines * 128;
        let mut prog = Vec::with_capacity(self.ops as usize);
        for _ in 0..self.ops {
            let addr = rng.next() % range;
            let kind = rng.next() % 10;
            let op = match kind {
                0 => Op::Store(MemAccess::coalesced(1, addr, 32, 4)),
                1 => Op::Atomic(MemAccess::scalar(2, addr, 4)),
                2 => {
                    let mut a = MemAccess::coalesced(0, addr, 32, 4);
                    a.cache_op = CacheOp::BypassL1;
                    Op::Load(a)
                }
                3 => {
                    let mut a = MemAccess::coalesced(0, addr, 32, 4);
                    a.cache_op = CacheOp::PrefetchL1;
                    Op::Load(a)
                }
                4 => {
                    let addrs: Vec<u64> = (0..8).map(|_| rng.next() % range).collect();
                    Op::Load(MemAccess::gather(0, addrs, 4))
                }
                5 => Op::Compute(3),
                _ => Op::Load(MemAccess::coalesced(0, addr, 32, 4)),
            };
            prog.push(op);
        }
        prog
    }
}

proptest! {
    /// For random programs, geometries, write policies, index functions,
    /// aggregated-tag modes and schedulers, the decoder-computed per-set
    /// model matches the simulator's per-set counters exactly.
    #[test]
    fn random_kernel_per_set_counters_match(
        (seed, ctas, warps, ops, range_lines) in
            (0u64..1 << 48, 1u32..24, 1u32..3, 1u32..10, 1u64..96),
        (line_exp, sets_exp, assoc_exp, sectors) in
            (5u32..8, 0u32..4, 0u32..3, 1u32..3),
        (wba, sched_pick, mshr) in (0u32..2, 0u32..4, 1u32..17),
        (ata, modulo) in (0u32..2, 0u32..2),
    ) {
        let kernel = RandKernel { seed, ctas, warps, ops, range_lines };
        let line_bytes = 1u32 << line_exp;
        let assoc = 1u32 << assoc_exp;
        let sets = 1u32 << sets_exp;
        let mut cfg = arch::gtx570();
        cfg.num_sms = 3;
        cfg.l1.line_bytes = line_bytes;
        cfg.l1.associativity = assoc;
        cfg.l1.size_bytes = line_bytes * assoc * sets * sectors;
        cfg.l1.mshr_entries = mshr;
        cfg.l1.write_policy = if wba == 1 {
            WritePolicy::WriteBackAllocate
        } else {
            WritePolicy::WriteEvict
        };
        cfg.l1.aggregated_tags = ata == 1;
        cfg.l1.index_fn = if modulo == 1 { IndexFn::Modulo } else { IndexFn::Hashed };
        cfg.l1_sectors = sectors;
        cfg.validate().expect("constructed geometry must be valid");

        let summary = AccessSummary::collect_on(&kernel, &cfg);
        let model = summary.set_conflicts(&cfg);
        prop_assert_eq!(model.set_reads.iter().sum::<u64>(), summary.reads());

        let sched: Box<dyn CtaScheduler> = match sched_pick {
            0 => Box::new(StrictRoundRobin::new()),
            1 => Box::new(HardwareLike::new(seed)),
            2 => Box::new(Randomized::new(seed)),
            _ => Box::new(HardwareLike::new(!seed)),
        };
        let (_, _, profile) = Simulation::new(cfg.clone(), &kernel)
            .with_scheduler(sched)
            .run_profiled()
            .expect("profiled simulation");
        assert_per_set_agreement(
            &model,
            &profile,
            &format!(
                "rand({seed:#x}) {line_bytes}B x {sets} sets x {assoc} ways x {sectors} \
                 sectors wba={wba} ata={ata} modulo={modulo}"
            ),
        );
    }
}
