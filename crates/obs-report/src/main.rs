//! `obs-report`: render and validate `cta-obs` telemetry.
//!
//! ```text
//! cargo run --release -p obs-report -- [OPTIONS]
//!
//!   --smoke            run an instrumented mini-evaluation (NW + BS on
//!                      the GTX 570 preset), export telemetry, and render
//!                      the metric report
//!   --check FILE       validate FILE against the cta-obs/v1 JSONL schema
//!   --input FILE       render the metric report from an existing JSONL
//!   --jsonl-stdout     with --smoke: print the JSONL export on stdout
//!                      instead of the report (determinism tests
//!                      byte-compare this across thread counts)
//!   --threads N        worker threads for --smoke (default 1)
//!   --out DIR          where --smoke writes <bin>.jsonl and
//!                      <bin>.trace.json (default: current directory)
//! ```
//!
//! Exit status: **0** on success, **1** when `--check` (or the smoke
//! run's self-check) finds an invalid export, **2** on usage errors.

use cta_obs::{parse_json, render_chrome_trace, render_jsonl, validate, Json};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

const BIN: &str = "obs-report";

struct Options {
    smoke: bool,
    check: Option<PathBuf>,
    input: Option<PathBuf>,
    jsonl_stdout: bool,
    threads: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        check: None,
        input: None,
        jsonl_stdout: false,
        threads: 1,
        out: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--jsonl-stdout" => opts.jsonl_stdout = true,
            "--check" => {
                let v = args.next().ok_or("--check needs a file")?;
                opts.check = Some(PathBuf::from(v));
            }
            "--input" => {
                let v = args.next().ok_or("--input needs a file")?;
                opts.input = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a directory")?;
                opts.out = PathBuf::from(v);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !opts.smoke && opts.check.is_none() && opts.input.is_none() {
        return Err("nothing to do: pass --smoke, --check FILE, or --input FILE".into());
    }
    Ok(opts)
}

/// Runs the instrumented mini-evaluation and returns the JSONL export.
/// Small enough for CI (two Fermi workloads), but it exercises every
/// instrumentation site: per-SM cache counters, reuse-distance sinks,
/// classification counters, job spans, and queue-wait/busy clocks.
fn smoke_run(threads: usize) -> String {
    cta_obs::force_enable();
    let cfg = gpu_sim::arch::gtx570();
    {
        let _root = cta_obs::span(format!("bin/{BIN}"));
        let workloads: Vec<Box<dyn gpu_kernels::Workload>> = ["NW", "BS"]
            .iter()
            .map(|abbr| {
                gpu_kernels::suite::by_abbr(abbr, cfg.arch).expect("smoke workload in the suite")
            })
            .collect();
        let evals = cluster_bench::evaluate_apps_par(&cfg, workloads, threads)
            .expect("smoke evaluation succeeds");
        assert_eq!(evals.len(), 2, "smoke evaluation covers both workloads");
    }
    render_jsonl(&cta_obs::global().snapshot(), BIN)
}

/// One parsed JSONL document, grouped for rendering.
#[derive(Default)]
struct Doc {
    bin: String,
    dropped: u64,
    /// metric name -> (distinct keys, total value)
    counters: BTreeMap<String, (u64, u64)>,
    /// metric name -> (series, samples, sum)
    hists: BTreeMap<String, (u64, u64, u64)>,
    /// span name -> count
    spans: BTreeMap<String, u64>,
    /// (kind, name) -> count
    errors: BTreeMap<(String, String), u64>,
}

fn need(obj: &Json, field: &str) -> Result<u64, String> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or(format!("missing numeric field {field:?}"))
}

fn need_str(obj: &Json, field: &str) -> Result<String, String> {
    Ok(obj
        .get(field)
        .and_then(Json::as_str)
        .ok_or(format!("missing string field {field:?}"))?
        .to_string())
}

fn parse_doc(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut lines = text.lines();
    let header = parse_json(lines.next().ok_or("empty document")?)?;
    doc.bin = need_str(&header, "bin")?;
    doc.dropped = need(&header, "dropped")?;
    for (i, line) in lines.enumerate() {
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        match obj.get("t").and_then(Json::as_str) {
            Some("counter") => {
                let slot = doc
                    .counters
                    .entry(need_str(&obj, "name")?)
                    .or_insert((0, 0));
                slot.0 += 1;
                slot.1 += need(&obj, "value")?;
            }
            Some("hist") => {
                let slot = doc
                    .hists
                    .entry(need_str(&obj, "name")?)
                    .or_insert((0, 0, 0));
                slot.0 += 1;
                slot.1 += need(&obj, "count")?;
                slot.2 += need(&obj, "sum")?;
            }
            Some("span") => {
                *doc.spans.entry(need_str(&obj, "name")?).or_insert(0) += need(&obj, "count")?;
            }
            Some("error") => {
                let key = (need_str(&obj, "kind")?, need_str(&obj, "name")?);
                *doc.errors.entry(key).or_insert(0) += need(&obj, "count")?;
            }
            other => return Err(format!("line {}: unknown type {other:?}", i + 2)),
        }
    }
    Ok(doc)
}

fn render_report(doc: &Doc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# cta-obs report — bin \"{}\" (schema {})\n",
        doc.bin,
        cta_obs::SCHEMA
    ));
    if doc.dropped > 0 {
        out.push_str(&format!(
            "warning: {} span events dropped (ring full)\n",
            doc.dropped
        ));
    }

    out.push_str(&format!(
        "\n{:<44} {:>6} {:>16}\n",
        "## counters", "keys", "total"
    ));
    for (name, (keys, total)) in &doc.counters {
        out.push_str(&format!("{name:<44} {keys:>6} {total:>16}\n"));
    }

    out.push_str(&format!(
        "\n{:<38} {:>6} {:>10} {:>14} {:>9}\n",
        "## histograms", "series", "samples", "sum", "mean"
    ));
    for (name, (series, samples, sum)) in &doc.hists {
        let mean = if *samples > 0 {
            format!("{:.1}", *sum as f64 / *samples as f64)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{name:<38} {series:>6} {samples:>10} {sum:>14} {mean:>9}\n"
        ));
    }

    out.push_str(&format!("\n{:<58} {:>8}\n", "## spans", "count"));
    for (name, count) in &doc.spans {
        out.push_str(&format!("{name:<58} {count:>8}\n"));
    }

    out.push_str("\n## errors\n");
    if doc.errors.is_empty() {
        out.push_str("(none)\n");
    } else {
        for ((kind, name), count) in &doc.errors {
            out.push_str(&format!("{kind} {name:?}: {count}\n"));
        }
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("obs-report: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-report: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        return match validate(&text) {
            Ok(s) => {
                println!(
                    "{}: valid {} ({} counters, {} hists, {} spans, {} errors)",
                    path.display(),
                    cta_obs::SCHEMA,
                    s.counters,
                    s.hists,
                    s.spans,
                    s.errors
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs-report: {}: invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if let Some(path) = &opts.input {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-report: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if let Err(e) = validate(&text) {
            eprintln!("obs-report: {}: invalid: {e}", path.display());
            return ExitCode::FAILURE;
        }
        match parse_doc(&text) {
            Ok(doc) => {
                print!("{}", render_report(&doc));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("obs-report: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // --smoke
    let jsonl = smoke_run(opts.threads);
    if let Err(e) = validate(&jsonl) {
        eprintln!("obs-report: smoke export failed self-validation: {e}");
        return ExitCode::FAILURE;
    }
    if opts.jsonl_stdout {
        print!("{jsonl}");
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("obs-report: cannot create {}: {e}", opts.out.display());
        return ExitCode::from(2);
    }
    let jsonl_path = opts.out.join(format!("{BIN}.jsonl"));
    let trace_path = opts.out.join(format!("{BIN}.trace.json"));
    let trace = render_chrome_trace(&cta_obs::global().snapshot(), BIN);
    for (path, text) in [(&jsonl_path, &jsonl), (&trace_path, &trace)] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("obs-report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match parse_doc(&jsonl) {
        Ok(doc) => print!("{}", render_report(&doc)),
        Err(e) => {
            eprintln!("obs-report: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "telemetry: wrote {} and {}",
        jsonl_path.display(),
        trace_path.display()
    );
    ExitCode::SUCCESS
}
