//! Integration tests of the paper's §3.1 empirical observations, driven
//! through the Listing 3 microbenchmark on the simulator.

use cluster_bench::fig2;
use gpu_kernels::Microbench;
use gpu_sim::sched::{Randomized, StrictRoundRobin};
use gpu_sim::{arch, Simulation};

#[test]
fn observation1_temporal_locality_on_every_arch() {
    // Figure 2-(A): subsequent turnarounds hit L1 on all four platforms.
    for cfg in arch::all_presets() {
        let (default, _) = fig2::run_gpu(&cfg).unwrap();
        let total = default.series.len();
        assert!(
            default.l1_class() * 2 >= total,
            "{}: {} of {} at L1 plateau",
            cfg.name,
            default.l1_class(),
            total
        );
        // The slow class is bounded by roughly one turnaround.
        let turnarounds = if matches!(cfg.arch, gpu_sim::ArchGen::Fermi | gpu_sim::ArchGen::Kepler)
        {
            4
        } else {
            2
        };
        assert!(
            default.slow_class() <= total / turnarounds + 4,
            "{}: {} slow of {}",
            cfg.name,
            default.slow_class(),
            total
        );
    }
}

#[test]
fn observation2_spatial_locality_with_staggering() {
    // Figure 2-(B): de-aligned concurrent CTAs still reuse the line the
    // first one fetched.
    for cfg in arch::all_presets() {
        let (_, staggered) = fig2::run_gpu(&cfg).unwrap();
        assert!(
            staggered.slow_class() <= staggered.series.len() / 4,
            "{}: {} slow of {}",
            cfg.name,
            staggered.slow_class(),
            staggered.series.len()
        );
    }
}

#[test]
fn observation3_workload_distribution_is_imbalanced() {
    // §3.1-(3): "the workload distribution is not balanced across SMs,
    // even if the number of SMs can exactly divide the CTA number" —
    // e.g. the Kepler SM 0 executed 60 CTAs rather than the expected 64.
    // Cache and queueing effects give CTAs unequal durations, so the
    // demand-driven refills drift exactly as on hardware.
    let cfg = arch::tesla_k40();
    let kmn = gpu_kernels::Kmeans::new(240, 32, 4);
    let stats = Simulation::new(cfg.clone(), &kmn).run().unwrap();
    assert_eq!(stats.ctas_per_sm.iter().sum::<u64>(), 240);
    let min = *stats.ctas_per_sm.iter().min().unwrap();
    let max = *stats.ctas_per_sm.iter().max().unwrap();
    assert!(
        max > min,
        "hardware-like scheduler must imbalance: {min}..{max}"
    );
}

#[test]
fn observation3_first_wave_depends_on_scheduler_model() {
    let cfg = arch::gtx570();
    let mb = Microbench::for_gpu(&cfg, 2, false);
    // Strict RR: the first wave is exactly u % M.
    let rr = Simulation::new(cfg.clone(), &mb)
        .with_scheduler(Box::new(StrictRoundRobin::new()))
        .run()
        .unwrap();
    for cta in 0..cfg.num_sms as u64 {
        assert_eq!(rr.sm_of(cta), Some(cta as usize % cfg.num_sms));
    }
    // Randomized (GTX750Ti behaviour): it is not.
    let rnd = Simulation::new(cfg.clone(), &mb)
        .with_scheduler(Box::new(Randomized::new(3)))
        .run()
        .unwrap();
    let matches = (0..cfg.num_sms as u64)
        .filter(|&c| rnd.sm_of(c) == Some(c as usize % cfg.num_sms))
        .count();
    assert!(
        matches < cfg.num_sms,
        "randomized must break u % M placement"
    );
}

#[test]
fn fig2_panels_are_reproducible_under_thread_contention() {
    // Flake-surface audit: the Figure 2 latency series must come out
    // identical no matter how many times, or on how many concurrent
    // threads, the probe runs — the randomized scheduler is seeded, and
    // "latency" here is simulated cycles, never wall-clock.
    let cfg = arch::gtx570();
    let (default, staggered) = fig2::run_gpu(&cfg).unwrap();
    let replicas: Vec<(Vec<_>, Vec<_>)> = cluster_bench::par::par_map(&[(); 6], 6, |()| {
        let (d, s) = fig2::run_gpu(&cfg).unwrap();
        (d.series, s.series)
    });
    for (i, (d, s)) in replicas.iter().enumerate() {
        assert_eq!(d, &default.series, "replica {i} default panel drifted");
        assert_eq!(s, &staggered.series, "replica {i} staggered panel drifted");
    }
}

#[test]
fn randomized_scheduler_is_a_pure_function_of_its_seed() {
    // The only randomness in the observation tests is the seeded
    // placement scheduler; pin that the seed fully determines it.
    let cfg = arch::gtx750ti();
    let mb = Microbench::for_gpu(&cfg, 2, false);
    let run = |seed: u64| {
        Simulation::new(cfg.clone(), &mb)
            .with_scheduler(Box::new(Randomized::new(seed)))
            .run()
            .unwrap()
            .placements
    };
    assert_eq!(run(50), run(50), "same seed, same placements");
    assert_ne!(run(50), run(51), "the seed must matter");
}

#[test]
fn gtx750ti_preset_runs_the_microbenchmark() {
    // The paper's fifth probe platform.
    let cfg = arch::gtx750ti();
    let mb = Microbench::for_gpu(&cfg, 2, false);
    let stats = Simulation::new(cfg.clone(), &mb)
        .with_scheduler(Box::new(Randomized::new(50)))
        .run()
        .unwrap();
    assert_eq!(
        stats.placements.len(),
        (cfg.num_sms as u32 * cfg.cta_slots * 2) as usize
    );
}
