//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group`/`sample_size`, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is plain wall-clock sampling — per benchmark it
//! warms up, then takes `sample_size` timed samples and reports
//! median/min/max ns per iteration to stdout. No HTML reports, no
//! statistical regression analysis.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warmup: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up then collecting samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        // Pick an iteration count so one sample costs roughly the mean
        // warm-up iteration time, bounded to keep total time sane.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let iters_per_sample = (1_000_000u128 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(Duration::from_nanos(
                (dt.as_nanos() / iters_per_sample as u128) as u64,
            ));
        }
    }

    fn report(&self, id: &str) {
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let (min, max) = (ns[0], ns[ns.len() - 1]);
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named set of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion
            .run_one(&id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, &mut f);
        self
    }

    fn run_one(&mut self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            warmup: self.warmup,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<44} (no samples: closure never called iter)");
        } else {
            b.report(id);
        }
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; in that mode
            // (or under `--list`) skip the heavy timing loops.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut counter = 0u64;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                counter += 1;
                counter
            })
        });
        assert!(counter > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }
}
