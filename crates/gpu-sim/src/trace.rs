//! Observation hooks: a [`TraceSink`] receives every global-memory access
//! the SMs issue, *before* it enters the L1 — the stream the paper's
//! locality quantification (its §3.2, via GPGPU-Sim) is defined over.

use crate::kernel::ArrayTag;
use crate::memory::Level;

/// One warp-wide global-memory access as observed at the SM's load/store
/// unit, with its resolved service latency.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessEvent<'a> {
    /// Issue cycle.
    pub time: u64,
    /// SM that issued the access.
    pub sm_id: usize,
    /// Hardware CTA slot of the issuing CTA.
    pub slot: u32,
    /// Linear CTA id (in the *launched* grid) of the issuing CTA.
    pub cta: u64,
    /// Warp index within the CTA.
    pub warp: u32,
    /// Logical array tag.
    pub tag: ArrayTag,
    /// Whether this is a store.
    pub is_write: bool,
    /// Whether this is a serializing read-modify-write (the agent
    /// transform's id-bidding ticket op). Atomics are neither plain
    /// reads nor plain writes: concurrency analyses treat them as
    /// synchronization, so the trace must keep them distinguishable.
    pub is_atomic: bool,
    /// Bytes per lane.
    pub bytes_per_lane: u32,
    /// Per-lane byte addresses.
    pub addrs: &'a [u64],
    /// Cycles from issue until the slowest transaction returned
    /// (1 for fire-and-forget stores/prefetches).
    pub latency: u64,
    /// Deepest level that served any transaction of the access.
    pub served_by: Level,
}

/// Receives access events during a simulation run.
///
/// Implementations must be cheap: the engine calls this on every access.
pub trait TraceSink {
    /// Records one access.
    fn record(&mut self, event: &AccessEvent<'_>);
}

/// A sink that owns its events (convenient for tests and analysis passes).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// All recorded events, in issue order per SM (globally ordered by the
    /// engine's event loop).
    pub events: Vec<OwnedAccessEvent>,
}

/// Owned form of [`AccessEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedAccessEvent {
    /// Issue cycle.
    pub time: u64,
    /// SM that issued the access.
    pub sm_id: usize,
    /// Hardware CTA slot.
    pub slot: u32,
    /// Linear CTA id within the launched grid.
    pub cta: u64,
    /// Warp index within the CTA.
    pub warp: u32,
    /// Logical array tag.
    pub tag: ArrayTag,
    /// Whether this is a store.
    pub is_write: bool,
    /// Whether this is a serializing read-modify-write.
    pub is_atomic: bool,
    /// Bytes per lane.
    pub bytes_per_lane: u32,
    /// Per-lane byte addresses.
    pub addrs: Vec<u64>,
    /// Service latency in cycles.
    pub latency: u64,
    /// Deepest serving level.
    pub served_by: Level,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, e: &AccessEvent<'_>) {
        self.events.push(OwnedAccessEvent {
            time: e.time,
            sm_id: e.sm_id,
            slot: e.slot,
            cta: e.cta,
            warp: e.warp,
            tag: e.tag,
            is_write: e.is_write,
            is_atomic: e.is_atomic,
            bytes_per_lane: e.bytes_per_lane,
            addrs: e.addrs.to_vec(),
            latency: e.latency,
            served_by: e.served_by,
        });
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn record(&mut self, event: &AccessEvent<'_>) {
        (**self).record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_owns_events() {
        let mut sink = VecSink::new();
        let addrs = [0u64, 4, 8];
        sink.record(&AccessEvent {
            time: 10,
            sm_id: 2,
            slot: 1,
            cta: 7,
            warp: 0,
            tag: 3,
            is_write: false,
            is_atomic: false,
            bytes_per_lane: 4,
            addrs: &addrs,
            latency: 125,
            served_by: Level::L1,
        });
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.events[0].addrs, vec![0, 4, 8]);
        assert_eq!(sink.events[0].served_by, Level::L1);
    }
}
