//! Regression tests for the parallel evaluation engine: fanning the
//! matrix across worker threads must not change a single byte of the
//! results. Each simulation is single-threaded and seeded, so the only
//! way parallelism could leak in is through job ordering — these tests
//! pin the index-keyed collection down.

use cluster_bench::report::{ratio, Table};
use cluster_bench::{evaluate_app, evaluate_apps_par, AppEvaluation, Variant};
use gpu_sim::arch;

fn workload(abbr: &str) -> Box<dyn gpu_kernels::Workload> {
    gpu_kernels::suite::by_abbr(abbr, gpu_sim::ArchGen::Fermi).expect("suite app")
}

/// Renders one app's figure-12-style row set, exactly as a bin would.
fn render(eval: &AppEvaluation) -> String {
    let mut t = Table::new(&["app", "RD", "CLU", "CLU+TOT", "+BPS", "PFH+TOT", "agents"]);
    t.row(vec![
        eval.info.abbr.to_string(),
        ratio(eval.speedup(Variant::Redirection)),
        ratio(eval.speedup(Variant::Clustering)),
        ratio(eval.speedup(Variant::ClusteringThrottled)),
        ratio(eval.speedup(Variant::ClusteringThrottledBypass)),
        ratio(eval.speedup(Variant::PrefetchThrottled)),
        eval.chosen_agents.to_string(),
    ]);
    t.render()
}

#[test]
fn parallel_results_are_identical_to_serial() {
    let cfg = arch::gtx570();
    let serial = evaluate_app(&cfg, workload("NW")).expect("serial evaluation");
    let serial_rendered = render(&serial);

    for threads in [2, 4] {
        let par = evaluate_apps_par(&cfg, vec![workload("NW")], threads)
            .expect("parallel evaluation")
            .pop()
            .expect("one app evaluated");

        assert_eq!(par.chosen_agents, serial.chosen_agents, "{threads} threads");
        for v in Variant::ALL {
            let (s, p) = (serial.stats(v), par.stats(v));
            // Spot-check the headline metrics with readable failures...
            assert_eq!(p.cycles, s.cycles, "{v} cycles, {threads} threads");
            assert_eq!(
                p.l2_transactions(),
                s.l2_transactions(),
                "{v} L2 txns, {threads} threads"
            );
            assert_eq!(
                p.l1_hit_rate(),
                s.l1_hit_rate(),
                "{v} L1 hit rate, {threads} threads"
            );
            // ...then require every counter to match exactly.
            assert_eq!(p, s, "{v} full stats, {threads} threads");
        }
        // Byte-identical rendered figure output.
        assert_eq!(render(&par), serial_rendered, "{threads} threads");
    }
}

#[test]
fn parallel_preserves_app_order() {
    let cfg = arch::gtx570();
    let abbrs = ["NW", "BS"];
    let serial: Vec<AppEvaluation> = abbrs
        .iter()
        .map(|a| evaluate_app(&cfg, workload(a)).expect("serial evaluation"))
        .collect();
    let par = evaluate_apps_par(&cfg, abbrs.iter().map(|a| workload(a)).collect(), 3)
        .expect("parallel evaluation");
    assert_eq!(par.len(), serial.len());
    for (p, s) in par.iter().zip(&serial) {
        assert_eq!(p.info.abbr, s.info.abbr);
        for v in Variant::ALL {
            assert_eq!(p.stats(v), s.stats(v), "{} {v}", s.info.abbr);
        }
    }
}
