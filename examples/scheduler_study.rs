//! A study of the GigaThread-engine models (paper §3.1-(3)): how CTA
//! placement deviates from the folklore round-robin assumption, and what
//! that does to any technique that relies on it.
//!
//! Run with: `cargo run --release --example scheduler_study`

use gpu_kernels::Kmeans;
use gpu_sim::sched::{CtaScheduler, HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{arch, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = arch::gtx570();
    let kernel = Kmeans::new(240, 32, 4);

    println!("CTA placement under three GigaThread models ({})", cfg.name);
    println!();
    for (name, mut sched) in [
        (
            "strict-rr",
            Box::new(StrictRoundRobin::new()) as Box<dyn CtaScheduler>,
        ),
        ("hardware-like", Box::new(HardwareLike::new(11))),
        ("randomized (GTX750Ti)", Box::new(Randomized::new(11))),
    ] {
        let stats = Simulation::new(cfg.clone(), &kernel)
            .with_scheduler(Box::new(&mut *sched))
            .run()?;

        // How often does the first wave obey `cta % num_sms`?
        let first_wave: usize = (0..cfg.num_sms as u64)
            .filter(|&c| stats.sm_of(c) == Some((c % cfg.num_sms as u64) as usize))
            .count();
        let min = stats.ctas_per_sm.iter().min().unwrap();
        let max = stats.ctas_per_sm.iter().max().unwrap();
        println!("{name}:");
        println!(
            "  first wave matching u % M: {first_wave}/{} CTAs",
            cfg.num_sms
        );
        println!("  per-SM workload: min {min}, max {max} CTAs (paper: imbalanced!)");
        println!("  kernel cycles: {}", stats.cycles);
        println!();
    }
    println!("the paper's observation: the real scheduler is only loosely RR in");
    println!("the first turnaround and demand-driven after, with per-SM imbalance");
    println!("— which is why redirection-based clustering (built on the RR");
    println!("assumption) loses to SM-based agent clustering on real hardware.");
    Ok(())
}
