//! # cta-obs — structured telemetry for the clustering simulator stack
//!
//! A zero-dependency observability layer shared by every crate in the
//! workspace: `gpu-sim` (cache counters, reuse/latency histograms),
//! `cta-locality` (classification decisions), `cluster-bench` and
//! `cta-analyzer` (per-job spans, queue-wait vs busy time).
//!
//! ## Design
//!
//! * **Off by default, near-zero cost.** Telemetry is gated by the
//!   `CLUSTER_OBS` environment variable. When unset (or `0`/`off`),
//!   [`maybe_global`] returns `None`, [`span`] returns an inert guard,
//!   and instrumentation sites reduce to one relaxed atomic load plus an
//!   untaken branch. Figures are byte-identical with telemetry on or off
//!   (pinned by `crates/bench/tests/obs_differential.rs`) because
//!   recording only *observes* — nothing in the simulator reads a
//!   recorder.
//! * **Per-thread sinks, ordered merge.** Each recording thread owns a
//!   sink (counters, histograms, a bounded span ring); the snapshot
//!   merge combines them commutatively, the same determinism discipline
//!   as `cluster_bench::par`.
//! * **Two exporters.** Deterministic JSONL ([`render_jsonl`]) carries
//!   logical content only and is byte-identical at any worker-thread
//!   count; Chrome `trace_event` JSON ([`render_chrome_trace`]) carries
//!   wall-clock spans for flamegraphs. Metric names prefixed `time/`
//!   are wall-clock and appear only in the Chrome view.
//!
//! ## Usage
//!
//! ```
//! let obs = cta_obs::Obs::new();
//! {
//!     let _job = obs.span("GTX570/MM/CLU");
//!     obs.counter("sim/l1_hits", "sm0", 17);
//!     obs.hist("reuse_distance", "tag0/c3", 42);
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("sim/l1_hits", "sm0"), 17);
//! let jsonl = cta_obs::render_jsonl(&snap, "example");
//! cta_obs::validate(&jsonl).unwrap();
//! ```

#![warn(missing_docs)]

mod chrome;
mod hist;
mod jsonl;
mod recorder;
mod snapshot;

pub use chrome::render_chrome_trace;
pub use hist::{bucket_of, bucket_range, Hist};
pub use jsonl::{parse_json, render_jsonl, validate, Json, JsonlSummary, SCHEMA, TIME_PREFIX};
pub use recorder::{Obs, SpanEvent, SpanGuard, SpanKind, DEFAULT_RING_CAPACITY};
pub use snapshot::{ObsError, Snapshot, SpanAgg, TraceSpan};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable gating telemetry. Unset, empty, `0`, or `off`
/// (any case) disables it; anything else enables it. A path-looking
/// value (containing `/`) doubles as the output directory for
/// [`export_global`].
pub const ENV_VAR: &str = "CLUSTER_OBS";

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static GLOBAL: OnceLock<Obs> = OnceLock::new();

fn env_enabled() -> bool {
    match std::env::var(ENV_VAR) {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "off")
        }
    }
}

/// Whether telemetry is enabled for this process. The environment is
/// consulted once and cached; after the first call only a relaxed
/// atomic load remains on the instrumentation path.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = env_enabled();
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Enables telemetry for this process regardless of the environment.
///
/// For tests: integration-test processes flip this instead of mutating
/// `CLUSTER_OBS`, which would race with other tests in the same process.
pub fn force_enable() {
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// The process-wide recorder (created on first use). Instrumentation
/// sites should prefer [`maybe_global`], which is `None` when disabled.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

/// The process-wide recorder, or `None` when telemetry is disabled —
/// the standard instrumentation-site guard:
///
/// ```
/// if let Some(obs) = cta_obs::maybe_global() {
///     obs.counter("sim/l1_hits", "sm0", 1);
/// }
/// ```
pub fn maybe_global() -> Option<&'static Obs> {
    if enabled() {
        Some(global())
    } else {
        None
    }
}

/// Opens a span on the global recorder, or returns an inert guard when
/// telemetry is disabled. The one-liner for instrumenting a scope:
///
/// ```
/// let _job = cta_obs::span("GTX570/MM/CLU");
/// ```
pub fn span(name: impl Into<String>) -> SpanGuard {
    match maybe_global() {
        Some(obs) => obs.span(name),
        None => SpanGuard::noop(),
    }
}

/// Where [`export_global`] writes. If `CLUSTER_OBS` holds a path
/// (contains `/`), that directory; otherwise the current directory.
pub fn out_dir() -> PathBuf {
    match std::env::var(ENV_VAR) {
        Ok(v) if v.contains('/') => PathBuf::from(v),
        _ => PathBuf::from("."),
    }
}

/// Snapshots the global recorder and writes `<out_dir>/<bin>.jsonl`
/// (deterministic) and `<out_dir>/<bin>.trace.json` (Chrome trace).
/// Returns the two paths, or `None` when telemetry is disabled. I/O
/// errors are reported on stderr rather than failing the run — telemetry
/// must never take the figures down with it.
pub fn export_global(bin: &str) -> Option<(PathBuf, PathBuf)> {
    if !enabled() {
        return None;
    }
    let snap = global().snapshot();
    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cta-obs: cannot create {}: {e}", dir.display());
        return None;
    }
    let jsonl_path = dir.join(format!("{bin}.jsonl"));
    let trace_path = dir.join(format!("{bin}.trace.json"));
    if let Err(e) = std::fs::write(&jsonl_path, render_jsonl(&snap, bin)) {
        eprintln!("cta-obs: cannot write {}: {e}", jsonl_path.display());
        return None;
    }
    if let Err(e) = std::fs::write(&trace_path, render_chrome_trace(&snap, bin)) {
        eprintln!("cta-obs: cannot write {}: {e}", trace_path.display());
        return None;
    }
    Some((jsonl_path, trace_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests here run in one process, so they must not mutate the
    // real environment; the env-sensitive paths are covered by the
    // integration tests (which own their processes).

    #[test]
    fn disabled_helpers_are_inert() {
        // CLUSTER_OBS is unset in the test environment unless a caller
        // exported it; either way the helpers must not panic.
        let _ = enabled();
        let _g = span("anything");
        let _ = maybe_global();
    }

    #[test]
    fn force_enable_turns_global_on() {
        force_enable();
        assert!(enabled());
        let obs = maybe_global().expect("enabled");
        obs.counter("lib/test", "k", 3);
        {
            let _g = span("lib/span");
        }
        let snap = global().snapshot();
        assert!(snap.counter("lib/test", "k") >= 3);
        assert!(snap.span_count("lib/span") >= 1);
    }
}
