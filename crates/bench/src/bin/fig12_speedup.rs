//! Regenerates the paper's Figure 12: normalized performance speedup and
//! achieved occupancy for every Table 2 application under every
//! optimization variant, on all four architectures, grouped into the
//! paper's three panels with geometric means.

use cluster_bench::report::{ratio, Table};
use cluster_bench::{configured_threads, evaluate_matrix, Panel, RunClock, Variant};
use cta_clustering::ClusterError;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("fig12_speedup", run)
}

fn run() -> Result<(), ClusterError> {
    let threads = configured_threads();
    let clock = RunClock::start(threads);
    println!("Figure 12: normalized performance speedup and achieved occupancy");
    println!("series: BSL / RD / CLU / CLU+TOT / CLU+TOT+BPS / PFH+TOT (+AC_OCP delta)");
    println!();
    for eval in evaluate_matrix(&gpu_sim::arch::all_presets(), threads)? {
        println!("=== {} ===", eval.gpu);
        for panel in Panel::ALL {
            println!("--- {panel} ---");
            let mut t = Table::new(&[
                "app",
                "RD",
                "CLU",
                "CLU+TOT",
                "+BPS",
                "PFH+TOT",
                "agents",
                "AC_OCP(B->T)",
            ]);
            for app in eval.panel_apps(panel) {
                t.row(vec![
                    app.info.abbr.to_string(),
                    ratio(app.speedup(Variant::Redirection)),
                    ratio(app.speedup(Variant::Clustering)),
                    ratio(app.speedup(Variant::ClusteringThrottled)),
                    ratio(app.speedup(Variant::ClusteringThrottledBypass)),
                    ratio(app.speedup(Variant::PrefetchThrottled)),
                    app.chosen_agents.to_string(),
                    format!(
                        "{:.2}->{:.2}",
                        app.stats(Variant::Baseline).achieved_occupancy,
                        app.stats(Variant::ClusteringThrottled).achieved_occupancy
                    ),
                ]);
            }
            t.row(vec![
                "G-M".into(),
                ratio(eval.geomean_speedup(panel, Variant::Redirection)),
                ratio(eval.geomean_speedup(panel, Variant::Clustering)),
                ratio(eval.geomean_speedup(panel, Variant::ClusteringThrottled)),
                ratio(eval.geomean_speedup(panel, Variant::ClusteringThrottledBypass)),
                ratio(eval.geomean_speedup(panel, Variant::PrefetchThrottled)),
                "".into(),
                "".into(),
            ]);
            print!("{t}");
            println!();
        }
    }
    println!("paper reference geomeans (CLU+TOT):");
    println!("  algorithm:  1.46x / 1.48x / 1.45x / 1.41x (Fermi/Kepler/Maxwell/Pascal)");
    println!("  cache-line: 1.47x / 1.29x / ~1.0x / ~1.0x");
    println!("  data/write/streaming: ~1.0x on every architecture");
    println!();
    println!("{}", clock.footer());
    Ok(())
}
