//! Soundness battery for the static cost model: the hit-rate interval
//! produced by [`locality::AccessSummary`] must contain the L1 read hit
//! rate the event-driven simulator measures, for every kernel, cache
//! geometry and CTA scheduler thrown at it — and the model's predicted
//! read-transaction count must equal the simulator's exactly (the
//! stream the bounds are stated over *is* the stream the engine
//! presents to the L1).

use gpu_sim::sched::{CtaScheduler, HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{
    arch, CacheOp, CtaContext, Dim3, GpuConfig, KernelSpec, LaunchConfig, MemAccess, Op, Program,
    Simulation, WritePolicy,
};
use locality::AccessSummary;
use proptest::prelude::*;

/// The scheduler spectrum every containment check runs under.
fn schedulers() -> Vec<Box<dyn CtaScheduler>> {
    vec![
        Box::new(StrictRoundRobin::new()),
        Box::new(HardwareLike::new(0xC1A0_0017)),
        Box::new(HardwareLike::new(12345)),
        Box::new(Randomized::new(99)),
    ]
}

/// Simulates `kernel` on `cfg` under every scheduler and asserts the
/// measured hit rate lies inside the statically derived interval.
fn assert_contained<K: KernelSpec>(kernel: &K, cfg: &GpuConfig, what: &str) {
    let summary = AccessSummary::collect_on(kernel, cfg);
    let iv = summary.hit_interval(cfg);
    assert!(iv.lo <= iv.hi + 1e-12, "{what}: inverted interval {iv:?}");
    for sched in schedulers() {
        let label = sched.label();
        let stats = Simulation::new(cfg.clone(), kernel)
            .with_scheduler(sched)
            .run()
            .unwrap_or_else(|e| panic!("{what}/{label}: {e}"));
        assert_eq!(
            iv.reads, stats.l1.reads,
            "{what}/{label}: modeled transaction count diverges"
        );
        let measured = stats.l1.read_hit_rate();
        assert!(
            iv.contains(measured),
            "{what}/{label}: measured {measured:.6} outside [{:.6}, {:.6}]",
            iv.lo,
            iv.hi
        );
    }
}

#[test]
fn suite_apps_are_contained_on_both_line_sizes() {
    for cfg in [arch::gtx570(), arch::gtx980()] {
        for abbr in ["NW", "BS", "HS"] {
            let w = gpu_kernels::suite::by_abbr(abbr, cfg.arch).expect("suite app");
            let adjusted = cfg.prefer_l1(w.launch().smem_per_cta);
            assert_contained(&w, &adjusted, &format!("{}/{abbr}", cfg.name));
        }
    }
}

#[test]
fn ata_variant_is_contained() {
    let cfg = arch::ata_variant(arch::gtx980());
    let w = gpu_kernels::suite::by_abbr("HS", cfg.arch).expect("suite app");
    let adjusted = cfg.prefer_l1(w.launch().smem_per_cta);
    assert_contained(&w, &adjusted, "gtx980-ATA/HS");
}

/// Precision regression: the interval is only useful if it is tight.
/// Pins the mean width over the 23 Table 2 apps on the Fermi preset so
/// a model change that silently loosens the bounds fails here.
#[test]
fn table2_mean_interval_width_is_pinned() {
    let base = arch::gtx570();
    let apps = gpu_kernels::suite::table2_suite(base.arch);
    assert_eq!(apps.len(), 23, "Table 2 suite size changed");
    let mut total = 0.0f64;
    for w in &apps {
        let cfg = base.prefer_l1(w.launch().smem_per_cta);
        let iv = AccessSummary::collect_on(w, &cfg).hit_interval(&cfg);
        assert!(iv.lo <= iv.hi + 1e-12, "{}: inverted interval", w.name());
        total += iv.width();
    }
    let mean = total / apps.len() as f64;
    // Measured 0.7137 at introduction: tighten deliberately, never loosen.
    assert!(
        mean <= 0.72,
        "mean interval width regressed: {mean:.4} > 0.72"
    );
}

// ---------------------------------------------------------------------
// Random kernels × random geometries
// ---------------------------------------------------------------------

/// Deterministic per-case random stream (a 64-bit LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// A random but deterministic workload: each (CTA, warp) program is a
/// pure function of the seed and ids, so it is context-independent —
/// the same property the suite kernels satisfy, and the precondition
/// for walking it statically.
#[derive(Debug, Clone)]
struct RandKernel {
    seed: u64,
    ctas: u32,
    warps: u32,
    ops: u32,
    /// Footprint in lines of 128B; small ranges force set conflicts.
    range_lines: u64,
}

impl KernelSpec for RandKernel {
    fn name(&self) -> String {
        format!("rand({:#x})", self.seed)
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::linear(self.ctas), self.warps * 32)
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut rng = Lcg(self
            .seed
            .wrapping_add(ctx.cta.wrapping_mul(0x9E37_79B9))
            .wrapping_add(warp as u64 * 0x85EB_CA6B));
        let range = self.range_lines * 128;
        let mut prog = Vec::with_capacity(self.ops as usize);
        for _ in 0..self.ops {
            let addr = rng.next() % range;
            let kind = rng.next() % 10;
            let op = match kind {
                0 => Op::Store(MemAccess::coalesced(1, addr, 32, 4)),
                1 => Op::Atomic(MemAccess::scalar(2, addr, 4)),
                2 => {
                    let mut a = MemAccess::coalesced(0, addr, 32, 4);
                    a.cache_op = CacheOp::BypassL1;
                    Op::Load(a)
                }
                3 => {
                    let mut a = MemAccess::coalesced(0, addr, 32, 4);
                    a.cache_op = CacheOp::PrefetchL1;
                    Op::Load(a)
                }
                4 => {
                    // Divergent gather across the footprint.
                    let addrs: Vec<u64> = (0..8).map(|_| rng.next() % range).collect();
                    Op::Load(MemAccess::gather(0, addrs, 4))
                }
                5 => Op::Compute(3),
                _ => Op::Load(MemAccess::coalesced(0, addr, 32, 4)),
            };
            prog.push(op);
        }
        prog
    }
}

proptest! {
    /// For random programs, geometries, write policies and schedulers,
    /// the interval contains the measured hit rate and the transaction
    /// accounting matches exactly.
    #[test]
    fn random_kernel_hit_rate_is_contained(
        (seed, ctas, warps, ops, range_lines) in
            (0u64..1 << 48, 1u32..24, 1u32..3, 1u32..10, 1u64..96),
        (line_exp, sets_exp, assoc_exp, sectors) in
            (5u32..8, 0u32..4, 0u32..3, 1u32..3),
        (wba, sched_pick, mshr) in (0u32..2, 0u32..4, 1u32..17),
    ) {
        let kernel = RandKernel { seed, ctas, warps, ops, range_lines };
        let line_bytes = 1u32 << line_exp; // 32..128, all >= the 32B L2 line
        let assoc = 1u32 << assoc_exp;
        let sets = 1u32 << sets_exp;
        let mut cfg = arch::gtx570();
        cfg.num_sms = 3;
        cfg.l1.line_bytes = line_bytes;
        cfg.l1.associativity = assoc;
        cfg.l1.size_bytes = line_bytes * assoc * sets * sectors;
        cfg.l1.mshr_entries = mshr;
        cfg.l1.write_policy = if wba == 1 {
            WritePolicy::WriteBackAllocate
        } else {
            WritePolicy::WriteEvict
        };
        cfg.l1_sectors = sectors;
        cfg.validate().expect("constructed geometry must be valid");

        let summary = AccessSummary::collect_on(&kernel, &cfg);
        let iv = summary.hit_interval(&cfg);
        prop_assert!(iv.lo <= iv.hi + 1e-12);

        let sched: Box<dyn CtaScheduler> = match sched_pick {
            0 => Box::new(StrictRoundRobin::new()),
            1 => Box::new(HardwareLike::new(seed)),
            2 => Box::new(Randomized::new(seed)),
            _ => Box::new(HardwareLike::new(!seed)),
        };
        let stats = Simulation::new(cfg.clone(), &kernel)
            .with_scheduler(sched)
            .run()
            .expect("simulation");
        prop_assert_eq!(iv.reads, stats.l1.reads);
        let measured = stats.l1.read_hit_rate();
        prop_assert!(
            iv.contains(measured),
            "measured {} outside [{}, {}] (cfg {}B line, {} sets, {} ways, {} sectors, wba={})",
            measured, iv.lo, iv.hi, line_bytes, sets, assoc, sectors, wba
        );
    }
}
