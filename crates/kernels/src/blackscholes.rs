//! BS — Black-Scholes option pricing (CUDA SDK `BlackScholes`).
//!
//! The canonical GPU streaming kernel: three coalesced input arrays in,
//! two coalesced output arrays out, every element touched exactly once.
//! The paper uses BS as the archetype of its streaming category
//! (Figure 4-(E)).

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "BS",
    full_name: "BlackScholes",
    description: "Black-Scholes option pricing",
    category: PaperCategory::Streaming,
    warps_per_cta: 4,
    partition: PartitionHint::X,
    opt_agents: [8, 16, 16, 12],
    regs: [23, 25, 21, 19],
    smem: 0,
    source: "CUDA SDK",
};

const TAG_PRICE: u16 = 0;
const TAG_STRIKE: u16 = 1;
const TAG_YEARS: u16 = 2;
const TAG_CALL: u16 = 3;
const TAG_PUT: u16 = 4;

/// The Black-Scholes workload model.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    /// CTAs in the 1D grid.
    pub grid: u32,
    /// Option batches (of 128 words) per CTA.
    pub batches: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl BlackScholes {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        BlackScholes {
            grid: 360,
            batches: 4,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, batches: u32) -> Self {
        BlackScholes {
            grid,
            batches,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for BlackScholes {
    fn name(&self) -> String {
        format!("BS(grid={},b{})", self.grid, self.batches)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 128u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        for b in 0..self.batches as u64 {
            let word = ((ctx.cta * self.batches as u64 + b) * 4 + warp as u64) * 32;
            prog.push(read_words(TAG_PRICE, word, 32));
            prog.push(read_words(TAG_STRIKE, word, 32));
            prog.push(read_words(TAG_YEARS, word, 32));
            prog.push(Op::Compute(25)); // CND evaluations
            prog.push(write_words(TAG_CALL, word, 32));
            prog.push(write_words(TAG_PUT, word, 32));
        }
        prog
    }
}

impl Workload for BlackScholes {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn every_word_touched_once() {
        let bs = BlackScholes::new(3, 2);
        let mut reads: Vec<u64> = Vec::new();
        for cta in 0..3 {
            for w in 0..4 {
                reads.extend(
                    bs.warp_program(&ctx(cta), w)
                        .iter()
                        .filter_map(|op| op.access())
                        .filter(|a| a.tag == TAG_PRICE)
                        .flat_map(|a| a.addrs.clone()),
                );
            }
        }
        let n = reads.len();
        reads.sort_unstable();
        reads.dedup();
        assert_eq!(reads.len(), n);
    }

    #[test]
    fn occupancy_full_on_all_archs() {
        // 4-warp CTAs, light registers: 8/16/16/16 CTAs per SM (warp-slot
        // bound beyond Fermi's CTA slots).
        let expect = [8u32, 16, 16, 16];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let bs = BlackScholes::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &bs.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn five_streams_per_batch() {
        let bs = BlackScholes::new(1, 1);
        let p = bs.warp_program(&ctx(0), 0);
        assert_eq!(p.iter().filter(|o| matches!(o, Op::Load(_))).count(), 3);
        assert_eq!(p.iter().filter(|o| matches!(o, Op::Store(_))).count(), 2);
    }
}
