//! BC — BiCGStab linear-solver sub-kernel (PolyBench `bicg`):
//! `s = A' * r; q = A * p`.
//!
//! Same row-panel shape as the other PolyBench cache-line workloads, with
//! the distinction that the Pascal configuration tolerates full occupancy
//! (Table 2: optimal agents 1/1/1/8).

use crate::common::{panel_reads, read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "BC",
    full_name: "bicg",
    description: "BiCGStab linear solver",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [1, 1, 1, 8],
    regs: [13, 16, 17, 22],
    smem: 0,
    source: "PolyBench",
};

const TAG_A: u16 = 0;
const TAG_P: u16 = 1;
const TAG_R: u16 = 2;
const TAG_Q: u16 = 3;
const TAG_S: u16 = 4;

const PANEL_WORDS: u64 = 8;

/// The bicg workload model.
#[derive(Debug, Clone)]
pub struct Bicg {
    /// Row blocks (256 rows each).
    pub grid_x: u32,
    /// Column panels.
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Bicg {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Bicg {
            grid_x: 4,
            grid_y: 32,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Bicg {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_y as u64 * PANEL_WORDS
    }
}

impl KernelSpec for Bicg {
    fn name(&self) -> String {
        format!("BC({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let row0 = bx as u64 * 256 + warp as u64 * 32;
        let col0 = by as u64 * PANEL_WORDS;
        let mut prog = Program::new();
        // q = A * p: p segment broadcast, panel walked.
        prog.push(read_words(TAG_P, col0, PANEL_WORDS as u32));
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS,
            32,
        ));
        prog.push(Op::Compute(5));
        prog.push(write_words(TAG_Q, row0, 32));
        prog.push(Op::Barrier);
        // s = A' * r: r indexed by the row block.
        prog.push(read_words(TAG_R, row0 / 8, PANEL_WORDS as u32));
        prog.extend(panel_reads(
            TAG_A,
            row0,
            self.row_words(),
            col0,
            PANEL_WORDS / 2,
            32,
        ));
        prog.push(Op::Compute(5));
        if warp == 0 {
            prog.push(write_words(
                TAG_S,
                (bx as u64 * self.grid_y as u64 + by as u64) * PANEL_WORDS,
                PANEL_WORDS as u32,
            ));
        } else {
            prog.push(Op::Compute(1));
        }
        prog
    }
}

impl Workload for Bicg {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn full_occupancy_on_every_arch() {
        // 8-warp CTAs, light registers: 6/8/8/8 CTAs per SM.
        let expect = [6u32, 8, 8, 8];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let b = Bicg::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &b.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn two_phases_write_different_vectors() {
        let b = Bicg::new(2, 2);
        let p = b.warp_program(&ctx(0), 0);
        assert!(p
            .iter()
            .any(|op| matches!(op, Op::Store(a) if a.tag == TAG_Q)));
        assert!(p
            .iter()
            .any(|op| matches!(op, Op::Store(a) if a.tag == TAG_S)));
    }

    #[test]
    fn panel_words_cover_32_bytes_per_thread() {
        let b = Bicg::new(1, 1);
        let p = b.warp_program(&ctx(0), 0);
        let a_loads: Vec<_> = p
            .iter()
            .filter_map(|op| op.access())
            .filter(|a| a.tag == TAG_A)
            .collect();
        // Phase 1 walks 8 words, phase 2 walks 4.
        assert_eq!(a_loads.len(), 12);
        assert!(a_loads.iter().all(|a| a.addrs.len() == 32));
    }
}
