//! SAD — sum of absolute differences, MPEG encoder stage (Parboil `sad`).
//!
//! Streams a current-frame macroblock and the corresponding
//! reference-frame search window, writes SAD scores. All slices are
//! CTA-private: streaming category.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "SAD",
    full_name: "sad",
    description: "Sum of abs differences in MPEG encoder",
    category: PaperCategory::Streaming,
    warps_per_cta: 2,
    partition: PartitionHint::X,
    opt_agents: [8, 16, 20, 20],
    regs: [43, 44, 46, 40],
    smem: 0,
    source: "Parboil",
};

const TAG_CUR: u16 = 0;
const TAG_REF: u16 = 1;
const TAG_SAD: u16 = 2;

/// The SAD workload model.
#[derive(Debug, Clone)]
pub struct Sad {
    /// CTAs in the 1D grid (one macroblock each).
    pub grid: u32,
    /// Search positions evaluated per macroblock.
    pub positions: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Sad {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Sad {
            grid: 512,
            positions: 4,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, positions: u32) -> Self {
        Sad {
            grid,
            positions,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for Sad {
    fn name(&self) -> String {
        format!("SAD(grid={},p{})", self.grid, self.positions)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 64u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        // Current macroblock rows for this warp.
        let cur = (ctx.cta * 2 + warp as u64) * 32;
        prog.push(read_words(TAG_CUR, cur, 32));
        // Reference window: `positions` displaced row reads.
        for p in 0..self.positions as u64 {
            let word = (ctx.cta * self.positions as u64 + p) * 64 + warp as u64 * 32;
            prog.push(read_words(TAG_REF, word, 32));
            prog.push(Op::Compute(8));
        }
        prog.push(write_words(
            TAG_SAD,
            (ctx.cta * 2 + warp as u64) * self.positions as u64,
            self.positions.min(32),
        ));
        prog
    }
}

impl Workload for Sad {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn reference_windows_disjoint() {
        let s = Sad::new(4, 2);
        let refs = |cta| {
            (0..2)
                .flat_map(|w| s.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_REF)
                .flat_map(|a| a.addrs)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(refs(0).intersection(&refs(1)).count(), 0);
    }

    #[test]
    fn positions_scale_reads() {
        let s2 = Sad::new(2, 2);
        let s6 = Sad::new(2, 6);
        let loads = |s: &Sad| {
            s.warp_program(&ctx(0), 0)
                .iter()
                .filter(|op| matches!(op, Op::Load(a) if a.tag == TAG_REF))
                .count()
        };
        assert_eq!(loads(&s6), 3 * loads(&s2));
    }
}
