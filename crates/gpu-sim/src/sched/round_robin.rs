//! The strict round-robin scheduler model.

use super::CtaScheduler;

/// Dispatches CTAs strictly in linear-id order.
///
/// Combined with the engine's round-based initial fill (SM 0, 1, ..., M-1,
/// repeat), this produces exactly the `cta % num_sms` placement that
/// redirection-based clustering (and several prior works the paper cites
/// [11, 27, 31–33]) assume of the GigaThread engine.
#[derive(Debug, Clone, Default)]
pub struct StrictRoundRobin {
    next: u64,
    total: u64,
}

impl StrictRoundRobin {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CtaScheduler for StrictRoundRobin {
    fn reset(&mut self, total_ctas: u64) {
        self.next = 0;
        self.total = total_ctas;
    }

    fn next_for_sm(&mut self, _sm_id: usize, _now: u64) -> Option<u64> {
        if self.next >= self.total {
            return None;
        }
        let c = self.next;
        self.next += 1;
        Some(c)
    }

    fn remaining(&self) -> u64 {
        self.total - self.next
    }

    fn label(&self) -> &'static str {
        "strict-rr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_in_order() {
        let mut s = StrictRoundRobin::new();
        s.reset(5);
        let got: Vec<_> = std::iter::from_fn(|| s.next_for_sm(0, 0)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remaining_counts_down() {
        let mut s = StrictRoundRobin::new();
        s.reset(3);
        assert_eq!(s.remaining(), 3);
        s.next_for_sm(1, 0);
        assert_eq!(s.remaining(), 2);
    }
}
