//! Minimal, dependency-free JSON rendering of a [`Report`].
//!
//! The output is deterministic: lints appear in registry (code) order and
//! diagnostics in the report's canonical (subject, code, message) order,
//! so byte-identical inputs produce byte-identical JSON — the property CI
//! relies on when diffing analyzer output across runs.

use crate::diag::{Report, LINTS};

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a JSON document (version, lint registry,
/// sorted diagnostics, counts).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"lints\": [\n");
    for (i, l) in LINTS.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"code\": \"{}\", \"name\": \"{}\", \"default_level\": \"{}\", \"summary\": \"{}\"}}{}\n",
            l.code,
            l.name,
            l.default_level,
            escape(l.summary),
            if i + 1 < LINTS.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"diagnostics\": [\n");
    let diags = report.diagnostics();
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"code\": \"{}\", \"name\": \"{}\", \"level\": \"{}\", \"subject\": \"{}\", \"message\": \"{}\"}}{}\n",
            d.code,
            d.name,
            d.level,
            escape(&d.subject),
            escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"subjects_checked\": {},\n  \"deny\": {},\n  \"warn\": {}\n}}\n",
        report.subjects_checked(),
        report.deny_count(),
        report.warn_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{AGENT_COVERAGE, PARTITION_COVERAGE};

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_is_deterministic_across_emission_orders() {
        let mut a = Report::new();
        a.emit(&AGENT_COVERAGE, "s2", "m".into());
        a.emit(&PARTITION_COVERAGE, "s1", "m".into());
        let mut b = Report::new();
        b.emit(&PARTITION_COVERAGE, "s1", "m".into());
        b.emit(&AGENT_COVERAGE, "s2", "m".into());
        assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn json_contains_registry_and_counts() {
        let mut r = Report::new();
        r.note_subject();
        r.emit(&AGENT_COVERAGE, "MM/GTX570/CLU", "CTA 3 missing".into());
        let j = render_json(&r);
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"code\": \"CL012\""));
        assert!(j.contains("\"deny\": 1"));
        assert!(j.contains("\"subjects_checked\": 1"));
    }
}
