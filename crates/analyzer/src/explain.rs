//! `rustc --explain`-style long-form lint documentation.
//!
//! Every lint in [`crate::diag::LINTS`] has an entry here — an
//! exhaustiveness test pins that, so adding a lint without its
//! explanation fails the build's test run. The text is what
//! `analyze --explain CLxxx` prints: what the lint proves, why the
//! finding matters for the clustering framework, and what to do about
//! it.

use crate::diag::{lint_by_code, lint_by_name, Lint};

/// The long-form explanation of one lint, keyed by code.
///
/// Returns `None` for unknown codes — the registry in [`crate::diag`]
/// is the source of truth for which codes exist.
pub fn explanation(code: &str) -> Option<&'static str> {
    let text = match code {
        "CL001" => {
            "The partition functions `f` (CTA -> cluster) and `f^-1` (cluster \
             walk -> CTA) must be mutual inverses over the whole launch grid \
             (the paper's Eqs. 4-7); otherwise redirection would compute a \
             different logical CTA than agents would enumerate, and the two \
             clustering implementations would silently diverge.\n\n\
             Fix the axis arithmetic so `invert(assign(cta)) == cta` for every \
             CTA of the grid, including the remainder clusters at the edge."
        }
        "CL002" => {
            "Cluster sizes must stay within `floor(|V|/M)` and `ceil(|V|/M)` \
             (Eqs. 3-5): the paper's locality argument needs clusters of \
             near-equal size so each SM sees a contiguous, balanced share of \
             the grid. An unbalanced partition concentrates reuse on a few \
             SMs and starves the rest.\n\n\
             Check the divisor/remainder split in the partition constructor."
        }
        "CL003" => {
            "Walking every cluster must enumerate every original CTA exactly \
             once. A missed CTA is dropped work (wrong results); a duplicated \
             CTA is repeated work (wrong results for non-idempotent kernels).\n\n\
             This is the partition-level coverage invariant; CL012 checks the \
             same property after the agent transform."
        }
        "CL004" => {
            "A transform constructor (partition, redirection, agents, bypass, \
             throttle) rejected inputs the analyzer derived from the workload \
             itself. The evaluation harness would hit the same error at run \
             time, so the configuration is unrunnable as planned.\n\n\
             The message carries the constructor's own error; fix the grid, \
             occupancy, or throttle degree it names."
        }
        "CL011" => {
            "Redirection-based clustering remaps CTA ids in place, so the \
             remap must be a permutation of the grid: every logical CTA \
             appears exactly once as a target. Anything else drops or \
             duplicates work.\n\n\
             The redirection kernel derives its map from the partition; a \
             failure here usually means CL001/CL003 fired too."
        }
        "CL012" => {
            "Each agent CTA executes a worklist of original CTAs; the union \
             of all worklists must cover the launch grid exactly once. \
             Coverage failures mean the agent transform would compute \
             different results than the baseline kernel.\n\n\
             Check the round-robin stride arithmetic in the worklist builder, \
             especially the interaction of MAX_AGENTS with partial clusters."
        }
        "CL013" => {
            "With ACTIVE_AGENTS < MAX_AGENTS, the throttled-out agents must \
             receive empty worklists and the active ones must share the work \
             in round-robin order. A leak means throttling changes *what* is \
             computed instead of only *how concurrently*.\n\n\
             The fix is in the worklist split, not the protocol: tasks must \
             be dealt only to agents below the active threshold."
        }
        "CL014" => {
            "MAX_AGENTS and the agent launch grid must agree with the \
             occupancy model (registers, shared memory, warp and CTA slots \
             per SM, paper 4.2). If MAX_AGENTS exceeds what an SM can hold \
             resident, the binding protocol deadlocks on real hardware \
             because agents assume co-residency.\n\n\
             Recompute MAX_AGENTS from the occupancy calculator instead of \
             hard-coding it."
        }
        "CL021" => {
            "An L1-bypassed array's lines carry reuse that the L1 would have \
             served. Bypassing exists to keep *streaming* (zero-reuse) \
             arrays from evicting reused lines; bypassing a reused array \
             throws away exactly the hits clustering is trying to create.\n\n\
             Remove the tag from the bypass set, or fix the streaming \
             classifier that put it there."
        }
        "CL022" => {
            "A prefetched line is never demanded afterwards by the issuing \
             warp. The prefetch occupies MSHRs and cache capacity, evicts \
             useful lines, and returns nothing.\n\n\
             Prefetches must target the *next* worklist item's lines \
             (cross-CTA prefetching, paper 4.3); a never-used prefetch \
             usually means the depth or address calculation is wrong."
        }
        "CL023" => {
            "A line is prefetched only after its last demand access - the \
             data arrives when nothing will read it again. Same cost as \
             CL022 (wasted MSHRs and capacity) with a subtler cause: the \
             prefetch is correctly targeted but mis-scheduled.\n\n\
             Move the prefetch issue point ahead of the demand stream it is \
             supposed to cover."
        }
        "CL024" => {
            "The same line is prefetched repeatedly with no intervening \
             demand access. The duplicates waste issue slots and MSHR \
             entries; the first prefetch already covered the demand.\n\n\
             Warn-level because duplicates are wasteful but not wrong. \
             Deduplicate the prefetch stream per worklist window."
        }
        "CL025" => {
            "The kernel's average coalescing degree is below 2 lanes per \
             memory transaction: nearly every lane pays for its own line. \
             Such kernels are bandwidth-bound in a way no CTA-level \
             transform can fix, and clustering results on them are noise.\n\n\
             Warn-level: the lint flags the kernel as a poor clustering \
             candidate, not as incorrect."
        }
        "CL026" => {
            "A throttle request named an ACTIVE_AGENTS outside 1..=MAX_AGENTS. \
             Zero active agents would deadlock the protocol (no one drains \
             the worklists); more than MAX_AGENTS cannot be co-resident.\n\n\
             Use `clamp_active_agents`, or fix the sweep generating the \
             degrees."
        }
        "CL027" => {
            "A requested ACTIVE_AGENTS was repaired by the runtime clamp \
             (usually Table 2's published optimum exceeding this preset's \
             occupancy-derived MAX_AGENTS). The run is valid but executes a \
             different degree than requested - relevant when comparing \
             against the paper's numbers.\n\n\
             Warn-level by design: the clamp is the documented behavior."
        }
        "CL030" => {
            "The locality category re-derived from the walked address streams \
             disagrees with the category recorded in the optimization plan. \
             The plan would then exploit (or skip) locality based on a stale \
             or hand-written label.\n\n\
             Trust the static profile: regenerate the plan, or reconcile the \
             Table 2 label with the observed stream."
        }
        "CL031" => {
            "The plan enables locality exploitation (clustering + bypass) for \
             a category the paper proves unexploitable (data/write/streaming \
             reuse, Figure 5). The transforms would add protocol overhead \
             with no hit-rate upside.\n\n\
             Switch the plan to the latency-tolerance path (prefetching) \
             instead."
        }
        "CL032" => {
            "The plan bypasses an array tag whose static profile shows \
             significant reuse - the plan-level version of CL021 (which \
             checks the rewritten IR). Both usually fire together; this one \
             points at the decision, CL021 at the consequence.\n\n\
             Remove the tag from the plan's bypass set."
        }
        "CL033" => {
            "The plan enables cross-CTA prefetching although the category is \
             exploitable. The paper's decision table (Figure 5) uses \
             prefetching only as the fallback when clustering cannot convert \
             misses into hits; stacking it on an exploitable category wastes \
             MSHRs on lines clustering already keeps resident.\n\n\
             Disable prefetch in the plan, or re-derive the category."
        }
        "CL034" => {
            "The cache geometry cannot be modeled sanely: a sector size that \
             does not divide the line size, an aggregated-tag array over a \
             non-power-of-two bank count, or a zero-set array. The simulator \
             would panic in its constructors; the analyzer fails the gate \
             instead.\n\n\
             Fix the `CacheConfig` the sweep or preset generated."
        }
        "CL101" => {
            "Two warps of one CTA access the same word, at least one writes, \
             and no barrier orders them. Warn-level by default because the \
             suite's irregular kernels (BFS visited flags, histogram \
             scatters) model real, benign, idempotent races.\n\n\
             Audit the access pair; if the race is not idempotent, add a \
             barrier or make the access atomic."
        }
        "CL102" => {
            "CTAs of one launch conflict on a word with no inter-CTA \
             ordering mechanism. GPUs give no cross-CTA ordering except \
             kernel boundaries and atomics, so such conflicts are ordered \
             only by scheduler accident.\n\n\
             Warn-level for the same idempotency reasons as CL101; escalate \
             per-workload when the write values differ."
        }
        "CL103" => {
            "The agent binding protocol's ticket counter word was accessed \
             by a plain load or store. Every access to the counter must be \
             atomic: a torn or reordered plain access breaks the \
             exactly-once task distribution the model checker proves.\n\n\
             Use the protocol's atomic helpers; never read the counter \
             directly."
        }
        "CL104" => {
            "Warps of one CTA reach different numbers of barriers. On real \
             hardware `__syncthreads` in divergent control flow is undefined \
             behavior and usually hangs the CTA.\n\n\
             Restructure the kernel so every warp executes the same barrier \
             sequence."
        }
        "CL110" => {
            "Bounded model checking found a reachable state of the agent \
             binding protocol where no agent can step - a deadlock. The \
             trace in the message replays the interleaving.\n\n\
             Deadlocks here are protocol bugs (ticket/broadcast ordering), \
             not workload bugs; fix the protocol step relation."
        }
        "CL111" => {
            "The model checker found an execution where a task is consumed \
             zero or multiple times. Exactly-once distribution is the \
             protocol's core obligation; violating it corrupts results \
             silently.\n\n\
             The counterexample trace pinpoints the interleaving; check the \
             ticket increment/read ordering."
        }
        "CL112" => {
            "The model checker found an execution where an active agent \
             terminates without draining its task stride - starvation. Work \
             assigned to that agent is dropped.\n\n\
             Check the termination condition against the stride arithmetic."
        }
        "CL120" => {
            "The symbolic (polynomial) abstract interpreter could not prove \
             `invert(assign(cta)) == cta` over the entire u64 domain. Unlike \
             CL001 - which tests concrete grids - this is the closed-form \
             proof; a failure means the identity does not hold algebraically \
             for *some* grid, even if every tested grid passes.\n\n\
             Re-derive the closed forms; do not ship on passing tests alone."
        }
        "CL121" => {
            "The partition/binding arithmetic can overflow u64 on the \
             symbolic domain (e.g. `cta * cluster_size` for adversarial \
             grid dimensions). Overflow wraps silently in release builds \
             and produces wrong CTA ids.\n\n\
             Restructure the arithmetic (divide before multiply, or use \
             widening ops) so the proof goes through."
        }
        "CL201" => {
            "The cost model's *sound upper bound* on the L1 hit rate is near \
             zero at this geometry: compulsory misses dominate the read \
             stream (almost every read touches a distinct line), so no L1 \
             size or associativity in a sweep can recover the kernel. The \
             bound is scheduler- and MSHR-independent - nothing the runtime \
             does can beat it.\n\n\
             Treat the kernel as bandwidth-bound: bypass or prefetch instead \
             of sweeping cache geometry, and let the DSE harness prune the \
             geometry axis."
        }
        "CL202" => {
            "Every cacheable read touches a distinct line, so the miss count \
             is a program invariant: clustering only reorders CTAs, and no \
             reordering can convert a compulsory miss into a hit. The \
             L1-geometry axes of a design-space sweep are provably dead for \
             this kernel (the DSE harness uses exactly this fact to prune).\n\n\
             Expect clustering variants to match the baseline's cache \
             metrics; any difference is protocol overhead, not locality."
        }
        "CL203" => {
            "The kernel performs memory operations but zero cacheable read \
             transactions (everything is bypassed, stored, or atomic). L1 \
             geometry provably cannot affect it; only occupancy and latency \
             effects remain.\n\n\
             Any L1 sweep point spent on this kernel is wasted - the DSE \
             harness prunes the geometry axes outright."
        }
        "CL204" => {
            "The machine-checked soundness obligation of the CL2xx cost \
             model: a simulator-measured L1 hit rate fell outside the \
             statically derived `[lo, hi]` interval, or the modeled read \
             transaction count diverged from the measured one. Emitted only \
             by `analyze --verify-costmodel`, never by the static pass.\n\n\
             This is a bug in the model or the simulator, not the workload: \
             either the abstract interpretation miscounts the access stream, \
             or an engine change altered hit accounting. Bisect with the \
             `costsum_soundness` tests."
        }
        "CL301" => {
            "The per-set conflict analysis pushed the kernel's install-capable \
             line footprint through the configured set-index function and found \
             one set absorbing a super-proportional share: the maximum per-set \
             footprint is several times the mean over occupied sets, and it \
             overflows the associativity. Camped sets serialize misses that a \
             uniform spread would have absorbed, and they widen the sound \
             hit-rate interval because the conflict-aware lower bound cannot \
             credit reuse in overflowing sets.\n\n\
             Check the array strides against the line size and set count - \
             power-of-two strides under modulo indexing are the classic cause. \
             The hashed index function (every preset default) usually \
             dissolves camping; if the lint fires under `Hashed`, the reuse \
             pattern itself is set-degenerate and a geometry change (more \
             sets, higher associativity) is the only lever."
        }
        "CL302" => {
            "Hashed and modulo set indexing provably produce identical \
             behaviour for this kernel and geometry: every set's \
             install-capable footprint fits its ways under *both* decoders, so \
             neither array ever evicts and every read beyond the per-array \
             first touch of a line hits regardless of which function spreads \
             lines over sets. The L1 indexing axis of a design-space sweep is \
             therefore dead for this point: simulating both variants must \
             produce identical cache statistics.\n\n\
             The DSE harness uses exactly this proof to prune the modulo twin \
             of every hashed point (and vice versa). No action is needed; the \
             lint documents why the sweep skipped the axis."
        }
        "CL303" => {
            "Most of this kernel's read transactions land in sets whose \
             install-capable footprint overflows the associativity, and the \
             sound hit-rate interval stays wide there: the conflict-aware \
             lower bound can only credit reuse it can prove survives *any* \
             CTA placement, and overflowing sets admit adversarial schedules \
             that evict between consecutive touches. The geometry - not the \
             model - is what keeps the interval wide.\n\n\
             Warn-level: the finding marks geometry points whose cost-model \
             verdict is weak evidence for design-space decisions. Prefer \
             simulation for these points, or sweep toward geometries (more \
             sets, higher associativity) where the footprint fits and the \
             interval collapses."
        }
        "CL304" => {
            "The machine-checked soundness obligation of the CL3xx set-conflict \
             model: a per-set prediction diverged from the simulator's per-set \
             counters - the decoder-computed install-capable footprint of some \
             set differs from the union of tags the simulator actually \
             installed there, the per-set read transaction count disagrees, or \
             a set the model proves stable (footprint <= ways) recorded an \
             eviction. Emitted only by the `analyze --verify-costmodel` \
             machine check, never by the static pass.\n\n\
             This is a bug in the set model or the simulator's per-set \
             accounting, not the workload: the decoder the model indexes with \
             must be bit-identical to the cache's. Bisect with the \
             `setmodel_soundness` proptest battery."
        }
        "CL401" => {
            "The serving gate: a clustering plan the plan server was about to \
             return failed the static plan audit (CL026/CL031/CL032/CL033 at \
             deny level). `cta-serve` re-derives the kernel's locality profile \
             from the request's access summary and runs `plan::audit_served` \
             on every response before it is written; a failure here means the \
             planner produced a self-contradictory plan - exploiting \
             unexploitable locality, bypassing a reused array, prefetching \
             over an exploit plan, or throttling beyond the occupancy bound.\n\n\
             The CL401 message embeds the underlying deny findings verbatim. \
             Warn-level audit findings are forwarded under their own codes \
             and do not trigger CL401. A served plan that trips this lint is \
             withheld and the request answered with an error, so clients \
             never act on an unsound plan."
        }
        _ => return None,
    };
    Some(text)
}

/// Resolves `query` (a `CLxxx` code, case-insensitive, or a kebab-case
/// lint name) and renders the full `--explain` document for it.
pub fn render(query: &str) -> Option<String> {
    let lint: &'static Lint =
        lint_by_code(&query.to_uppercase()).or_else(|| lint_by_name(&query.to_lowercase()))?;
    let body = explanation(lint.code).expect("every registered lint has an explanation");
    Some(format!(
        "{code}: {name} ({level} by default)\n{underline}\n{summary}\n\n{body}\n",
        code = lint.code,
        name = lint.name,
        level = lint.default_level,
        underline = "=".repeat(lint.code.len() + 2 + lint.name.len()),
        summary = lint.summary,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LINTS;

    #[test]
    fn every_lint_has_an_explanation() {
        for lint in LINTS {
            let text = explanation(lint.code)
                .unwrap_or_else(|| panic!("{} has no --explain entry", lint.code));
            assert!(
                text.len() > 100,
                "{}: explanation suspiciously short",
                lint.code
            );
            assert!(
                text.contains("\n\n"),
                "{}: explanation should have a what and a what-to-do paragraph",
                lint.code
            );
        }
    }

    #[test]
    fn unknown_codes_have_none() {
        assert!(explanation("CL999").is_none());
        assert!(render("CL999").is_none());
        assert!(render("not-a-lint").is_none());
    }

    #[test]
    fn render_resolves_code_and_name() {
        let by_code = render("CL012").expect("code resolves");
        let by_name = render("agent-coverage").expect("name resolves");
        assert_eq!(by_code, by_name);
        assert!(by_code.starts_with("CL012: agent-coverage (deny by default)\n"));
        // Case-insensitive code lookup.
        assert_eq!(render("cl012"), Some(by_code));
    }
}
