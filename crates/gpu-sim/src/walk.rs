//! Static IR walking: enumerate every warp program of a kernel **without
//! running the timing model**.
//!
//! The walker hands each CTA a deterministic, idealized-round-robin
//! [`CtaContext`] (CTA `u` lands on SM `u % num_sms`, occupying slot
//! `u / num_sms` with the matching arrival ticket). Under this dispatch
//! every `(sm, slot)` pair of an agent-transformed kernel appears exactly
//! once, so transforms that read `%smid`/`%warpid`-style hardware state
//! (e.g. `AgentKernel`) generate the same task coverage the real engine
//! would produce when all slots fill — which is precisely the invariant
//! static analysis wants to check.
//!
//! This is the substrate of the `cta-analyzer` crate's IR lints: walking
//! the op streams costs only program generation, no cache or latency
//! simulation, so whole-suite sweeps stay cheap.

use crate::config::GpuConfig;
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::kernel::{ArrayTag, CtaContext, KernelSpec, MemAccess, Op, Program};
use std::collections::BTreeMap;

/// How one op participates in synchronization and conflict analysis.
///
/// This is the view of the IR that concurrency passes (happens-before
/// race detection in `cta-analyzer`) consume: every op is either a
/// memory event on a location set (read / write / atomic
/// read-modify-write), a CTA-wide barrier, or invisible (pure compute —
/// including the agent transform's shared-memory broadcast delay, which
/// carries no globally-visible location).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp<'a> {
    /// A demand or prefetch read of the access's locations.
    Read(&'a MemAccess),
    /// A store to the access's locations.
    Write(&'a MemAccess),
    /// A serializing read-modify-write: both a conflict source against
    /// plain accesses and a synchronization (release/acquire) point —
    /// this is the agent protocol's id-bidding ticket op.
    Atomic(&'a MemAccess),
    /// CTA-wide `__syncthreads()`: joins all warps of the CTA.
    Barrier,
}

impl<'a> SyncOp<'a> {
    /// Classifies one op; `None` for ops with no synchronization or
    /// memory semantics (compute delays).
    pub fn classify(op: &'a Op) -> Option<Self> {
        match op {
            Op::Load(a) => Some(SyncOp::Read(a)),
            Op::Store(a) => Some(SyncOp::Write(a)),
            Op::Atomic(a) => Some(SyncOp::Atomic(a)),
            Op::Barrier => Some(SyncOp::Barrier),
            Op::Compute(_) => None,
        }
    }

    /// The memory access carried by this sync op, if any.
    pub fn access(&self) -> Option<&'a MemAccess> {
        match self {
            SyncOp::Read(a) | SyncOp::Write(a) | SyncOp::Atomic(a) => Some(a),
            SyncOp::Barrier => None,
        }
    }
}

/// Iterates the synchronization-relevant ops of a warp program in issue
/// order, with their op indices (compute delays are skipped).
pub fn sync_ops(prog: &Program) -> impl Iterator<Item = (usize, SyncOp<'_>)> {
    prog.iter()
        .enumerate()
        .filter_map(|(i, op)| SyncOp::classify(op).map(|s| (i, s)))
}

/// Iterator over the idealized-RR dispatch contexts of a launch.
///
/// Yields one [`CtaContext`] per CTA of the grid, in CTA-id order.
pub fn dispatch_contexts(
    kernel: &(impl KernelSpec + ?Sized),
    num_sms: usize,
) -> impl Iterator<Item = CtaContext> {
    let total = kernel.launch().num_ctas();
    let sms = num_sms.max(1);
    (0..total).map(move |cta| CtaContext {
        cta,
        sm_id: (cta % sms as u64) as usize,
        slot: (cta / sms as u64) as u32,
        arrival: cta / sms as u64,
        num_sms: sms,
    })
}

/// Walks every warp program of `kernel` under idealized-RR dispatch,
/// invoking `f(ctx, warp, program)` once per (CTA, warp) pair in
/// deterministic order (CTA-major, warp-minor).
///
/// Program buffers are recycled across calls, so the walk performs O(1)
/// allocations regardless of grid size.
pub fn each_warp_program<K, F>(kernel: &K, num_sms: usize, warp_size: u32, mut f: F)
where
    K: KernelSpec + ?Sized,
    F: FnMut(&CtaContext, u32, &Program),
{
    let warps = kernel.launch().warps_per_cta(warp_size.max(1));
    let mut prog = Program::new();
    for ctx in dispatch_contexts(kernel, num_sms) {
        for warp in 0..warps {
            kernel.warp_program_into(&ctx, warp, &mut prog);
            f(&ctx, warp, &prog);
        }
    }
}

/// [`each_warp_program`] with geometry taken from a GPU preset.
pub fn each_warp_program_on<K, F>(kernel: &K, cfg: &GpuConfig, f: F)
where
    K: KernelSpec + ?Sized,
    F: FnMut(&CtaContext, u32, &Program),
{
    each_warp_program(kernel, cfg.num_sms, cfg.warp_size, f);
}

/// Static per-array access profile, gathered in one IR walk.
///
/// One profile per [`ArrayTag`] a kernel names: op and lane counts by
/// access kind, the array's footprint in cache lines, its address range,
/// and the dominant intra-warp lane stride — the inputs a cost model
/// needs to classify an array as streaming, strided or irregular without
/// running the timing model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagProfile {
    /// Warp-level load ops naming this tag (any cache op, incl. bypass).
    pub reads: u64,
    /// Warp-level store ops naming this tag.
    pub writes: u64,
    /// Warp-level atomic ops naming this tag.
    pub atomics: u64,
    /// Active lanes summed over all ops (addresses presented).
    pub lanes: u64,
    /// Distinct lines touched, at the line size the walk was given.
    pub footprint_lines: u64,
    /// Lowest byte address presented.
    pub min_addr: u64,
    /// Highest byte address presented.
    pub max_addr: u64,
    /// The most frequent stride between adjacent active lanes of one
    /// access, in bytes; `None` when no access had two active lanes.
    /// Ties break toward the smallest magnitude, then negative first.
    pub dominant_stride: Option<i64>,
    /// Whether every adjacent-lane pair exhibited the dominant stride —
    /// `true` means perfectly regular (coalesced if the stride is small).
    pub stride_uniform: bool,
}

impl TagProfile {
    /// Total warp-level ops naming this tag.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes + self.atomics
    }

    /// Footprint in bytes (line granular).
    pub fn footprint_bytes(&self, line_bytes: u32) -> u64 {
        self.footprint_lines * line_bytes as u64
    }
}

/// Accumulating form of [`TagProfile`]: sets/histograms before collapse.
#[derive(Debug, Default)]
struct TagAcc {
    reads: u64,
    writes: u64,
    atomics: u64,
    lanes: u64,
    lines: FxHashSet<u64>,
    min_addr: u64,
    max_addr: u64,
    any: bool,
    strides: FxHashMap<i64, u64>,
}

impl TagAcc {
    fn absorb(&mut self, a: &MemAccess, line_shift: u32) {
        self.lanes += a.addrs.len() as u64;
        for &addr in &a.addrs {
            self.lines.insert(addr >> line_shift);
            if !self.any {
                self.min_addr = addr;
                self.max_addr = addr;
                self.any = true;
            } else {
                self.min_addr = self.min_addr.min(addr);
                self.max_addr = self.max_addr.max(addr);
            }
        }
        for pair in a.addrs.windows(2) {
            let stride = pair[1] as i64 - pair[0] as i64;
            *self.strides.entry(stride).or_insert(0) += 1;
        }
    }

    fn finish(self) -> TagProfile {
        let total_pairs: u64 = self.strides.values().sum();
        // Deterministic dominant pick: count desc, |stride| asc, value asc.
        let dominant = self
            .strides
            .iter()
            .map(|(&s, &n)| (n, std::cmp::Reverse(s.unsigned_abs()), std::cmp::Reverse(s)))
            .max()
            .map(|(_, _, std::cmp::Reverse(s))| s);
        let uniform = match dominant {
            Some(s) => self.strides.get(&s).copied().unwrap_or(0) == total_pairs,
            None => false,
        };
        TagProfile {
            reads: self.reads,
            writes: self.writes,
            atomics: self.atomics,
            lanes: self.lanes,
            footprint_lines: self.lines.len() as u64,
            min_addr: self.min_addr,
            max_addr: self.max_addr,
            dominant_stride: dominant,
            stride_uniform: uniform,
        }
    }
}

/// Walks the kernel once and returns one [`TagProfile`] per array tag it
/// names, keyed and ordered by tag. `line_bytes` must be a power of two.
pub fn tag_profiles<K: KernelSpec + ?Sized>(
    kernel: &K,
    num_sms: usize,
    warp_size: u32,
    line_bytes: u32,
) -> BTreeMap<ArrayTag, TagProfile> {
    assert!(
        line_bytes.is_power_of_two(),
        "line_bytes must be a power of two, got {line_bytes}"
    );
    let shift = line_bytes.trailing_zeros();
    let mut accs: FxHashMap<ArrayTag, TagAcc> = FxHashMap::default();
    each_warp_program(kernel, num_sms, warp_size, |_, _, prog| {
        for op in prog.iter() {
            let Some(a) = op.access() else { continue };
            let acc = accs.entry(a.tag).or_default();
            match op {
                Op::Load(_) => acc.reads += 1,
                Op::Store(_) => acc.writes += 1,
                Op::Atomic(_) => acc.atomics += 1,
                _ => unreachable!("access() is None for non-memory ops"),
            }
            acc.absorb(a, shift);
        }
    });
    accs.into_iter().map(|(t, acc)| (t, acc.finish())).collect()
}

/// [`tag_profiles`] with geometry and L1 line size from a GPU preset.
pub fn tag_profiles_on<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
) -> BTreeMap<ArrayTag, TagProfile> {
    tag_profiles(kernel, cfg.num_sms, cfg.warp_size, cfg.l1.line_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::dim::Dim3;
    use crate::kernel::{LaunchConfig, MemAccess, Op};

    #[derive(Debug, Clone)]
    struct Probe;

    impl KernelSpec for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::plane(5, 2), 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(
                0,
                ctx.cta * 8 + warp as u64 * 4,
                4,
            ))]
        }
    }

    #[test]
    fn sync_op_classification() {
        let prog: Program = vec![
            Op::Load(MemAccess::scalar(0, 0, 4)),
            Op::Compute(7),
            Op::Atomic(MemAccess::scalar(1, 64, 4)),
            Op::Barrier,
            Op::Store(MemAccess::scalar(2, 128, 4)),
        ];
        let evs: Vec<(usize, SyncOp)> = sync_ops(&prog).collect();
        assert_eq!(evs.len(), 4, "compute is invisible");
        assert!(matches!(evs[0], (0, SyncOp::Read(a)) if a.tag == 0));
        assert!(matches!(evs[1], (2, SyncOp::Atomic(a)) if a.tag == 1));
        assert!(matches!(evs[2], (3, SyncOp::Barrier)));
        assert!(matches!(evs[3], (4, SyncOp::Write(a)) if a.tag == 2));
        assert_eq!(evs[3].1.access().unwrap().addrs, vec![128]);
        assert_eq!(SyncOp::Barrier.access(), None);
    }

    #[test]
    fn contexts_cover_grid_with_rr_placement() {
        let ctxs: Vec<CtaContext> = dispatch_contexts(&Probe, 4).collect();
        assert_eq!(ctxs.len(), 10);
        assert_eq!(ctxs[0].sm_id, 0);
        assert_eq!(ctxs[5].sm_id, 1);
        assert_eq!(ctxs[5].slot, 1);
        assert_eq!(ctxs[5].arrival, 1);
        assert!(ctxs.iter().all(|c| c.num_sms == 4));
    }

    #[test]
    fn walk_visits_every_cta_warp_pair_in_order() {
        let mut seen: Vec<(u64, u32, u64)> = Vec::new();
        each_warp_program(&Probe, 3, 32, |ctx, warp, prog| {
            let addr = prog[0].access().unwrap().addrs[0];
            seen.push((ctx.cta, warp, addr));
        });
        // 10 CTAs x 2 warps, CTA-major order, programs match warp_program.
        assert_eq!(seen.len(), 20);
        assert_eq!(seen[0], (0, 0, 0));
        assert_eq!(seen[1], (0, 1, 4));
        assert_eq!(seen[19], (9, 1, 9 * 8 + 4));
    }

    /// One coalesced read array, one written array, one atomic counter.
    #[derive(Debug, Clone)]
    struct ThreeArrays;

    impl KernelSpec for ThreeArrays {
        fn name(&self) -> String {
            "three-arrays".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(4u32, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::coalesced(0, ctx.cta * 128, 32, 4)),
                Op::Store(MemAccess::coalesced(1, 0x1000 + ctx.cta * 128, 32, 4)),
                Op::Atomic(MemAccess::scalar(2, 0x2000, 4)),
                Op::Compute(2),
            ]
        }
    }

    #[test]
    fn tag_profiles_classify_arrays() {
        let p = tag_profiles(&ThreeArrays, 2, 32, 128);
        assert_eq!(p.len(), 3);

        let a = &p[&0];
        assert_eq!((a.reads, a.writes, a.atomics), (4, 0, 0));
        assert_eq!(a.lanes, 4 * 32);
        assert_eq!(a.footprint_lines, 4); // one 128B line per CTA
        assert_eq!(a.dominant_stride, Some(4));
        assert!(a.stride_uniform, "coalesced access is perfectly regular");
        assert_eq!((a.min_addr, a.max_addr), (0, 3 * 128 + 31 * 4));

        let b = &p[&1];
        assert_eq!((b.reads, b.writes, b.atomics), (0, 4, 0));
        assert_eq!(b.footprint_bytes(128), 4 * 128);

        let c = &p[&2];
        assert_eq!((c.reads, c.writes, c.atomics), (0, 0, 4));
        assert_eq!(c.footprint_lines, 1);
        assert_eq!(c.dominant_stride, None, "scalar ops have no lane pairs");
        assert!(!c.stride_uniform);
    }

    #[test]
    fn tag_profiles_detect_irregular_strides() {
        #[derive(Debug)]
        struct Gather;
        impl KernelSpec for Gather {
            fn name(&self) -> String {
                "gather".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(1u32, 32u32)
            }
            fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
                // Three +8 pairs, one +568 jump: dominant but not uniform.
                vec![Op::Load(MemAccess::gather(7, vec![0, 8, 16, 24, 592], 4))]
            }
        }
        let p = tag_profiles_on(&Gather, &arch::gtx570());
        let g = &p[&7];
        assert_eq!(g.dominant_stride, Some(8));
        assert!(!g.stride_uniform);
        assert_eq!(g.footprint_lines, 2); // lines 0 and 4 at 128B
    }

    #[test]
    fn config_walk_uses_preset_geometry() {
        let cfg = arch::gtx570();
        let mut ctas = 0u64;
        each_warp_program_on(&Probe, &cfg, |ctx, _, _| {
            assert_eq!(ctx.num_sms, 15);
            ctas += 1;
        });
        assert_eq!(ctas, 20); // 10 CTAs x 2 warps
    }
}
