//! Static locality profiling: the address-stream statistics the plan
//! audit and the IR lints share, computed by walking warp programs with
//! [`gpu_sim::walk`] — no timing model involved.

use gpu_sim::{walk, ArrayTag, CacheOp, FxHashMap, FxHashSet, GpuConfig, KernelSpec, Op};
use locality::{classify, Category, Signature, StaticFeed, TagReuseProfiler, TagSummary};

/// Reference line size the static analysis is defined over (the 128-byte
/// Fermi/Kepler L1 line, where cache-line locality lives).
const LINE_BYTES: u64 = 128;

/// Per-tag cache-line statistics (read path only).
#[derive(Debug, Clone, Copy, Default)]
pub struct TagLineStats {
    /// Demand-read line touches of this tag.
    pub read_touches: u64,
    /// Touches that hit a line this tag had touched before.
    pub reused_touches: u64,
}

impl TagLineStats {
    /// Fraction of read line touches that land on already-touched lines.
    pub fn line_reuse_share(&self) -> f64 {
        if self.read_touches == 0 {
            return 0.0;
        }
        self.reused_touches as f64 / self.read_touches as f64
    }
}

/// The statically derived locality profile of one kernel on one GPU.
#[derive(Debug)]
pub struct StaticProfile {
    /// Locality signature over the full static access stream.
    pub signature: Signature,
    /// Category the signature classifies to.
    pub category: Category,
    /// Per-tag word-reuse summaries.
    tags: TagReuseProfiler,
    /// Per-tag line touch statistics.
    line_stats: FxHashMap<ArrayTag, TagLineStats>,
    /// Tags the kernel stores to or atomics, sorted.
    written_tags: Vec<ArrayTag>,
    /// Demand accesses walked.
    pub accesses: u64,
}

/// Word-reuse-rate ceiling for a bypass candidate (mirrors the dynamic
/// `streaming_tags` threshold).
const STREAM_WORD_REUSE_MAX: f64 = 0.02;

/// Line-reuse-share ceiling for a bypass candidate. Stricter than the
/// `CL021` firing threshold (0.25) so selection and lint cannot flap on
/// borderline tags.
const STREAM_LINE_REUSE_MAX: f64 = 0.10;

/// Minimum word accesses before a tag is considered at all.
const STREAM_MIN_ACCESSES: u64 = 64;

impl StaticProfile {
    /// Walks `kernel`'s warp programs under `cfg`'s geometry and builds
    /// the profile.
    pub fn collect<K: KernelSpec + ?Sized>(kernel: &K, cfg: &GpuConfig) -> Self {
        let mut category = StaticFeed::new(locality::CategoryProfiler::with_line_bytes(128));
        let mut tags = StaticFeed::new(TagReuseProfiler::new());
        let mut line_stats: FxHashMap<ArrayTag, TagLineStats> = FxHashMap::default();
        let mut seen_lines: FxHashSet<(ArrayTag, u64)> = FxHashSet::default();
        let mut scratch: Vec<u64> = Vec::new();
        let mut written: FxHashSet<ArrayTag> = FxHashSet::default();

        walk::each_warp_program_on(kernel, cfg, |ctx, warp, prog| {
            for op in prog {
                category.op(ctx.cta, ctx.sm_id, warp, op);
                tags.op(ctx.cta, ctx.sm_id, warp, op);
                if let Op::Store(a) | Op::Atomic(a) = op {
                    written.insert(a.tag);
                }
                // Line statistics: demand reads only.
                if let Op::Load(a) = op {
                    if a.cache_op == CacheOp::PrefetchL1 {
                        continue;
                    }
                    scratch.clear();
                    for &addr in &a.addrs {
                        let line = addr / LINE_BYTES;
                        if !scratch.contains(&line) {
                            scratch.push(line);
                        }
                    }
                    let stats = line_stats.entry(a.tag).or_default();
                    for &line in &scratch {
                        stats.read_touches += 1;
                        if !seen_lines.insert((a.tag, line)) {
                            stats.reused_touches += 1;
                        }
                    }
                }
            }
        });

        let accesses = category.issued();
        let category = category.into_inner();
        let mut written_tags: Vec<ArrayTag> = written.into_iter().collect();
        written_tags.sort_unstable();
        StaticProfile {
            signature: category.signature(),
            category: category.classify(),
            tags: tags.into_inner(),
            line_stats,
            written_tags,
            accesses,
        }
    }

    /// Re-runs the classification (e.g. after threshold changes).
    pub fn classify(&self) -> Category {
        classify(&self.signature)
    }

    /// Word-reuse summary of one tag.
    pub fn tag_summary(&self, tag: ArrayTag) -> TagSummary {
        self.tags.summary(tag)
    }

    /// Line statistics of one tag.
    pub fn tag_line_stats(&self, tag: ArrayTag) -> TagLineStats {
        self.line_stats.get(&tag).copied().unwrap_or_default()
    }

    /// All tags observed, sorted.
    pub fn tags(&self) -> Vec<ArrayTag> {
        self.tags.summaries().into_iter().map(|(t, _)| t).collect()
    }

    /// Tags the kernel stores to or atomics, sorted. A read of any other
    /// tag cannot participate in a data race within this launch.
    pub fn written_tags(&self) -> &[ArrayTag] {
        &self.written_tags
    }

    /// Statically derived bypass candidates: heavily-accessed tags with
    /// neither word reuse (under 2%) nor line reuse (under 10%). The
    /// double criterion keeps cache-line-sourced reuse — invisible to the
    /// word-level test — out of the bypass set, which is exactly what
    /// lint `CL021` would flag.
    pub fn streaming_tags(&self) -> Vec<ArrayTag> {
        let mut v: Vec<ArrayTag> = self
            .tags
            .summaries()
            .into_iter()
            .filter(|(t, s)| {
                s.accesses >= STREAM_MIN_ACCESSES
                    && s.reuse_rate() < STREAM_WORD_REUSE_MAX
                    && self.tag_line_stats(*t).line_reuse_share() < STREAM_LINE_REUSE_MAX
            })
            .map(|(t, _)| t)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Program};

    /// CTAs share a table (tag 0), stream private slices (tag 1), and
    /// quarter-walk shared lines (tag 2: line reuse without word reuse).
    #[derive(Debug, Clone)]
    struct Mixed;

    impl KernelSpec for Mixed {
        fn name(&self) -> String {
            "mixed".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(16), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            let quarter: Vec<u64> = (0..8)
                .map(|l| (ctx.cta / 4) * 128 + (ctx.cta % 4) * 32 + l * 4)
                .collect();
            vec![
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(1, (1 << 30) + ctx.cta * 128, 32, 4)),
                Op::Load(MemAccess::gather(2, quarter, 4)),
            ]
        }
    }

    #[test]
    fn streaming_selection_respects_both_reuse_criteria() {
        let p = StaticProfile::collect(&Mixed, &arch::gtx570());
        // Tag 0 is word-reused, tag 2 is line-reused: neither may be
        // bypassed. Tag 1 truly streams.
        assert!(p.tag_summary(0).reuse_rate() > 0.5);
        assert!(p.tag_summary(2).reuse_rate() < 0.02);
        assert!(p.tag_line_stats(2).line_reuse_share() > 0.5);
        assert_eq!(p.streaming_tags(), vec![1]);
        assert_eq!(p.tags(), vec![0, 1, 2]);
    }

    #[test]
    fn profile_is_deterministic() {
        let a = StaticProfile::collect(&Mixed, &arch::gtx570());
        let b = StaticProfile::collect(&Mixed, &arch::gtx570());
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.category, b.category);
        assert_eq!(a.accesses, b.accesses);
    }
}
