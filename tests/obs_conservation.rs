//! Conservation laws binding the telemetry layer to the simulator: the
//! per-SM counters the observability layer exports must sum exactly to
//! the `RunStats` aggregates the figures are drawn from, cache outcomes
//! must partition the accesses, and the reuse-distance histogram mass
//! must equal the distinct-line read samples the trace actually carried.
//! Anything less and the telemetry would *look* right while silently
//! disagreeing with the numbers in the paper's tables.

use cta_clustering::Partition;
use gpu_sim::{arch, AccessEvent, ArchGen, Dim3, GpuConfig, Level, Simulation, TraceSink, VecSink};
use locality::ObsSink;
use proptest::prelude::*;

fn workload(abbr: &str, arch: ArchGen) -> Box<dyn gpu_kernels::Workload> {
    gpu_kernels::suite::by_abbr(abbr, arch).expect("suite app")
}

fn presets() -> Vec<(GpuConfig, ArchGen)> {
    vec![
        (arch::gtx570(), ArchGen::Fermi),
        (arch::gtx980(), ArchGen::Maxwell),
    ]
}

/// Per-SM L1 counters sum to the aggregate `RunStats.l1`, field by
/// field, and per SM the read outcomes partition the reads. These are
/// the exact sums `RunStats::record_obs` exports, so the telemetry can
/// never drift from the figure data.
#[test]
fn per_sm_counters_sum_to_aggregates() {
    for (cfg, gen) in presets() {
        for abbr in ["NW", "BS", "KMN"] {
            let w = workload(abbr, gen);
            let stats = Simulation::new(cfg.clone(), &w).run().expect("run");
            assert_eq!(stats.per_sm_l1.len(), cfg.num_sms, "{abbr}");
            assert_eq!(stats.l1_bypass_per_sm.len(), cfg.num_sms);

            let mut sum = gpu_sim::CacheStats::default();
            for sm in &stats.per_sm_l1 {
                sum.absorb(sm);
                // Read outcomes partition the reads on every SM.
                assert_eq!(
                    sm.read_hits + sm.read_reserved + sm.read_misses,
                    sm.reads,
                    "{abbr} on {}: read outcomes must partition reads",
                    cfg.name
                );
            }
            assert_eq!(sum, stats.l1, "{abbr} on {}: per-SM L1 sums", cfg.name);
        }
    }
}

/// The trace sink's histogram mass equals an independent count of the
/// samples the access stream carried: `sim/load_latency` counts read
/// instructions, and per-(tag, cluster) reuse distances plus cold lines
/// count distinct lines per read instruction.
#[test]
fn sink_histogram_mass_matches_the_trace() {
    let cfg = arch::gtx570();
    let w = workload("NW", ArchGen::Fermi);
    let partition = Partition::y(w.launch().grid, cfg.num_sms as u64).expect("partition");

    // Ground truth from the raw event stream.
    let mut vec_sink = VecSink::new();
    let stats_a = Simulation::new(cfg.clone(), &w)
        .run_traced(&mut vec_sink)
        .expect("run");
    let mut reads = 0u64;
    let mut line_samples = 0u64;
    for e in &vec_sink.events {
        if e.is_write || e.is_atomic {
            continue;
        }
        reads += 1;
        let mut lines: Vec<u64> = e.addrs.iter().map(|a| a / 128).collect();
        lines.sort_unstable();
        lines.dedup();
        line_samples += lines.len() as u64;
    }

    // Same deterministic run, telemetry sink this time.
    let obs = cta_obs::Obs::new();
    let p = partition.clone();
    let mut sink = ObsSink::new("test", move |cta, _sm| p.assign(cta).0 as u32);
    let stats_b = Simulation::new(cfg.clone(), &w)
        .run_traced(&mut sink)
        .expect("run");
    assert_eq!(stats_a, stats_b, "tracing must not perturb the simulation");
    sink.finish(&obs);

    let snap = obs.snapshot();
    let latency = snap.hist("sim/load_latency", "test").expect("latency hist");
    assert_eq!(latency.count, reads, "one latency sample per read");
    assert_eq!(
        snap.counter("sim/served_l1", "test")
            + snap.counter("sim/served_l2", "test")
            + snap.counter("sim/served_dram", "test"),
        reads,
        "service levels partition the reads"
    );
    let dist_mass = snap.hist_mass("locality/reuse_distance");
    let cold = snap.counter_total("locality/cold_lines");
    assert_eq!(
        dist_mass + cold,
        line_samples,
        "every distinct line per read is a reuse sample or a cold miss"
    );
}

/// Feeding one synthetic event at the top of the address space through
/// the sink must key it like any other — no overflow at the line or
/// cluster boundaries.
#[test]
fn sink_handles_address_space_extremes() {
    let obs = cta_obs::Obs::new();
    let mut sink = ObsSink::new("edge", |cta, _| (cta % 7) as u32);
    let addrs = [u64::MAX, u64::MAX - 4, 0];
    sink.record(&AccessEvent {
        time: 0,
        sm_id: 0,
        slot: 0,
        cta: u64::from(u32::MAX),
        warp: 0,
        tag: u16::MAX,
        is_write: false,
        is_atomic: false,
        bytes_per_lane: 4,
        addrs: &addrs,
        latency: u64::MAX,
        served_by: Level::Dram,
    });
    sink.finish(&obs);
    let snap = obs.snapshot();
    let key = format!("edge/tag{}/c{}", u16::MAX, u64::from(u32::MAX) % 7);
    // Lines u64::MAX/128 (twice, deduped) and 0: two cold lines.
    assert_eq!(snap.counter("locality/cold_lines", &key), 2);
    assert_eq!(snap.hist("sim/load_latency", "edge").unwrap().count, 1);
}

proptest! {
    /// Splitting a counter stream across threads never changes the
    /// merged totals: recording is commutative, so the snapshot is
    /// independent of which worker observed which slice.
    #[test]
    fn counter_totals_are_split_invariant(
        values in prop::collection::vec(0u64..1_000_000, 1..40),
        split in 1usize..4,
    ) {
        let serial = cta_obs::Obs::new();
        for (i, v) in values.iter().enumerate() {
            serial.counter("law/x", &format!("k{}", i % 3), *v);
        }
        let sharded = cta_obs::Obs::new();
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(split)) {
                let offset = chunk.as_ptr() as usize - values.as_ptr() as usize;
                let base = offset / std::mem::size_of::<u64>();
                let sharded = &sharded;
                scope.spawn(move || {
                    for (j, v) in chunk.iter().enumerate() {
                        sharded.counter("law/x", &format!("k{}", (base + j) % 3), *v);
                    }
                });
            }
        });
        let (a, b) = (serial.snapshot(), sharded.snapshot());
        prop_assert_eq!(&a.counters, &b.counters);
        prop_assert_eq!(a.counter_total("law/x"), values.iter().sum::<u64>());
    }

    /// Histogram mass conservation under arbitrary bulk recording:
    /// count equals the number of recorded samples and the bucket
    /// masses sum to it, even at the u64 extremes.
    #[test]
    fn hist_mass_equals_samples(
        samples in prop::collection::vec((0u64..u64::MAX, 1u64..50), 0..60),
    ) {
        let mut h = cta_obs::Hist::new();
        for &(s, n) in &samples {
            h.record_n(s, n);
        }
        let total: u64 = samples.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(h.count, total);
        prop_assert_eq!(h.buckets().iter().map(|&(_, n)| n).sum::<u64>(), total);
    }

    /// Cluster keying at the grid-size extreme: a `u32::MAX`-wide grid
    /// still assigns every boundary CTA to a valid cluster that inverts
    /// back, so telemetry keys derived from it are well-defined.
    #[test]
    fn partition_keys_survive_u32_max_grids(m in 1u64..64) {
        let grid = Dim3::plane(u32::MAX, 1);
        let p = Partition::x(grid, m).unwrap();
        for v in [0, 1, grid.count() / 2, grid.count() - 2, grid.count() - 1] {
            let (w, i) = p.assign(v);
            prop_assert!(i < m);
            prop_assert_eq!(p.invert(w, i), v);
        }
    }
}
