//! Golden-file test for the JSONL exporter: a fixed recording scenario
//! must render byte-for-byte to the committed golden. Any intentional
//! schema change has to touch the golden file in the same commit
//! (regenerate with `UPDATE_GOLDEN=1 cargo test -p cta-obs --test
//! golden_jsonl`), which is exactly the review speed-bump we want.

use cta_obs::{render_jsonl, validate, Obs};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/scenario.jsonl");

/// A fixed scenario exercising every line type: counters with multiple
/// keys, histograms across bucket extremes, nested and repeated spans,
/// an unbalanced span end (structured error), and wall-clock `time/`
/// metrics that must stay out of the export.
fn scenario() -> Obs {
    let obs = Obs::new();
    {
        let _root = obs.span("bin/golden");
        for (key, v) in [("sm0", 41u64), ("sm1", 1), ("sm0", 1)] {
            obs.counter("sim/l1_hits", key, v);
        }
        obs.counter("sim/l1_misses", "sm0", 7);
        obs.counter("framework/classified", "MM/InterCta", 1);
        // Wall-clock metrics: Chrome-trace only, never in the JSONL.
        obs.counter("time/busy_ns", "", 123_456_789);
        obs.hist("time/queue_wait_ns", "", 17);

        for sample in [0u64, 1, 2, 3, 127, 128, u64::MAX] {
            obs.hist("locality/reuse_distance", "a/tag0/c0", sample);
        }
        obs.hist("locality/reuse_distance", "a/tag0/c1", 9);
        {
            let _job = obs.span("GTX570/MM/CLU");
            obs.hist("sim/load_latency", "GTX570/MM/CLU", 400);
        }
        {
            let _job = obs.span("GTX570/MM/CLU");
        }
    }
    // A span end with no matching begin: reported as a structured
    // error line, never a panic.
    obs.span_end("orphan");
    obs
}

#[test]
fn exporter_matches_the_golden_file() {
    let rendered = render_jsonl(&scenario().snapshot(), "golden");
    validate(&rendered).expect("the golden scenario must validate");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("rewrite golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing; regenerate with UPDATE_GOLDEN=1 cargo test -p cta-obs --test golden_jsonl",
    );
    assert_eq!(
        rendered, golden,
        "JSONL export drifted from tests/golden/scenario.jsonl; if the \
         schema change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_itself_validates() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden present");
    let summary = validate(&golden).expect("committed golden validates");
    assert!(summary.counters > 0 && summary.hists > 0 && summary.spans > 0);
    assert_eq!(summary.errors, 1, "the orphan span-end error line");
}
