//! Ablation of the CTA indexing method (paper Figure 7 / §5.2-(6)-(1)):
//! row-major, column-major and tile-wise partitioning applied to matrix
//! multiplication and syrk on Fermi.
//!
//! The paper observes that tile-wise indexing shrinks MM's reuse distance
//! (better hit rate, fewer L2 transactions) but its "complex indexing
//! calculation leads to significant overhead, bringing little performance
//! benefit".

use cluster_bench::report::{ratio, Table};
use cta_clustering::{AgentKernel, Indexing, Partition};
use gpu_kernels::{MatrixMul, Syrk};
use gpu_sim::{arch, KernelSpec, Simulation};

fn main() {
    let cfg = arch::gtx570().prefer_l1(8192);
    println!("CTA indexing ablation on {} (agent-based clustering)", cfg.name);
    println!();

    for (name, kernel) in [
        ("MM(10x10x10)", Box::new(MatrixMul::new(10, 10, 10)) as Box<dyn KernelClone>),
        ("SYK(4x32)", Box::new(Syrk::new(4, 32))),
    ] {
        let base = kernel.run_baseline(&cfg);
        println!("--- {name} (baseline: {} cycles) ---", base.cycles);
        let mut t = Table::new(&["indexing", "speedup", "L2 txns", "L1 hit rate"]);
        for (label, indexing) in [
            ("row-major (Y-P)", Indexing::RowMajor),
            ("col-major (X-P)", Indexing::ColMajor),
            ("tile 2x2", Indexing::Tile { tile_x: 2, tile_y: 2 }),
            ("tile 4x4", Indexing::Tile { tile_x: 4, tile_y: 4 }),
        ] {
            let stats = kernel.run_clustered(&cfg, indexing);
            t.row(vec![
                label.into(),
                ratio(stats.speedup_vs(&base)),
                format!("{:.2}", stats.l2_txns_vs(&base)),
                format!("{:.0}%", 100.0 * stats.l1_hit_rate()),
            ]);
        }
        print!("{t}");
        println!();
    }
}

/// Object-safe helper so the two differently-typed kernels share the loop.
trait KernelClone {
    fn run_baseline(&self, cfg: &gpu_sim::GpuConfig) -> gpu_sim::RunStats;
    fn run_clustered(&self, cfg: &gpu_sim::GpuConfig, indexing: Indexing) -> gpu_sim::RunStats;
}

impl<K: KernelSpec + Clone> KernelClone for K {
    fn run_baseline(&self, cfg: &gpu_sim::GpuConfig) -> gpu_sim::RunStats {
        Simulation::new(cfg.clone(), self).run().expect("baseline")
    }
    fn run_clustered(&self, cfg: &gpu_sim::GpuConfig, indexing: Indexing) -> gpu_sim::RunStats {
        let partition =
            Partition::new(self.launch().grid, cfg.num_sms as u64, indexing).expect("partition");
        let agents = AgentKernel::with_partition(self.clone(), cfg, partition).expect("agents");
        let stats = Simulation::new(cfg.clone(), &agents).run().expect("clustered");
        stats
    }
}
