//! Property tests for the address decoder and the sectored cache kernel.
//!
//! The cache in `gpu-sim` is written for speed: packed way-state records,
//! chunked branchless tag scans, a fill memo, sector-mask short circuits
//! and an opt-in aggregated-tag (ghost array) insertion policy. None of
//! that is allowed to change *what* the cache computes — only how fast.
//! These tests pin the semantics against implementations with no tricks
//! at all:
//!
//! * the decoder round-trips and never aliases two distinct lines onto
//!   the same identity, and its power-of-two mask reduction is
//!   bit-identical to the generic modulo it replaces;
//! * the cache agrees, outcome-for-outcome and counter-for-counter, with
//!   a naive reference model (a `Vec` of per-way structs, linear scans,
//!   no memo) across random access programs over every geometry knob:
//!   write policy, sectoring, associativity and aggregated tags.

use gpu_sim::addrdec::LINE_HASH_MUL;
use gpu_sim::{
    AddrDec, Cache, CacheConfig, CacheStats, HashedIndex, ReadOutcome, WriteOutcome, WritePolicy,
};
use proptest::prelude::*;

/// Deterministic per-case random stream (a 64-bit LCG): proptest drives
/// the seed, the LCG stretches it into an access program.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Knuth's MMIX multiplier; high bits are well mixed.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

// ---------------------------------------------------------------------
// Address decoder
// ---------------------------------------------------------------------

proptest! {
    /// `encode` inverts `decode` at sector granularity, and every decoded
    /// field respects its dimension bound.
    #[test]
    fn addrdec_decode_encode_round_trip(
        (line_exp, addr, sets_exp, sector_div_exp)
            in (5u32..9, 0u64..1 << 40, 0u32..11, 0u32..3),
    ) {
        let line_bytes = 1u32 << line_exp;
        let sector_bytes = line_bytes >> sector_div_exp;
        let num_sets = 1u64 << sets_exp;
        let d = AddrDec::for_cache(line_bytes, sector_bytes, num_sets);
        let dec = d.decode(addr);
        // The round trip recovers the sector base address exactly.
        prop_assert_eq!(
            d.encode(dec.tag, dec.sector),
            addr & !(sector_bytes as u64 - 1)
        );
        prop_assert_eq!(dec.tag, addr >> line_exp);
        prop_assert!(dec.set < num_sets);
        prop_assert!(dec.sector < d.sectors_per_line());
    }

    /// Two distinct lines never alias: their decodes differ in the tag,
    /// and `encode` is injective over `(tag, sector)`.
    #[test]
    fn addrdec_distinct_lines_never_alias(
        (a, b) in (0u64..1 << 40, 0u64..1 << 40),
    ) {
        let d = AddrDec::for_cache(128, 32, 64);
        let (da, db) = (d.decode(a), d.decode(b));
        if a >> 7 != b >> 7 {
            // Different lines: identity (the tag) must differ even when
            // the hashed fields collide.
            prop_assert!(da.tag != db.tag);
            prop_assert!(d.encode(da.tag, da.sector) != d.encode(db.tag, db.sector));
        } else {
            prop_assert_eq!(da.tag, db.tag);
            prop_assert_eq!((da.set, da.bank, da.channel), (db.set, db.bank, db.channel));
        }
    }

    /// The power-of-two mask fast path is bit-identical to the generic
    /// modulo reduction, for both hash shifts used in the hierarchy.
    #[test]
    fn addrdec_pow2_mask_matches_modulo(
        (n_exp, key) in (0u32..17, 0u64..u64::MAX),
    ) {
        let n = 1u64 << n_exp;
        let set_dim = HashedIndex::<LINE_HASH_MUL, 32>::new(n);
        let bank_dim = HashedIndex::<LINE_HASH_MUL, 24>::new(n);
        prop_assert_eq!(set_dim.index(key), (key.wrapping_mul(LINE_HASH_MUL) >> 32) % n);
        prop_assert_eq!(bank_dim.index(key), (key.wrapping_mul(LINE_HASH_MUL) >> 24) % n);
    }

    /// Non-power-of-two dimensions stay in range and agree with the
    /// plain modulo definition.
    #[test]
    fn addrdec_non_pow2_in_range(
        (n, key) in (1u64..100, 0u64..u64::MAX),
    ) {
        let dim = HashedIndex::<LINE_HASH_MUL, 24>::new(n);
        let idx = dim.index(key);
        prop_assert!(idx < n);
        if n > 1 {
            prop_assert_eq!(idx, (key.wrapping_mul(LINE_HASH_MUL) >> 24) % n);
        }
    }
}

// ---------------------------------------------------------------------
// Cache vs. naive reference model
// ---------------------------------------------------------------------

/// One way of the reference model: the same state the real cache packs
/// into slabs, held as a plain struct with no sentinels.
#[derive(Clone, Default)]
struct RefWay {
    tag: Option<u64>,
    /// Last-touch tick; kept across invalidation, exactly like the slab.
    lru: u64,
    /// Fill horizon; `u64::MAX` while an allocation awaits its fill.
    fill_done: u64,
    valid: u32,
    dirty: u32,
}

/// Straight-line reference implementation of the cache semantics:
/// per-set `Vec`s, linear scans, no memo, no chunking, no short
/// circuits. MSHR occupancy is not modeled — the differential driver
/// keeps every program far below the configured MSHR capacity, so the
/// real cache never stalls either and the outcomes stay comparable.
struct RefCache {
    dec: AddrDec,
    assoc: usize,
    full_mask: u32,
    policy: WritePolicy,
    aggregated: bool,
    ways: Vec<RefWay>,
    /// Ghost ring per set (aggregated-tag mode): last `assoc` evicted
    /// tags, plus the ring cursor.
    ghost: Vec<Option<u64>>,
    ghost_cur: Vec<usize>,
    tick: u64,
    ata_probes: u64,
    ata_hits: u64,
    stats: CacheStats,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.num_sets() as usize;
        let assoc = cfg.associativity as usize;
        RefCache {
            dec: AddrDec::for_cache(
                cfg.line_bytes,
                cfg.effective_sector_bytes(),
                num_sets as u64,
            ),
            assoc,
            full_mask: (1u32 << cfg.sectors_per_line()) - 1,
            policy: cfg.write_policy,
            aggregated: cfg.aggregated_tags,
            ways: vec![RefWay::default(); num_sets * assoc],
            ghost: vec![None; num_sets * assoc],
            ghost_cur: vec![0; num_sets],
            tick: 0,
            ata_probes: 0,
            ata_hits: 0,
            stats: CacheStats::default(),
        }
    }

    fn base(&self, tag: u64) -> usize {
        self.dec.set_of_tag(tag) as usize * self.assoc
    }

    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        (base..base + self.assoc).find(|&i| self.ways[i].tag == Some(tag))
    }

    /// Victim: first way minimizing `(occupied, lru)`.
    fn install(&mut self, base: usize, tag: u64, tick: u64, sectors: u32) -> (usize, bool) {
        let mut victim = base;
        for i in base + 1..base + self.assoc {
            let key = (self.ways[i].tag.is_some(), self.ways[i].lru);
            if key < (self.ways[victim].tag.is_some(), self.ways[victim].lru) {
                victim = i;
            }
        }
        // Ghost probe first (before any eviction is recorded), exactly
        // like the real insertion path.
        let stamp = if self.aggregated {
            self.ata_probes += 1;
            if self.ghost[base..base + self.assoc].contains(&Some(tag)) {
                self.ata_hits += 1;
                tick
            } else {
                1 // the cold LIP stamp
            }
        } else {
            tick
        };
        let dirty_victim = self.ways[victim].tag.is_some() && self.ways[victim].dirty != 0;
        if let Some(old) = self.ways[victim].tag {
            self.stats.evictions += 1;
            if self.aggregated {
                let set = base / self.assoc;
                let cur = self.ghost_cur[set];
                self.ghost[base + cur] = Some(old);
                self.ghost_cur[set] = (cur + 1) % self.assoc;
            }
        }
        if dirty_victim {
            self.stats.writebacks += 1;
        }
        self.ways[victim] = RefWay {
            tag: Some(tag),
            lru: stamp,
            fill_done: u64::MAX,
            valid: sectors,
            dirty: 0,
        };
        (victim, dirty_victim)
    }

    fn read_sectors(&mut self, line_addr: u64, sectors: u32, now: u64) -> ReadOutcome {
        self.stats.reads += 1;
        self.tick += 1;
        let tick = self.tick;
        let tag = self.dec.tag(line_addr);
        let base = self.base(tag);
        if let Some(i) = self.find(base, tag) {
            self.ways[i].lru = tick;
            if sectors & !self.ways[i].valid != 0 {
                // Tag hit, sector miss: fetch the absent sectors without
                // an eviction, extending the fill horizon.
                self.stats.read_misses += 1;
                self.ways[i].valid |= sectors;
                self.ways[i].fill_done = u64::MAX;
                return ReadOutcome::Miss {
                    mshr_wait: 0,
                    dirty_victim: false,
                };
            }
            if self.ways[i].fill_done > now {
                self.stats.read_reserved += 1;
                return ReadOutcome::HitReserved {
                    ready_at: self.ways[i].fill_done,
                };
            }
            self.stats.read_hits += 1;
            return ReadOutcome::Hit;
        }
        self.stats.read_misses += 1;
        let (_, dirty_victim) = self.install(base, tag, tick, sectors);
        ReadOutcome::Miss {
            mshr_wait: 0,
            dirty_victim,
        }
    }

    fn write_sectors(&mut self, line_addr: u64, sectors: u32) -> WriteOutcome {
        self.stats.writes += 1;
        self.tick += 1;
        let tick = self.tick;
        let tag = self.dec.tag(line_addr);
        let base = self.base(tag);
        match self.policy {
            WritePolicy::WriteEvict => {
                let evicted = if let Some(i) = self.find(base, tag) {
                    self.ways[i].tag = None; // LRU stamp kept
                    self.stats.write_evictions += 1;
                    true
                } else {
                    false
                };
                WriteOutcome::Forwarded { evicted }
            }
            WritePolicy::WriteBackAllocate => {
                if let Some(i) = self.find(base, tag) {
                    self.ways[i].valid |= sectors;
                    self.ways[i].dirty |= sectors;
                    self.ways[i].lru = tick;
                    self.stats.write_hits += 1;
                    return WriteOutcome::Absorbed;
                }
                self.stats.write_misses += 1;
                let (i, dirty_victim) = self.install(base, tag, tick, sectors);
                self.ways[i].dirty = sectors;
                WriteOutcome::AllocateMiss { dirty_victim }
            }
        }
    }

    fn fill(&mut self, line_addr: u64, ready_at: u64) {
        let tag = self.dec.tag(line_addr);
        if let Some(i) = self.find(self.base(tag), tag) {
            self.ways[i].fill_done = ready_at;
        }
    }

    fn probe(&self, line_addr: u64, now: u64) -> bool {
        let tag = self.dec.tag(line_addr);
        self.find(self.base(tag), tag).is_some_and(|i| {
            self.ways[i].fill_done <= now && self.ways[i].valid & self.full_mask == self.full_mask
        })
    }
}

/// Drives the real cache and the reference model through the same random
/// access program and asserts they never diverge: per-step outcomes,
/// final counters, ATA counters, and residency probes over the whole
/// touched range.
fn differential_run(
    policy: WritePolicy,
    sectored: bool,
    aggregated: bool,
    assoc: u32,
    seed: u64,
    ops: usize,
) -> Result<(), String> {
    let cfg = CacheConfig {
        size_bytes: 128 * assoc * 4, // always 4 sets, so lines collide
        line_bytes: 128,
        associativity: assoc,
        // Far above the number of fills a program can put in flight:
        // neither side ever stalls, so MSHR modeling stays out of the
        // differential.
        mshr_entries: 64,
        write_policy: policy,
        sector_bytes: if sectored { 32 } else { 0 },
        aggregated_tags: aggregated,
        index_fn: gpu_sim::IndexFn::Hashed,
    };
    let mut real = Cache::new(cfg.clone());
    let mut model = RefCache::new(&cfg);
    let mut rng = Lcg(seed.wrapping_mul(2).wrapping_add(1));
    let lines = 12u64; // 12 lines over 4 sets: constant set pressure
    let mut now = 0u64;
    for step in 0..ops {
        let r = rng.next();
        let line = (r % lines) * 128;
        let sectors = if sectored {
            1 + ((r >> 8) % 15) as u32 // any nonempty subset of 4 sectors
        } else {
            0b1
        };
        now += (r >> 12) % 3;
        if r & 0x70 != 0 {
            // Read (7/8 of ops — reads dominate real streams and are the
            // richer state machine: hit / reserved / sector miss / miss).
            let a = real.read_sectors(line, sectors, now);
            let b = model.read_sectors(line, sectors, now);
            prop_assert!(
                a == b,
                "read outcome diverged at step {step}: {a:?} vs {b:?}"
            );
            if let ReadOutcome::Miss { .. } = a {
                let ready = now + 1 + ((r >> 20) % 200);
                real.fill(line, ready);
                model.fill(line, ready);
            }
        } else {
            let a = real.write_sectors(line, sectors, now);
            let b = model.write_sectors(line, sectors);
            prop_assert!(
                a == b,
                "write outcome diverged at step {step}: {a:?} vs {b:?}"
            );
            if let WriteOutcome::AllocateMiss { .. } = a {
                let ready = now + 1 + ((r >> 20) % 200);
                real.fill(line, ready);
                model.fill(line, ready);
            }
        }
    }
    prop_assert_eq!(real.stats, model.stats);
    prop_assert_eq!(real.ata_counters(), (model.ata_probes, model.ata_hits));
    for l in 0..lines {
        prop_assert!(
            real.probe(l * 128, now + 1000) == model.probe(l * 128, now + 1000),
            "residency diverged for line {l}"
        );
    }
    Ok(())
}

proptest! {
    /// The full knob matrix: write policy x sectoring x aggregated tags
    /// x associativity (1 = direct mapped, 2 = early-exit scan,
    /// 8 = chunked branchless scan), each against a fresh random program.
    #[test]
    fn cache_matches_reference_model(
        (seed, assoc_sel, policy_sel, sector_sel, ata_sel)
            in (0u64..u64::MAX, 0usize..3, 0u32..2, 0u32..2, 0u32..2),
    ) {
        let policy = if policy_sel == 0 {
            WritePolicy::WriteEvict
        } else {
            WritePolicy::WriteBackAllocate
        };
        let assoc = [1u32, 2, 8][assoc_sel];
        differential_run(policy, sector_sel == 1, ata_sel == 1, assoc, seed, 48)?;
    }

    /// The exact sectored L2 shape the modeled architectures run
    /// (write-back, 16-way) with and without the aggregated-tag array.
    #[test]
    fn sectored_writeback_l2_shape_matches_reference(
        (seed, ata_sel) in (0u64..u64::MAX, 0u32..2),
    ) {
        differential_run(
            WritePolicy::WriteBackAllocate,
            true,
            ata_sel == 1,
            16,
            seed,
            48,
        )?;
    }
}

// ---------------------------------------------------------------------
// Coalescer
// ---------------------------------------------------------------------

/// The reference coalescer: per lane, first and last touched line in
/// lane order, deduplicated with a linear scan. First-touch order and
/// the per-lane `first`/`last` expansion are the semantics every fast
/// path (contiguous, sorted, divergent) must reproduce exactly.
fn naive_lines(addrs: &[u64], bytes_per_lane: u32, line_bytes: u32) -> Vec<u64> {
    let mask = !(line_bytes as u64 - 1);
    let bpl = bytes_per_lane as u64;
    let mut out: Vec<u64> = Vec::new();
    for &addr in addrs {
        let first = addr & mask;
        if !out.contains(&first) {
            out.push(first);
        }
        let last = (addr + bpl - 1) & mask;
        if last != first && !out.contains(&last) {
            out.push(last);
        }
    }
    out
}

/// Checks one access against the reference on every exported surface:
/// emission (order included), allocation-free count, and the invariant
/// that the two ordered shape classes really did emit ascending lines.
fn check_coalesce(addrs: &[u64], bytes_per_lane: u32, line_bytes: u32) {
    use gpu_sim::{coalesce_line_count, coalesce_lines_into, CoalesceShape, MemAccess};
    let access = MemAccess::gather(0, addrs.to_vec(), bytes_per_lane);
    let expect = naive_lines(addrs, bytes_per_lane, line_bytes);
    let mut got = Vec::new();
    let shape = coalesce_lines_into(&access, line_bytes, &mut got);
    assert_eq!(
        got, expect,
        "emission diverged: addrs {addrs:?} bpl {bytes_per_lane} lb {line_bytes} ({shape:?})"
    );
    assert_eq!(
        coalesce_line_count(&access, line_bytes),
        expect.len(),
        "count diverged: addrs {addrs:?} bpl {bytes_per_lane} lb {line_bytes}"
    );
    if shape != CoalesceShape::Divergent {
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "ordered shape {shape:?} emitted non-ascending lines {got:?} for {addrs:?}"
        );
    }
}

/// Every lane pattern over up to 6 lanes, each lane drawn from a pool of
/// boundary-case addresses (zero, word offsets, line edges, straddlers,
/// a distant page), crossed with {4,8}-byte lanes and {32,128}-byte
/// lines. Exhaustive, not sampled: 8^6 patterns per (bpl, lb) corner —
/// every duplicate, descending, straddling and aliasing combination a
/// warp segment of this width can produce.
#[test]
fn coalescer_exhaustive_small_shapes_match_reference() {
    for &line_bytes in &[32u32, 128] {
        let lb = line_bytes as u64;
        let pool = [
            0u64,
            4,
            lb - 4,
            lb,
            lb + 4,
            2 * lb - 4,
            1 << 20,
            (1 << 20) + lb,
        ];
        for &bpl in &[4u32, 8] {
            let mut addrs = [0u64; 6];
            for lanes in 1..=6usize {
                let combos = pool.len().pow(lanes as u32);
                for mut c in 0..combos {
                    for slot in addrs.iter_mut().take(lanes) {
                        *slot = pool[c % pool.len()];
                        c /= pool.len();
                    }
                    check_coalesce(&addrs[..lanes], bpl, line_bytes);
                }
            }
        }
    }
}

/// Degenerate lane widths: a lane wider than the whole line (the
/// contiguous arithmetic cannot hold) and straddle-heavy widths right at
/// the line size. These route through the divergent path regardless of
/// address pattern and must still match the reference per-lane
/// first/last expansion.
#[test]
fn coalescer_wide_lanes_match_reference() {
    for &line_bytes in &[32u32, 128] {
        for &bpl in &[line_bytes / 2, line_bytes, line_bytes * 2, line_bytes * 3] {
            let lb = line_bytes as u64;
            check_coalesce(&[0, lb, 2 * lb], bpl, line_bytes);
            check_coalesce(&[0, 4, 8, 12], bpl, line_bytes);
            check_coalesce(&[5 * lb, 3 * lb, lb, 3 * lb], bpl, line_bytes);
            check_coalesce(&[lb - 4], bpl, line_bytes);
        }
    }
}

proptest! {
    /// Random gathers: up to 32 lanes over a window wide enough to mix
    /// same-line hits, neighbours and far misses, lane widths from 1
    /// byte to twice the line. The fast paths must agree with the
    /// reference on arbitrary (sorted, reversed, duplicated) inputs.
    #[test]
    fn coalescer_random_gathers_match_reference(
        (seed, lanes, bpl_sel, lb_sel)
            in (0u64..u64::MAX, 1usize..33, 0usize..5, 0usize..2),
    ) {
        let line_bytes = [32u32, 128][lb_sel];
        let bpl = [1u32, 4, 8, line_bytes, 2 * line_bytes][bpl_sel];
        let mut rng = Lcg(seed.wrapping_mul(2).wrapping_add(1));
        let addrs: Vec<u64> = (0..lanes)
            .map(|_| (rng.next() % (64 * line_bytes as u64)) & !3)
            .collect();
        check_coalesce(&addrs, bpl, line_bytes);
    }

    /// Random strided accesses — the sorted fast path's home turf, with
    /// stride 0 (all lanes aliasing) and strides that straddle lines.
    #[test]
    fn coalescer_random_strides_match_reference(
        (seed, lanes, stride, bpl_sel)
            in (0u64..u64::MAX, 1u32..33, 0u64..300, 0usize..3),
    ) {
        let bpl = [4u32, 8, 36][bpl_sel];
        let mut rng = Lcg(seed);
        let base = rng.next() % (1 << 30);
        let addrs: Vec<u64> = (0..lanes as u64).map(|l| base + l * stride).collect();
        check_coalesce(&addrs, bpl, 128);
    }

    /// Constructor shape hints must be pure memoization: an access built
    /// through `coalesced`/`scalar`/`strided` (hint set) must classify
    /// and emit exactly like the same addresses fed through `gather`
    /// (hint `Unknown`, classified dynamically). Covers every hint
    /// branch: `stride == bpl` (Contiguous), `stride > 0` (Sorted),
    /// `stride == 0` and single-lane corners.
    #[test]
    fn coalescer_shape_hints_match_dynamic_classification(
        (seed, lanes, stride, bpl_sel, lb_sel)
            in (0u64..u64::MAX, 1u32..33, 0u64..40, 0usize..3, 0usize..2),
    ) {
        use gpu_sim::{coalesce_lines_into, MemAccess};
        let line_bytes = [32u32, 128][lb_sel];
        let bpl = [4u32, 8, 36][bpl_sel];
        let mut rng = Lcg(seed);
        let base = rng.next() % (1 << 30);
        let hinted = [
            MemAccess::coalesced(0, base, lanes, bpl),
            MemAccess::scalar(0, base, bpl),
            MemAccess::strided(0, base, lanes, stride, bpl),
        ];
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for access in hinted {
            let dynamic = MemAccess::gather(0, access.addrs.clone(), bpl);
            let want_shape = coalesce_lines_into(&dynamic, line_bytes, &mut want);
            let got_shape = coalesce_lines_into(&access, line_bytes, &mut got);
            prop_assert_eq!(got_shape, want_shape);
            prop_assert_eq!(&got, &want);
        }
    }
}
