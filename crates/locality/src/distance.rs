//! Exact LRU reuse-distance (stack-distance) analysis over cache-line
//! streams, using a Fenwick tree for O(log n) per access.
//!
//! The paper's §5.2-(6) explains MM's weak clustering gains by its
//! inter-CTA *reuse distance* exceeding the 48KB L1 capacity; this module
//! provides the measurement behind that style of argument.

use std::collections::HashMap;

/// Fenwick (binary indexed) tree over access timestamps, growable.
///
/// Growth rebuilds the tree from the retained point values: a Fenwick
/// node covers a range that can include older indices, so zero-padding
/// alone would corrupt prefix sums.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<i64>,
    raw: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
            raw: vec![0; n],
        }
    }

    fn grow(&mut self, n: usize) {
        if n <= self.raw.len() {
            return;
        }
        let cap = n.next_power_of_two();
        self.raw.resize(cap, 0);
        self.tree = vec![0; cap + 1];
        for i in 0..cap {
            let v = self.raw[i];
            if v != 0 {
                self.add_tree(i, v);
            }
        }
    }

    fn add_tree(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn add(&mut self, i: usize, delta: i64) {
        self.grow(i + 1);
        self.raw[i] += delta;
        self.add_tree(i, delta);
    }

    /// Sum of entries in `[0, i]`.
    fn prefix(&self, i: usize) -> i64 {
        let mut s = 0;
        let mut j = (i + 1).min(self.tree.len() - 1);
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }
}

/// Streaming LRU stack-distance calculator over line addresses.
///
/// Feed line-granularity addresses with [`access`](Self::access); each call
/// returns the number of *distinct* lines touched since that line's
/// previous access (`None` for a cold first touch).
///
/// # Examples
///
/// ```
/// use locality::ReuseDistance;
///
/// let mut rd = ReuseDistance::new();
/// assert_eq!(rd.access(10), None);       // cold
/// assert_eq!(rd.access(20), None);       // cold
/// assert_eq!(rd.access(10), Some(1));    // one distinct line in between
/// assert_eq!(rd.access(10), Some(0));    // immediate re-touch
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistance {
    last_seen: HashMap<u64, usize>,
    fenwick: Option<Fenwick>,
    time: usize,
    histogram: HashMap<u64, u64>,
    cold: u64,
}

impl ReuseDistance {
    /// Creates an empty calculator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line` and returns its stack distance.
    pub fn access(&mut self, line: u64) -> Option<u64> {
        let fw = self.fenwick.get_or_insert_with(|| Fenwick::new(1024));
        let t = self.time;
        self.time += 1;
        let dist = match self.last_seen.insert(line, t) {
            None => {
                self.cold += 1;
                None
            }
            Some(prev) => {
                // Distinct lines since prev = live markers in (prev, t).
                let d = (fw.prefix(t.max(1) - 1) - fw.prefix(prev)) as u64;
                fw.add(prev, -1);
                Some(d)
            }
        };
        fw.add(t, 1);
        if let Some(d) = dist {
            *self.histogram.entry(d).or_insert(0) += 1;
        }
        dist
    }

    /// Cold (first-touch) accesses so far.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Total re-accesses measured.
    pub fn reuses(&self) -> u64 {
        self.histogram.values().sum()
    }

    /// Fraction of reuses whose stack distance fits within a cache of
    /// `capacity_lines` fully-associative lines — an upper bound on the
    /// achievable hit rate at that capacity.
    pub fn hit_fraction_at(&self, capacity_lines: u64) -> f64 {
        let total = self.reuses();
        if total == 0 {
            return 0.0;
        }
        let fits: u64 = self
            .histogram
            .iter()
            .filter(|(d, _)| **d < capacity_lines)
            .map(|(_, n)| *n)
            .sum();
        fits as f64 / total as f64
    }

    /// The full distance histogram, sorted by distance.
    pub fn histogram(&self) -> Vec<(u64, u64)> {
        let mut h: Vec<(u64, u64)> = self.histogram.iter().map(|(&d, &n)| (d, n)).collect();
        h.sort_unstable();
        h
    }

    /// Mean stack distance over all reuses (`None` when no reuse).
    pub fn mean_distance(&self) -> Option<f64> {
        let total = self.reuses();
        if total == 0 {
            return None;
        }
        let sum: u64 = self.histogram.iter().map(|(&d, &n)| d * n).sum();
        Some(sum as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_sequence() {
        // a b c b a -> b at distance 1, a at distance 2
        let mut rd = ReuseDistance::new();
        assert_eq!(rd.access(0), None);
        assert_eq!(rd.access(1), None);
        assert_eq!(rd.access(2), None);
        assert_eq!(rd.access(1), Some(1));
        assert_eq!(rd.access(0), Some(2));
        assert_eq!(rd.cold_misses(), 3);
        assert_eq!(rd.reuses(), 2);
    }

    #[test]
    fn repeated_touch_distance_zero() {
        let mut rd = ReuseDistance::new();
        rd.access(5);
        assert_eq!(rd.access(5), Some(0));
        assert_eq!(rd.access(5), Some(0));
    }

    #[test]
    fn duplicates_between_touches_count_once() {
        // a b b b a -> a's distance is 1 (only b is distinct between).
        let mut rd = ReuseDistance::new();
        rd.access(0);
        rd.access(1);
        rd.access(1);
        rd.access(1);
        assert_eq!(rd.access(0), Some(1));
    }

    #[test]
    fn hit_fraction_thresholds() {
        let mut rd = ReuseDistance::new();
        for round in 0..2 {
            for line in 0..8u64 {
                rd.access(line);
            }
            let _ = round;
        }
        // Each of the 8 reuses has distance 7.
        assert_eq!(rd.reuses(), 8);
        assert_eq!(rd.hit_fraction_at(8), 1.0);
        assert_eq!(rd.hit_fraction_at(7), 0.0);
        assert_eq!(rd.mean_distance(), Some(7.0));
    }

    #[test]
    fn histogram_sorted() {
        let mut rd = ReuseDistance::new();
        rd.access(0);
        rd.access(1);
        rd.access(0); // d=1
        rd.access(0); // d=0
        assert_eq!(rd.histogram(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn scales_past_initial_capacity() {
        let mut rd = ReuseDistance::new();
        for i in 0..5000u64 {
            rd.access(i);
        }
        for i in 0..5000u64 {
            assert_eq!(rd.access(i), Some(4999));
        }
    }
}
