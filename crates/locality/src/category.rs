//! Locality-source classification: the five application categories of the
//! paper's Figure 4, detected from the pre-L1 access stream.

use crate::wordmap::WordMap;
use gpu_sim::{AccessEvent, TraceSink};
use std::fmt;

/// The paper's five sources of inter-CTA locality (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// (A) Algorithm related: the algorithm itself reuses the same words
    /// from different CTAs (MM, KMN, DCT, ...). Exploitable before runtime.
    Algorithm,
    /// (B) Cache-line related: reuse is introduced by long L1 lines — a
    /// different CTA touches other words of the same fetched line
    /// (SYK, NBO, ATX, ...). Exploitable before runtime.
    CacheLine,
    /// (C) Data related: reuse exists but depends on irregular runtime
    /// data organization (BFS, HST, BTR). Not exploitable in general.
    Data,
    /// (D) Write related: potential reuse is destroyed by the write-evict
    /// L1 when another CTA writes the same line (NW). Not exploitable.
    Write,
    /// (E) Streaming: coalesced, aligned, used-once accesses (BS, SAD,
    /// DXT). No inter-CTA reuse to exploit.
    Streaming,
}

impl Category {
    /// Whether the paper considers this category's inter-CTA locality
    /// *exploitable* by CTA-Clustering (§4.1): identifiable before runtime
    /// and worth clustering for.
    pub fn exploitable(&self) -> bool {
        matches!(self, Category::Algorithm | Category::CacheLine)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Algorithm => "algorithm",
            Category::CacheLine => "cache-line",
            Category::Data => "data",
            Category::Write => "write",
            Category::Streaming => "streaming",
        })
    }
}

/// Signature metrics feeding the classification decision.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Signature {
    /// Fraction of word reuses that cross the CTA boundary.
    pub word_inter_share: f64,
    /// Fraction of word accesses that are reuses at all.
    pub word_reuse_rate: f64,
    /// Cross-CTA word reuses per word access (absolute intensity).
    pub word_inter_rate: f64,
    /// Fraction of *line* reuses crossing CTAs where the two CTAs touched
    /// **different words** of the line (pure spatial, cache-line-sourced).
    /// Reads only: write-sharing belongs to the write-related category.
    pub line_inter_spatial_share: f64,
    /// Cross-CTA spatial line reuses per read-line touch (absolute
    /// intensity of the cache-line signal).
    pub line_spatial_rate: f64,
    /// Fraction of touched lines both read by one CTA and written by a
    /// different CTA (write-evict interference, Fig. 4-(D)).
    pub write_interference: f64,
    /// Mean lanes-per-transaction (32 = perfectly coalesced against the
    /// reference 128B line, ~1 = fully divergent).
    pub avg_coalescing: f64,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
}

#[derive(Debug, Default, Clone, Copy)]
struct LineInfo {
    first_cta: u64,
    read_cta: Option<u64>,
    writer_cta: Option<u64>,
    multi_cta: bool,
    written_by_other: bool,
    /// Read-touched (reads only feed the sharing signals).
    touched: bool,
    /// Touched at all — the [`WordMap`] presence sentinel.
    present: bool,
}

/// Per-word sharing state. `seen` is the [`WordMap`] presence sentinel
/// ("touched before", the reuse predicate).
#[derive(Debug, Default, Clone, Copy)]
struct WordState {
    first_cta: u64,
    multi_cta: bool,
    seen: bool,
}

/// Trace sink computing a [`Signature`] and deriving a [`Category`].
///
/// The classifier mirrors the coarse-grained estimation flow of the
/// paper's Figure 11 framework: word-level inter-CTA sharing indicates
/// algorithm-related locality; line-level-only sharing indicates
/// cache-line-related locality; cross-CTA read/write mixing on a line
/// indicates write-related; low coalescing with some reuse indicates
/// data-related; everything else is streaming.
#[derive(Debug)]
pub struct CategoryProfiler {
    line_bytes: u64,
    words: WordMap<WordState>,
    lines: WordMap<LineInfo>,
    // Per-record scratch (reused to keep the hot path allocation-free).
    seen_lines: Vec<u64>,
    seen_words: Vec<u64>,
    // Line-population counts, maintained incrementally so `signature`
    // never scans the paged stores.
    lines_touched: u64,
    lines_interfered: u64,
    word_accesses: u64,
    word_reuses: u64,
    word_inter: u64,
    line_inter_spatial: u64,
    line_inter_word: u64,
    read_line_touches: u64,
    txns: u64,
    lanes: u64,
    stores: u64,
    accesses: u64,
}

impl Default for CategoryProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl CategoryProfiler {
    /// Creates a classifier using the reference 128-byte L1 line
    /// (Fermi/Kepler), which is where cache-line-related locality lives.
    pub fn new() -> Self {
        Self::with_line_bytes(128)
    }

    /// Creates a classifier against an explicit line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two.
    pub fn with_line_bytes(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        CategoryProfiler {
            line_bytes,
            words: WordMap::default(),
            lines: WordMap::default(),
            seen_lines: Vec::new(),
            seen_words: Vec::new(),
            lines_touched: 0,
            lines_interfered: 0,
            word_accesses: 0,
            word_reuses: 0,
            word_inter: 0,
            line_inter_spatial: 0,
            line_inter_word: 0,
            read_line_touches: 0,
            txns: 0,
            lanes: 0,
            stores: 0,
            accesses: 0,
        }
    }

    /// The computed signature so far.
    pub fn signature(&self) -> Signature {
        let lines_touched = self.lines_touched.max(1) as f64;
        let interfered = self.lines_interfered as f64;
        let line_inter_total = (self.line_inter_spatial + self.line_inter_word).max(1);
        Signature {
            word_inter_share: if self.word_reuses == 0 {
                0.0
            } else {
                self.word_inter as f64 / self.word_reuses as f64
            },
            word_reuse_rate: if self.word_accesses == 0 {
                0.0
            } else {
                self.word_reuses as f64 / self.word_accesses as f64
            },
            word_inter_rate: if self.word_accesses == 0 {
                0.0
            } else {
                self.word_inter as f64 / self.word_accesses as f64
            },
            line_inter_spatial_share: self.line_inter_spatial as f64 / line_inter_total as f64,
            line_spatial_rate: if self.read_line_touches == 0 {
                0.0
            } else {
                self.line_inter_spatial as f64 / self.read_line_touches as f64
            },
            write_interference: interfered / lines_touched,
            avg_coalescing: if self.txns == 0 {
                0.0
            } else {
                self.lanes as f64 / self.txns as f64
            },
            write_fraction: if self.accesses == 0 {
                0.0
            } else {
                self.stores as f64 / self.accesses as f64
            },
        }
    }

    /// Classifies the kernel from the accumulated signature.
    pub fn classify(&self) -> Category {
        classify(&self.signature())
    }
}

/// Thresholded decision tree over a [`Signature`].
pub fn classify(sig: &Signature) -> Category {
    let has_word_inter = sig.word_inter_share > 0.15 && sig.word_reuse_rate > 0.05;
    let has_line_inter = sig.line_inter_spatial_share > 0.30 && sig.line_spatial_rate > 0.02;
    // Write-related first: cross-CTA read/write mixing on a line destroys
    // any locality under the write-evict L1 even when word sharing exists
    // (NW's shifted read/write references are exactly this shape).
    if sig.write_interference > 0.05 && sig.write_fraction > 0.15 {
        return Category::Write;
    }
    // Cache-line-related: the *spatial* line-sharing signal dominates the
    // word-sharing signal. This holds even when a broadcast vector adds a
    // sliver of word sharing (ATX/MVT/BC read small shared vectors next
    // to their dominant panel walks).
    if has_line_inter && sig.line_spatial_rate > 2.0 * sig.word_inter_rate {
        return Category::CacheLine;
    }
    if has_word_inter {
        // Word-level sharing under divergent, irregular access is
        // data-related: the sharing exists but cannot be predicted before
        // runtime. Regular strided kernels keep higher coalescing.
        if sig.avg_coalescing < 6.0 {
            return Category::Data;
        }
        return Category::Algorithm;
    }
    if has_line_inter {
        return Category::CacheLine;
    }
    if sig.avg_coalescing < 6.0 && sig.word_reuse_rate > 0.01 {
        return Category::Data;
    }
    Category::Streaming
}

impl TraceSink for CategoryProfiler {
    fn record(&mut self, e: &AccessEvent<'_>) {
        self.accesses += 1;
        if e.is_write {
            self.stores += 1;
        }
        // Coalescing accounting against the reference line size. The
        // dedup scratch lives on `self` so the per-access hot path stays
        // allocation-free.
        let mut seen_lines = std::mem::take(&mut self.seen_lines);
        let mut seen_words = std::mem::take(&mut self.seen_words);
        seen_lines.clear();
        seen_words.clear();
        for &addr in e.addrs {
            let line = addr / self.line_bytes;
            if !seen_lines.contains(&line) {
                seen_lines.push(line);
            }
            let word = addr / 4;
            if !seen_words.contains(&word) {
                seen_words.push(word);
            }
        }
        self.txns += seen_lines.len() as u64;
        self.lanes += e.addrs.len() as u64;

        for &word in &seen_words {
            self.word_accesses += 1;
            let entry = self.words.slot(word);
            if !entry.seen {
                entry.first_cta = e.cta;
            }
            if entry.first_cta != e.cta {
                entry.multi_cta = true;
            }
            if entry.seen {
                self.word_reuses += 1;
                if entry.multi_cta {
                    self.word_inter += 1;
                }
            }
            entry.seen = true;
        }

        for &line in &seen_lines {
            let info = self.lines.slot(line);
            if !info.present {
                info.present = true;
                info.first_cta = e.cta;
                self.lines_touched += 1;
            }
            // Only reads feed the sharing signals: write-sharing without
            // read reuse is not cache-line locality (it is at best the
            // write-related pattern, tracked below).
            if !e.is_write {
                self.read_line_touches += 1;
                if info.first_cta != e.cta {
                    info.multi_cta = true;
                }
                if info.touched && info.multi_cta {
                    // A cross-CTA line reuse: spatial if the word is new
                    // to the line's history, word-level otherwise.
                    // Approximate with the word maps: if every word of
                    // this access was already multi-CTA-shared, count
                    // word-level.
                    let word_shared = seen_words
                        .iter()
                        .filter(|w| **w / (self.line_bytes / 4) == line)
                        .all(|w| self.words.get(*w).map(|s| s.multi_cta).unwrap_or(false));
                    if word_shared {
                        self.line_inter_word += 1;
                    } else {
                        self.line_inter_spatial += 1;
                    }
                }
                info.touched = true;
            }
            if e.is_write {
                // Write after a read by another CTA: the write-evict L1
                // will invalidate that reader's line.
                if let Some(reader) = info.read_cta {
                    if reader != e.cta && !info.written_by_other {
                        info.written_by_other = true;
                        self.lines_interfered += 1;
                    }
                }
                info.writer_cta = Some(e.cta);
            } else {
                // Read after a write by another CTA: the produced data
                // can never be served from the producer's L1.
                if let Some(writer) = info.writer_cta {
                    if writer != e.cta && !info.written_by_other {
                        info.written_by_other = true;
                        self.lines_interfered += 1;
                    }
                }
                if info.read_cta.is_none() {
                    info.read_cta = Some(e.cta);
                }
            }
        }
        self.seen_lines = seen_lines;
        self.seen_words = seen_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut CategoryProfiler, cta: u64, warp: u32, addrs: &[u64], is_write: bool) {
        p.record(&AccessEvent {
            time: 0,
            sm_id: 0,
            slot: 0,
            cta,
            warp,
            tag: 0,
            is_write,
            is_atomic: false,
            bytes_per_lane: 4,
            addrs,
            latency: 1,
            served_by: gpu_sim::Level::L1,
        });
    }

    fn coalesced(base: u64) -> Vec<u64> {
        (0..32).map(|l| base + l * 4).collect()
    }

    #[test]
    fn algorithm_pattern_detected() {
        let mut p = CategoryProfiler::new();
        // Many CTAs read the same words, coalesced.
        for cta in 0..8 {
            feed(&mut p, cta, 0, &coalesced(0), false);
            feed(&mut p, cta, 0, &coalesced(4096 + cta * 128), false);
        }
        assert_eq!(p.classify(), Category::Algorithm);
        assert!(p.classify().exploitable());
    }

    #[test]
    fn cache_line_pattern_detected() {
        let mut p = CategoryProfiler::new();
        // Each CTA reads a distinct 32B quarter of shared 128B lines:
        // line-level sharing without word-level sharing.
        for cta in 0..4u64 {
            for row in 0..16u64 {
                let addrs: Vec<u64> = (0..8).map(|l| row * 128 + cta * 32 + l * 4).collect();
                feed(&mut p, cta, 0, &addrs, false);
            }
        }
        assert_eq!(p.classify(), Category::CacheLine);
    }

    #[test]
    fn streaming_pattern_detected() {
        let mut p = CategoryProfiler::new();
        for cta in 0..8 {
            feed(&mut p, cta, 0, &coalesced(cta * 1024), false);
            feed(&mut p, cta, 0, &coalesced(65536 + cta * 1024), true);
        }
        assert_eq!(p.classify(), Category::Streaming);
        assert!(!p.classify().exploitable());
    }

    #[test]
    fn write_pattern_detected() {
        let mut p = CategoryProfiler::new();
        // CTA i reads line i and writes into line i+1 (read by CTA i+1).
        for cta in 0..16u64 {
            feed(&mut p, cta, 0, &coalesced(cta * 128), false);
            feed(&mut p, cta, 0, &[(cta + 1) * 128], true);
        }
        assert_eq!(p.classify(), Category::Write);
    }

    #[test]
    fn data_pattern_detected() {
        let mut p = CategoryProfiler::new();
        // Divergent gathers with accidental cross-CTA sharing.
        for cta in 0..8u64 {
            let addrs: Vec<u64> = (0..32u64)
                .map(|l| ((l * 2654435761 + cta * 97) % 64) * 512)
                .collect();
            feed(&mut p, cta, 0, &addrs, false);
        }
        assert_eq!(p.classify(), Category::Data);
    }

    #[test]
    fn display_names() {
        assert_eq!(Category::Algorithm.to_string(), "algorithm");
        assert_eq!(Category::CacheLine.to_string(), "cache-line");
        assert_eq!(Category::Streaming.to_string(), "streaming");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = CategoryProfiler::with_line_bytes(100);
    }
}
