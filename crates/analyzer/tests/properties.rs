//! Property tests: the analyzer's static verdicts must agree with the
//! runtime behavior of the transforms they describe, over random grids,
//! cluster counts and every indexing variant.

use cta_analyzer::diag::Report;
use cta_analyzer::transform;
use cta_clustering::{Indexing, Partition};
use gpu_sim::Dim3;
use proptest::prelude::*;

/// Runtime ground truth: exhaustively checks Eq. 3–5 on `p` the way the
/// redirection/agent kernels consume it — round-trips, balance, coverage.
fn runtime_invariants_hold(p: &Partition) -> bool {
    let total = p.total();
    let m = p.num_clusters();
    // Balance (Eq. 5).
    let small = total / m;
    let extra = total % m;
    let mut sum = 0;
    for i in 0..m {
        let expect = small + u64::from(i < extra);
        if p.cluster_size(i) != expect {
            return false;
        }
        sum += p.cluster_size(i);
    }
    if sum != total {
        return false;
    }
    // Mutual inversion + coverage, both directions (f(v) = (w, i)).
    let mut covered = vec![false; total as usize];
    for v in 0..total {
        let (w, i) = p.assign(v);
        if i >= m || w >= p.cluster_size(i) || p.invert(w, i) != v {
            return false;
        }
    }
    for i in 0..m {
        for w in 0..p.cluster_size(i) {
            let v = p.invert(w, i);
            if v >= total
                || p.assign(v) != (w, i)
                || std::mem::replace(&mut covered[v as usize], true)
            {
                return false;
            }
        }
    }
    covered.into_iter().all(|c| c)
}

/// Deterministic permutation of `0..n` parameterized by `(mul, add)` —
/// enough variety to exercise `Indexing::Custom` without an RNG inside
/// the strategy output.
fn permutation(n: u64, mul: u64, add: u64) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n).collect();
    // A multiplicative shuffle: sort by a keyed mix of the id.
    order.sort_by_key(|&v| (v.wrapping_mul(2 * mul + 1).wrapping_add(add)) % (2 * n + 1));
    order
}

fn indexing_for(n: u64, kind: u8, a: u64, b: u64) -> Indexing {
    match kind {
        0 => Indexing::RowMajor,
        1 => Indexing::ColMajor,
        2 => Indexing::Tile {
            tile_x: (a % 7 + 1) as u32,
            tile_y: (b % 7 + 1) as u32,
        },
        _ => Indexing::Custom(permutation(n, a, b)),
    }
}

proptest! {
    #[test]
    fn analyzer_partition_verdict_matches_runtime(
        (nx, ny, m, kind, a, b) in (1u64..28, 1u64..28, 1u64..40, 0u8..4, 0u64..64, 0u64..64)
    ) {
        let grid = Dim3::new(nx as u32, ny as u32, 1);
        let indexing = indexing_for(nx * ny, kind, a, b);
        let p = match Partition::new(grid, m, indexing) {
            Ok(p) => p,
            // Construction refused the geometry; nothing to compare.
            Err(_) => return Ok(()),
        };

        let mut report = Report::new();
        transform::check_partition(&p, "prop", &mut report);
        let static_clean = report.deny_count() == 0;
        let runtime_clean = runtime_invariants_hold(&p);

        prop_assert!(
            static_clean == runtime_clean,
            "static {static_clean} vs runtime {runtime_clean}: grid {nx}x{ny} m {m} kind {kind} a {a} b {b}\n{}",
            report.render_human()
        );
        prop_assert!(
            static_clean,
            "real Partition must verify cleanly: {}",
            report.render_human()
        );
    }

    #[test]
    fn clamp_is_idempotent_and_in_range(
        (active, max) in (0u32..2000, 0u32..64)
    ) {
        let c = cta_clustering::clamp_active_agents(active, max);
        prop_assert!(c >= 1);
        prop_assert!(c <= max.max(1));
        prop_assert_eq!(c, cta_clustering::clamp_active_agents(c, max));
        // In-range requests pass through untouched.
        if (1..=max.max(1)).contains(&active) {
            prop_assert_eq!(c, active);
        }
    }
}
