//! Design-space exploration over cache geometry × set indexing ×
//! scheduler policy × `MAX_AGENTS` × clustering degree, pruned by the
//! `CL2xx` cost model and the `CL3xx` set-conflict model.
//!
//! The sweep simulates every point of a declarative configuration grid
//! and reports the per-app Pareto front over `(cycles, L2 transactions)`.
//! Before simulating, it consults the static models and prunes points
//! inside a proven equivalence class: one representative is simulated
//! and its metrics are copied to the rest, so the pruned sweep's output
//! (and therefore its Pareto front) is *identical* to the unpruned one
//! by construction; CI byte-compares the two fronts to keep the proofs
//! honest. Three proof rules build the classes:
//!
//! 1. **Geometry-dead stream** (`CL2xx`): with a write-evict L1, stores
//!    never allocate, so L1 content is driven by reads alone; if every
//!    read names a distinct line, every read is a compulsory miss at
//!    *any* capacity/associativity/indexing (no reuse to retain, no
//!    same-line concurrency to reserve-hit on), so the whole
//!    `(size, assoc, index)` sub-grid of an `(app, MAX_AGENTS, agents,
//!    sched)` group is one class.
//! 2. **Indexing-dead point** (`CL302`): when the decoder-computed
//!    per-set footprints fit the ways under *both* the hashed and the
//!    modulo decoder, neither configuration ever evicts, so the two
//!    indexing twins of a `(size, assoc)` geometry have identical run
//!    statistics.
//! 3. **Interval-pinned geometry** (`CL3xx`): a conflict-free point
//!    (every per-set footprint fits its ways under the point's own
//!    decoder) never evicts, so hits and misses depend only on the
//!    line-level stream — which the group shares — and the tightened
//!    interval collapses to the same `[lo, hi]` for every such point.
//!    All conflict-free points of a group mutually (weakly) dominate on
//!    the model metric and provably tie on the simulated one, so one
//!    representative serves them all.

use crate::runner::{AppPlan, SimRequest};
use cta_clustering::ClusterError;
use gpu_sim::sched::{CtaScheduler, HardwareLike, Randomized, StrictRoundRobin};
use gpu_sim::{GpuConfig, IndexFn, RunStats, WritePolicy};
use locality::AccessSummary;
use std::collections::HashMap;

/// Seed of the `hw` scheduler axis — the engine's default scheduler
/// seed, so `sched = hw` reproduces `AppPlan::run_metered` exactly.
const HW_SEED: u64 = 0xC1A0_0017;

/// One scheduler-policy axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedAxis {
    /// Deterministic strict round-robin dispatch.
    Strict,
    /// The hardware-like greedy model (engine default seed).
    Hardware,
    /// Uniformly randomized dispatch (fixed seed: still deterministic).
    Random,
}

impl SchedAxis {
    /// Stable label used in config files and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            SchedAxis::Strict => "strict",
            SchedAxis::Hardware => "hw",
            SchedAxis::Random => "rand",
        }
    }

    fn parse(s: &str) -> Result<SchedAxis, ClusterError> {
        match s {
            "strict" => Ok(SchedAxis::Strict),
            "hw" => Ok(SchedAxis::Hardware),
            "rand" => Ok(SchedAxis::Random),
            other => Err(ClusterError::harness(format!(
                "unknown scheduler {other:?}; expected strict, hw or rand"
            ))),
        }
    }

    fn instantiate(&self) -> Box<dyn CtaScheduler> {
        match self {
            SchedAxis::Strict => Box::new(StrictRoundRobin::new()),
            SchedAxis::Hardware => Box::new(HardwareLike::new(HW_SEED)),
            SchedAxis::Random => Box::new(Randomized::new(HW_SEED)),
        }
    }
}

/// One clustering-degree axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentsAxis {
    /// Untransformed baseline kernel.
    Baseline,
    /// Clustered, throttled to the app's Table 2 optimum (clamped to
    /// `MAX_AGENTS`).
    Opt,
    /// Clustered, throttled to a fixed degree (clamped to `MAX_AGENTS`).
    Fixed(u32),
}

impl AgentsAxis {
    /// Stable label used in config files and JSON output.
    pub fn label(&self) -> String {
        match self {
            AgentsAxis::Baseline => "0".to_string(),
            AgentsAxis::Opt => "opt".to_string(),
            AgentsAxis::Fixed(n) => n.to_string(),
        }
    }

    fn parse(s: &str) -> Result<AgentsAxis, ClusterError> {
        if s == "opt" {
            return Ok(AgentsAxis::Opt);
        }
        let n: u32 = s
            .parse()
            .map_err(|e| ClusterError::harness(format!("agents value {s:?}: {e}")))?;
        Ok(if n == 0 {
            AgentsAxis::Baseline
        } else {
            AgentsAxis::Fixed(n)
        })
    }

    /// Resolves the axis to a [`SimRequest`] for one prepared plan.
    fn request(&self, plan: &AppPlan) -> SimRequest {
        match self {
            AgentsAxis::Baseline => SimRequest::Baseline,
            AgentsAxis::Opt => {
                let opt = plan.info.opt_agents_for(plan.cfg.arch);
                SimRequest::Throttled(opt.clamp(1, plan.max_agents))
            }
            AgentsAxis::Fixed(n) => SimRequest::Throttled((*n).clamp(1, plan.max_agents)),
        }
    }
}

fn parse_index_fn(s: &str) -> Result<IndexFn, ClusterError> {
    match s {
        "hashed" => Ok(IndexFn::Hashed),
        "modulo" => Ok(IndexFn::Modulo),
        other => Err(ClusterError::harness(format!(
            "unknown l1_index {other:?}; expected hashed or modulo"
        ))),
    }
}

/// One `MAX_AGENTS` axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxAgentsAxis {
    /// The occupancy bound of the kernel on one SM (the default the
    /// evaluation harness uses).
    Occupancy,
    /// `MAX_AGENTS` capped at a fixed value (never raised above the
    /// occupancy bound).
    Cap(u32),
}

impl MaxAgentsAxis {
    /// Stable label used in config files and JSON output.
    pub fn label(&self) -> String {
        match self {
            MaxAgentsAxis::Occupancy => "occ".to_string(),
            MaxAgentsAxis::Cap(n) => n.to_string(),
        }
    }

    fn parse(s: &str) -> Result<MaxAgentsAxis, ClusterError> {
        if s == "occ" {
            return Ok(MaxAgentsAxis::Occupancy);
        }
        let n: u32 = s
            .parse()
            .map_err(|e| ClusterError::harness(format!("max_agents value {s:?}: {e}")))?;
        if n == 0 {
            return Err(ClusterError::harness(
                "max_agents cap must be at least 1 (or `occ`)",
            ));
        }
        Ok(MaxAgentsAxis::Cap(n))
    }

    fn cap(&self) -> Option<u32> {
        match self {
            MaxAgentsAxis::Occupancy => None,
            MaxAgentsAxis::Cap(n) => Some(*n),
        }
    }
}

/// The declarative sweep grid.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base architecture preset name (e.g. `"GTX570"`).
    pub arch: String,
    /// Table 2 app abbreviations.
    pub apps: Vec<String>,
    /// L1 capacities, in KiB.
    pub l1_size_kb: Vec<u32>,
    /// L1 way counts.
    pub l1_assoc: Vec<u32>,
    /// L1 set-index functions (defaults to hashed only).
    pub l1_index: Vec<IndexFn>,
    /// `MAX_AGENTS` caps (defaults to the occupancy bound only).
    pub max_agents: Vec<MaxAgentsAxis>,
    /// Scheduler policies.
    pub sched: Vec<SchedAxis>,
    /// Clustering degrees.
    pub agents: Vec<AgentsAxis>,
}

impl SweepSpec {
    /// The built-in reduced grid CI smokes: Fermi, two apps, 4 × 2 × 2
    /// geometries (the two large capacities give the conflict-free and
    /// indexing-dead rules real points to prove), two `MAX_AGENTS` caps,
    /// two schedulers, baseline + opt clustering = 256 points.
    pub fn reduced() -> SweepSpec {
        SweepSpec {
            arch: "GTX570".to_string(),
            apps: vec!["NW".to_string(), "BS".to_string()],
            l1_size_kb: vec![16, 48, 1024, 2048],
            l1_assoc: vec![2, 8],
            l1_index: vec![IndexFn::Hashed, IndexFn::Modulo],
            max_agents: vec![MaxAgentsAxis::Occupancy, MaxAgentsAxis::Cap(2)],
            sched: vec![SchedAxis::Strict, SchedAxis::Hardware],
            agents: vec![AgentsAxis::Baseline, AgentsAxis::Opt],
        }
    }

    /// Parses a `key = v1, v2, ...` config file. Blank lines and `#`
    /// comments are ignored; every key appears at most once. `l1_index`
    /// (default `hashed`) and `max_agents` (default `occ`) are optional;
    /// every other key is required.
    ///
    /// ```text
    /// arch       = GTX570
    /// apps       = NW, BS, HS
    /// l1_size_kb = 16, 32, 48
    /// l1_assoc   = 2, 4
    /// l1_index   = hashed, modulo
    /// max_agents = occ, 2
    /// sched      = strict, hw
    /// agents     = 0, opt
    /// ```
    ///
    /// # Errors
    ///
    /// Malformed lines, unknown keys, duplicate keys, missing required
    /// keys.
    pub fn parse(text: &str) -> Result<SweepSpec, ClusterError> {
        let mut arch: Option<String> = None;
        let mut apps: Option<Vec<String>> = None;
        let mut sizes: Option<Vec<u32>> = None;
        let mut assocs: Option<Vec<u32>> = None;
        let mut indexes: Option<Vec<IndexFn>> = None;
        let mut maxes: Option<Vec<MaxAgentsAxis>> = None;
        let mut scheds: Option<Vec<SchedAxis>> = None;
        let mut agents: Option<Vec<AgentsAxis>> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ClusterError::harness(format!("line {lineno}: expected `key = values`"))
            })?;
            let values: Vec<&str> = value.split(',').map(str::trim).collect();
            if values.iter().any(|v| v.is_empty()) {
                return Err(ClusterError::harness(format!(
                    "line {lineno}: empty value in list"
                )));
            }
            fn set<T>(
                slot: &mut Option<T>,
                parsed: T,
                key: &str,
                lineno: usize,
            ) -> Result<(), ClusterError> {
                if slot.is_some() {
                    return Err(ClusterError::harness(format!(
                        "line {lineno}: duplicate key {key:?}"
                    )));
                }
                *slot = Some(parsed);
                Ok(())
            }
            let numbers = |what: &str| {
                values
                    .iter()
                    .map(|v| {
                        v.parse::<u32>().map_err(|e| {
                            ClusterError::harness(format!("line {lineno}: {what} {v:?}: {e}"))
                        })
                    })
                    .collect::<Result<Vec<u32>, _>>()
            };
            match key.trim() {
                "arch" => set(&mut arch, value.trim().to_string(), "arch", lineno)?,
                "apps" => set(
                    &mut apps,
                    values.iter().map(|s| s.to_string()).collect(),
                    "apps",
                    lineno,
                )?,
                "l1_size_kb" => set(&mut sizes, numbers("l1_size_kb")?, "l1_size_kb", lineno)?,
                "l1_assoc" => set(&mut assocs, numbers("l1_assoc")?, "l1_assoc", lineno)?,
                "l1_index" => set(
                    &mut indexes,
                    values
                        .iter()
                        .map(|s| parse_index_fn(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "l1_index",
                    lineno,
                )?,
                "max_agents" => set(
                    &mut maxes,
                    values
                        .iter()
                        .map(|s| MaxAgentsAxis::parse(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "max_agents",
                    lineno,
                )?,
                "sched" => set(
                    &mut scheds,
                    values
                        .iter()
                        .map(|s| SchedAxis::parse(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "sched",
                    lineno,
                )?,
                "agents" => set(
                    &mut agents,
                    values
                        .iter()
                        .map(|s| AgentsAxis::parse(s))
                        .collect::<Result<Vec<_>, _>>()?,
                    "agents",
                    lineno,
                )?,
                other => {
                    return Err(ClusterError::harness(format!(
                        "line {lineno}: unknown key {other:?}"
                    )))
                }
            }
        }
        let require = |name: &str| ClusterError::harness(format!("missing key {name:?}"));
        Ok(SweepSpec {
            arch: arch.ok_or_else(|| require("arch"))?,
            apps: apps.ok_or_else(|| require("apps"))?,
            l1_size_kb: sizes.ok_or_else(|| require("l1_size_kb"))?,
            l1_assoc: assocs.ok_or_else(|| require("l1_assoc"))?,
            l1_index: indexes.unwrap_or_else(|| vec![IndexFn::Hashed]),
            max_agents: maxes.unwrap_or_else(|| vec![MaxAgentsAxis::Occupancy]),
            sched: scheds.ok_or_else(|| require("sched"))?,
            agents: agents.ok_or_else(|| require("agents"))?,
        })
    }

    /// Total grid size.
    pub fn num_points(&self) -> usize {
        self.apps.len()
            * self.l1_size_kb.len()
            * self.l1_assoc.len()
            * self.l1_index.len()
            * self.max_agents.len()
            * self.sched.len()
            * self.agents.len()
    }

    /// Resolves the preset by (case-insensitive) name.
    fn base_config(&self) -> Result<GpuConfig, ClusterError> {
        gpu_sim::arch::all_presets()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(&self.arch))
            .ok_or_else(|| ClusterError::harness(format!("unknown arch preset {:?}", self.arch)))
    }
}

/// The simulated metrics of one point (identical whether the point was
/// simulated or copied from its equivalence-class representative).
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Elapsed kernel cycles.
    pub cycles: u64,
    /// Total L2 transactions.
    pub l2_txns: u64,
    /// Measured L1 read hit rate.
    pub l1_hit_rate: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

impl PointMetrics {
    fn of(stats: &RunStats) -> PointMetrics {
        PointMetrics {
            cycles: stats.cycles,
            l2_txns: stats.l2_transactions(),
            l1_hit_rate: stats.l1.read_hit_rate(),
            occupancy: stats.achieved_occupancy,
        }
    }

    /// Pareto dominance on the minimized objectives `(cycles, l2_txns)`.
    pub fn dominates(&self, other: &PointMetrics) -> bool {
        self.cycles <= other.cycles
            && self.l2_txns <= other.l2_txns
            && (self.cycles < other.cycles || self.l2_txns < other.l2_txns)
    }
}

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// App abbreviation.
    pub app: String,
    /// L1 capacity in KiB.
    pub l1_size_kb: u32,
    /// L1 way count.
    pub l1_assoc: u32,
    /// Set-index function label (`"hashed"` or `"modulo"`).
    pub l1_index: &'static str,
    /// `MAX_AGENTS` axis label (`"occ"` or a number).
    pub max_agents: String,
    /// Scheduler label.
    pub sched: &'static str,
    /// Agents-axis label (`"0"`, `"opt"`, or a number).
    pub agents: String,
    /// The resolved request label (`"BSL"` or `"TOT{n}"`).
    pub request: String,
    /// Static hit-rate interval at this geometry.
    pub model_lo: f64,
    /// Static hit-rate interval at this geometry.
    pub model_hi: f64,
    /// Whether the metrics were copied from the class representative
    /// instead of simulated.
    pub pruned: bool,
    /// Simulated (or copied) metrics.
    pub metrics: PointMetrics,
}

/// Aggregate sweep outcome.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every grid point, in deterministic enumeration order.
    pub points: Vec<SweepPoint>,
    /// Points actually simulated.
    pub simulated: u64,
    /// Points copied from a geometry-class representative (the cold
    /// stream rule or the conflict-free interval rule).
    pub pruned_geometry: u64,
    /// Points copied from their indexing twin (the CL302 rule).
    pub pruned_indexing: u64,
}

impl SweepOutcome {
    /// Points whose metrics were copied from a class representative,
    /// over every rule.
    pub fn pruned(&self) -> u64 {
        self.pruned_geometry + self.pruned_indexing
    }

    /// Fraction of points not simulated.
    pub fn prune_rate(&self) -> f64 {
        let total = self.simulated + self.pruned();
        if total > 0 {
            self.pruned() as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Per-app Pareto fronts over `(cycles, l2_txns)`, apps in spec
    /// order, each front sorted by ascending cycles then configuration
    /// labels — fully deterministic, so two runs (pruned or not) of the
    /// same grid produce byte-identical front JSON.
    pub fn fronts(&self) -> Vec<(String, Vec<&SweepPoint>)> {
        let mut apps: Vec<String> = Vec::new();
        for p in &self.points {
            if !apps.contains(&p.app) {
                apps.push(p.app.clone());
            }
        }
        apps.into_iter()
            .map(|app| {
                let candidates: Vec<&SweepPoint> =
                    self.points.iter().filter(|p| p.app == app).collect();
                let mut front: Vec<&SweepPoint> = candidates
                    .iter()
                    .filter(|p| !candidates.iter().any(|q| q.metrics.dominates(&p.metrics)))
                    .copied()
                    .collect();
                front.sort_by(|a, b| {
                    (
                        a.metrics.cycles,
                        a.metrics.l2_txns,
                        a.l1_size_kb,
                        a.l1_assoc,
                    )
                        .cmp(&(
                            b.metrics.cycles,
                            b.metrics.l2_txns,
                            b.l1_size_kb,
                            b.l1_assoc,
                        ))
                        .then_with(|| a.l1_index.cmp(b.l1_index))
                        .then_with(|| a.max_agents.cmp(&b.max_agents))
                        .then_with(|| a.sched.cmp(b.sched))
                        .then_with(|| a.agents.cmp(&b.agents))
                });
                (app, front)
            })
            .collect()
    }
}

/// Builds the concrete [`GpuConfig`] of one geometry point.
///
/// # Errors
///
/// Propagates `GpuConfig::validate` for inconsistent geometry requests
/// (capacity not divisible into whole sets, etc.).
pub fn geometry_config(
    base: &GpuConfig,
    size_kb: u32,
    assoc: u32,
    index: IndexFn,
) -> Result<GpuConfig, ClusterError> {
    let mut cfg = base.clone();
    cfg.l1.size_bytes = size_kb * 1024;
    cfg.l1.associativity = assoc;
    cfg.l1.index_fn = index;
    cfg.name = format!("{}-L1-{size_kb}KB-{assoc}w-{}", base.name, index.label());
    cfg.validate().map_err(|e| {
        ClusterError::harness(format!(
            "geometry {size_kb}KB/{assoc}-way/{}: {e}",
            index.label()
        ))
    })?;
    Ok(cfg)
}

/// Whether the cost model proves L1 `(size, associativity, indexing)`
/// to be dead axes for this access stream: write-evict L1 and either no
/// cacheable reads at all or a fully cold read stream (every read is a
/// compulsory miss under any decoder).
pub fn geometry_is_dead_axis(summary: &AccessSummary, cfg: &GpuConfig) -> bool {
    cfg.l1.write_policy == WritePolicy::WriteEvict
        && (summary.reads() == 0 || summary.all_reads_cold(cfg.l1.write_policy))
}

/// Runs the sweep. When `prune` is set, equivalence classes proven by
/// the cost model (cold streams) or the set-conflict model
/// (indexing-dead twins, conflict-free geometries) simulate only one
/// representative.
///
/// # Errors
///
/// Propagates preset/geometry/transform/simulation failures.
pub fn run_sweep(spec: &SweepSpec, prune: bool) -> Result<SweepOutcome, ClusterError> {
    let base = spec.base_config()?;
    let mut points: Vec<SweepPoint> = Vec::with_capacity(spec.num_points());
    let mut simulated = 0u64;
    let mut pruned_geometry = 0u64;
    let mut pruned_indexing = 0u64;
    let obs = cta_obs::maybe_global();
    for app in &spec.apps {
        for ma in &spec.max_agents {
            // One plan per geometry point: the plan owns the configured
            // GPU and the program cache shared by its variants. The
            // `MAX_AGENTS` cap feeds the transform, so plans are per
            // cap value.
            let mut plans: Vec<(u32, u32, IndexFn, AppPlan)> = Vec::new();
            for &size_kb in &spec.l1_size_kb {
                for &assoc in &spec.l1_assoc {
                    for &index in &spec.l1_index {
                        let cfg = geometry_config(&base, size_kb, assoc, index)?;
                        let workload = gpu_kernels::suite::by_abbr(app, cfg.arch)
                            .ok_or_else(|| ClusterError::harness(format!("{app} not in suite")))?;
                        plans.push((
                            size_kb,
                            assoc,
                            index,
                            AppPlan::with_config_capped(cfg, workload, ma.cap()),
                        ));
                    }
                }
            }
            for agents in &spec.agents {
                // The variant's access stream is identical across
                // geometries (same line size, same clamp — capacity
                // never feeds the transform), so one abstract
                // interpretation serves the whole class. The per-request
                // label check below guards the clamp assumption.
                let (_, _, _, first_plan) = &plans[0];
                let class_req = agents.request(first_plan);
                let summary = first_plan.with_variant_kernel(class_req, |k| {
                    AccessSummary::collect_on(k, &first_plan.cfg)
                })?;
                let class_dead = geometry_is_dead_axis(&summary, &first_plan.cfg);
                for sched in &spec.sched {
                    let mut cold_rep: Option<PointMetrics> = None;
                    let mut interval_rep: Option<PointMetrics> = None;
                    let mut twins: HashMap<(u32, u32), PointMetrics> = HashMap::new();
                    for (size_kb, assoc, index, plan) in &plans {
                        let req = agents.request(plan);
                        let same_class = req.label() == class_req.label();
                        let iv = summary.hit_interval(&plan.cfg);
                        let model = summary.set_conflicts(&plan.cfg);
                        let insensitive = model.indexing_insensitive();
                        let conflict_free = model.conflict_free();
                        let twin_key = (*size_kb, *assoc);
                        // Rule priority: the cold class covers the whole
                        // sub-grid; an indexing twin is the most specific
                        // cross-index proof; the conflict-free interval
                        // class covers the rest.
                        let copied: Option<(PointMetrics, bool)> = if !(prune && same_class) {
                            None
                        } else if class_dead {
                            cold_rep.clone().map(|m| (m, true))
                        } else if insensitive && twins.contains_key(&twin_key) {
                            Some((twins[&twin_key].clone(), false))
                        } else if conflict_free {
                            interval_rep.clone().map(|m| (m, true))
                        } else {
                            None
                        };
                        let (metrics, was_pruned) = match copied {
                            Some((m, geometry_rule)) => {
                                if geometry_rule {
                                    pruned_geometry += 1;
                                } else {
                                    pruned_indexing += 1;
                                }
                                (m, true)
                            }
                            None => {
                                let (stats, _) =
                                    plan.run_metered_sched(req, sched.instantiate())?;
                                simulated += 1;
                                (PointMetrics::of(&stats), false)
                            }
                        };
                        // Copied metrics are proven equal to simulated
                        // ones, so either may seed a representative.
                        if same_class {
                            if class_dead && cold_rep.is_none() {
                                cold_rep = Some(metrics.clone());
                            }
                            if insensitive {
                                twins.entry(twin_key).or_insert_with(|| metrics.clone());
                            }
                            if conflict_free && interval_rep.is_none() {
                                interval_rep = Some(metrics.clone());
                            }
                        }
                        if let Some(obs) = &obs {
                            let scope = format!(
                                "{app}/L1-{size_kb}KB-{assoc}w-{}/ma-{}/{}/{}",
                                index.label(),
                                ma.label(),
                                sched.label(),
                                agents.label()
                            );
                            obs.counter("dse/cycles", &scope, metrics.cycles);
                            obs.counter("dse/l2_txns", &scope, metrics.l2_txns);
                            obs.counter("dse/pruned", &scope, was_pruned as u64);
                        }
                        points.push(SweepPoint {
                            app: app.clone(),
                            l1_size_kb: *size_kb,
                            l1_assoc: *assoc,
                            l1_index: index.label(),
                            max_agents: ma.label(),
                            sched: sched.label(),
                            agents: agents.label(),
                            request: req.label(),
                            model_lo: iv.lo,
                            model_hi: iv.hi,
                            pruned: was_pruned,
                            metrics,
                        });
                    }
                }
            }
        }
    }
    Ok(SweepOutcome {
        points,
        simulated,
        pruned_geometry,
        pruned_indexing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = SweepSpec::parse(
            "# comment\n\
             arch = gtx570\n\
             apps = NW, BS # trailing comment\n\
             l1_size_kb = 16, 48\n\
             l1_assoc = 4\n\
             l1_index = hashed, modulo\n\
             max_agents = occ, 2\n\
             sched = strict, hw, rand\n\
             agents = 0, opt, 3\n",
        )
        .expect("parse");
        assert_eq!(spec.apps, vec!["NW", "BS"]);
        assert_eq!(spec.l1_size_kb, vec![16, 48]);
        assert_eq!(spec.l1_index, vec![IndexFn::Hashed, IndexFn::Modulo]);
        assert_eq!(
            spec.max_agents,
            vec![MaxAgentsAxis::Occupancy, MaxAgentsAxis::Cap(2)]
        );
        assert_eq!(spec.sched.len(), 3);
        assert_eq!(
            spec.agents,
            vec![AgentsAxis::Baseline, AgentsAxis::Opt, AgentsAxis::Fixed(3)]
        );
        // 2 apps x 2 sizes x 1 assoc x 2 indexes x 2 caps x 3 scheds
        // x 3 agent settings.
        assert_eq!(spec.num_points(), 144);
        spec.base_config().expect("preset resolves");
    }

    #[test]
    fn new_axes_default_when_omitted() {
        let spec = SweepSpec::parse(
            "arch = gtx570\n\
             apps = NW\n\
             l1_size_kb = 16\n\
             l1_assoc = 4\n\
             sched = strict\n\
             agents = 0\n",
        )
        .expect("parse without the optional axes");
        assert_eq!(spec.l1_index, vec![IndexFn::Hashed]);
        assert_eq!(spec.max_agents, vec![MaxAgentsAxis::Occupancy]);
        assert_eq!(spec.num_points(), 1);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        assert!(SweepSpec::parse("arch = gtx570").is_err(), "missing keys");
        assert!(SweepSpec::parse("bogus = 1").is_err(), "unknown key");
        assert!(
            SweepSpec::parse("arch = a\narch = b").is_err(),
            "duplicate key"
        );
        assert!(SweepSpec::parse("apps = NW,, BS").is_err(), "empty value");
        assert!(SweepSpec::parse("sched = quantum").is_err(), "bad sched");
        assert!(
            SweepSpec::parse("l1_index = xor").is_err(),
            "bad index function"
        );
        assert!(
            SweepSpec::parse("max_agents = 0").is_err(),
            "zero MAX_AGENTS cap"
        );
    }

    #[test]
    fn geometry_config_rebuilds_and_validates() {
        let base = gpu_sim::arch::gtx570();
        let cfg = geometry_config(&base, 32, 4, IndexFn::Hashed).expect("valid geometry");
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.associativity, 4);
        assert_eq!(cfg.l1.num_sets(), 64);
        assert_eq!(cfg.l1.index_fn, IndexFn::Hashed);
        let modulo = geometry_config(&base, 32, 4, IndexFn::Modulo).expect("modulo twin");
        assert_eq!(modulo.l1.index_fn, IndexFn::Modulo);
        assert_ne!(cfg.name, modulo.name);
        // 16 KiB does not divide into whole 128B x 3-way sets.
        assert!(geometry_config(&base, 16, 3, IndexFn::Hashed).is_err());
    }

    #[test]
    fn pareto_dominance() {
        let a = PointMetrics {
            cycles: 100,
            l2_txns: 50,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        let b = PointMetrics {
            cycles: 120,
            l2_txns: 50,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        let c = PointMetrics {
            cycles: 90,
            l2_txns: 60,
            l1_hit_rate: 0.0,
            occupancy: 0.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable");
        assert!(!a.dominates(&a), "never self-dominating");
    }

    #[test]
    fn pruned_and_unpruned_sweeps_agree_exactly() {
        // A deliberately tiny grid exercising a prunable app over both
        // index functions; the full reduced grid runs in CI.
        let spec = SweepSpec {
            arch: "GTX570".to_string(),
            apps: vec!["BS".to_string()],
            l1_size_kb: vec![16, 48],
            l1_assoc: vec![2],
            l1_index: vec![IndexFn::Hashed, IndexFn::Modulo],
            max_agents: vec![MaxAgentsAxis::Occupancy],
            sched: vec![SchedAxis::Strict],
            agents: vec![AgentsAxis::Baseline],
        };
        let full = run_sweep(&spec, false).expect("unpruned");
        let fast = run_sweep(&spec, true).expect("pruned");
        assert_eq!(full.points.len(), fast.points.len());
        for (a, b) in full.points.iter().zip(&fast.points) {
            assert_eq!(a.metrics, b.metrics, "{}: metrics must match", a.app);
            assert_eq!(a.request, b.request);
        }
        assert_eq!(full.pruned(), 0);
        assert!(fast.pruned() > 0, "the tiny grid must prune something");
    }

    #[test]
    fn max_agents_cap_clamps_the_request() {
        let base = gpu_sim::arch::gtx570();
        let cfg = geometry_config(&base, 16, 4, IndexFn::Hashed).expect("geometry");
        let workload = gpu_kernels::suite::by_abbr("NW", cfg.arch).expect("NW in suite");
        let capped = AppPlan::with_config_capped(cfg, workload, Some(2));
        assert_eq!(capped.max_agents, 2);
        match AgentsAxis::Opt.request(&capped) {
            SimRequest::Throttled(n) => assert!(n <= 2, "opt clamps to the cap"),
            other => panic!("opt resolves to throttled, got {other:?}"),
        }
    }
}
