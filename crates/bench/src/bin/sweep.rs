//! Quick-look sweep: every Table 2 application on one architecture with
//! per-app variant comparisons on a single line — the fast way to inspect
//! calibration without running the full figure harness.
//!
//! Usage: `cargo run --release -p cluster-bench --bin sweep -- [fermi|kepler|maxwell|pascal]`

use cluster_bench::{configured_threads, evaluate_arch_par, RunClock, Variant};
use cta_clustering::ClusterError;
use gpu_sim::arch;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("sweep", run)
}

fn run() -> Result<(), ClusterError> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fermi".into());
    let cfg = match which.as_str() {
        "fermi" => arch::gtx570(),
        "kepler" => arch::tesla_k40(),
        "maxwell" => arch::gtx980(),
        "pascal" => arch::gtx1080(),
        other => {
            eprintln!("unknown architecture {other:?}; expected fermi|kepler|maxwell|pascal");
            std::process::exit(2);
        }
    };
    let threads = configured_threads();
    let clock = RunClock::start(threads);
    println!("=== {} ===", cfg.name);
    for eval in &evaluate_arch_par(&cfg, threads)?.apps {
        println!(
            "{:4} [{:12}] RD {:4.2}x CLU {:4.2}x TOT({}) {:4.2}x BPS {:4.2}x PFH {:4.2}x | L2 TOT {:4.2} | l1hr {:4.2}->{:4.2}",
            eval.info.abbr,
            eval.info.category.to_string(),
            eval.speedup(Variant::Redirection),
            eval.speedup(Variant::Clustering),
            eval.chosen_agents,
            eval.speedup(Variant::ClusteringThrottled),
            eval.speedup(Variant::ClusteringThrottledBypass),
            eval.speedup(Variant::PrefetchThrottled),
            eval.l2_norm(Variant::ClusteringThrottled),
            eval.stats(Variant::Baseline).l1_hit_rate(),
            eval.stats(Variant::ClusteringThrottled).l1_hit_rate(),
        );
    }
    println!("{}", clock.footer());
    Ok(())
}
