//! The `serve/v1` wire protocol: line-delimited JSON requests, `plan/v1`
//! responses.
//!
//! One request per line, one response line per request line, in request
//! order. A request names a kernel either by paper abbreviation
//! (`"app":"MM"`) or structurally (`"kernel":{...}` with grid geometry
//! and an access-pattern summary), plus the target GPU preset. The
//! response carries the locality category, the clustering plan, and the
//! predicted L1 hit-rate interval from the static cost model.
//!
//! ```text
//! -> {"id":"r1","gpu":"GTX570","app":"MM"}
//! <- {"proto":"plan/v1","id":"r1","gpu":"GTX570","app":"MM",
//!     "category":"algorithm","exploit":true,"axis":"Y-P", ...}
//! ```
//!
//! Error responses replace the plan fields with `"error"` (a stable
//! machine code) and `"message"`. Overload shedding answers with
//! `"error":"overload"` plus `"retry_after_ms"`, the 429 idiom.
//!
//! Protocol stability rules, pinned byte-exact by the golden tests:
//!
//! * Response field order is fixed; rates render with six decimals.
//! * Unknown request fields are **ignored** (forward compatibility — a
//!   newer client may send hints an older server does not know).
//! * A request line longer than [`MAX_LINE_BYTES`] is rejected with
//!   `"oversize"` before any parsing.
//! * Requests are answered in input order regardless of worker count.

use locality::{CanonHasher, Digest};

/// Hard cap on one request line, checked before the parser runs. Large
/// structural kernels fit comfortably; anything beyond this is a client
/// bug or an attack, not a kernel description.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Protocol version tag carried by every response.
pub const PROTO: &str = "plan/v1";

/// Upper bound on the accesses list of a structural kernel description.
pub const MAX_ACCESSES: usize = 256;

/// A protocol-level failure: a stable machine code plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (`parse`, `unknown-app`, `overload`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Builds an error with the given code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

/// Which planning path the request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Static classification + cost model only (the fast path).
    Static,
    /// Additionally sweep throttling degrees with real simulations
    /// through the content-addressed program registry. Orders of
    /// magnitude slower; only valid for named apps.
    Measured,
}

impl Mode {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Static => "static",
            Mode::Measured => "measured",
        }
    }
}

/// Whether a described access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Global-memory load.
    Load,
    /// Global-memory store.
    Store,
}

impl AccessKind {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        }
    }
}

/// One access pattern of a structural kernel description: every warp of
/// every CTA performs `reps` accesses of `lanes` consecutive
/// `bytes`-sized words starting at
/// `base + cta * cta_stride + warp * warp_stride + rep * rep_stride`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessDesc {
    /// Logical array tag.
    pub tag: u16,
    /// Load or store.
    pub kind: AccessKind,
    /// Base byte address of the array slice.
    pub base: u64,
    /// Byte stride between consecutive CTAs.
    pub cta_stride: u64,
    /// Byte stride between consecutive warps of one CTA.
    pub warp_stride: u64,
    /// Active lanes (1..=32).
    pub lanes: u32,
    /// Bytes per lane (1..=16).
    pub bytes: u32,
    /// Repetitions per warp (default 1).
    pub reps: u32,
    /// Byte stride between repetitions (default 0: re-access, i.e.
    /// temporal reuse within the warp).
    pub rep_stride: u64,
}

/// A structural kernel description: launch geometry plus access summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawKernel {
    /// Grid extent `[x, y, z]`.
    pub grid: [u32; 3],
    /// Threads per CTA.
    pub block: u32,
    /// Registers per thread.
    pub regs: u32,
    /// Shared memory bytes per CTA.
    pub smem: u32,
    /// The access patterns, in program order.
    pub accesses: Vec<AccessDesc>,
}

/// What kernel a request describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelRef {
    /// A suite workload by paper abbreviation (normalized uppercase).
    Named(String),
    /// A structural description.
    Raw(RawKernel),
}

/// A parsed `serve/v1` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Target GPU preset name (normalized: uppercase, spaces stripped).
    pub gpu: String,
    /// The kernel to plan for.
    pub kernel: KernelRef,
    /// Planning path.
    pub mode: Mode,
    /// Optional per-request deadline in milliseconds, measured from
    /// enqueue to planning start. Excluded from the content digest.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// The canonical content digest of the request's *semantic* fields:
    /// gpu, mode, and the kernel reference. The correlation id and the
    /// deadline do not affect the plan, so they are excluded — two
    /// tenants asking the same question share one cache entry.
    pub fn digest(&self) -> Digest {
        let mut h = CanonHasher::new("serve/req/v1");
        h.field("gpu").str(&self.gpu);
        h.field("mode").str(self.mode.as_str());
        match &self.kernel {
            KernelRef::Named(app) => {
                h.field("app").str(app);
            }
            KernelRef::Raw(k) => {
                h.field("grid")
                    .u64(k.grid[0] as u64)
                    .u64(k.grid[1] as u64)
                    .u64(k.grid[2] as u64);
                h.field("block").u64(k.block as u64);
                h.field("regs").u64(k.regs as u64);
                h.field("smem").u64(k.smem as u64);
                h.field("accesses").list_begin();
                for a in &k.accesses {
                    h.field("acc")
                        .u64(a.tag as u64)
                        .str(a.kind.as_str())
                        .u64(a.base)
                        .u64(a.cta_stride)
                        .u64(a.warp_stride)
                        .u64(a.lanes as u64)
                        .u64(a.bytes as u64)
                        .u64(a.reps as u64)
                        .u64(a.rep_stride);
                }
                h.list_end();
            }
        }
        h.digest()
    }
}

/// Normalizes a GPU preset name for lookup and digesting: uppercase,
/// spaces stripped (`"Tesla K40"` == `"teslak40"`).
pub fn normalize_gpu(name: &str) -> String {
    name.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_ascii_uppercase())
        .collect()
}

fn get_u64(
    obj: &cta_obs::Json,
    key: &str,
    default: Option<u64>,
    what: &str,
) -> Result<u64, ProtoError> {
    match obj.get(key) {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ProtoError::new("bad-request", format!("{what}.{key} must be a u64"))),
        None => {
            default.ok_or_else(|| ProtoError::new("bad-request", format!("{what}.{key} missing")))
        }
    }
}

fn get_u32(
    obj: &cta_obs::Json,
    key: &str,
    default: Option<u64>,
    what: &str,
) -> Result<u32, ProtoError> {
    let v = get_u64(obj, key, default, what)?;
    u32::try_from(v)
        .map_err(|_| ProtoError::new("bad-request", format!("{what}.{key} = {v} exceeds u32")))
}

fn parse_access(obj: &cta_obs::Json, idx: usize) -> Result<AccessDesc, ProtoError> {
    let what = format!("accesses[{idx}]");
    let kind = match obj.get("kind").and_then(|k| k.as_str()).unwrap_or("load") {
        "load" => AccessKind::Load,
        "store" => AccessKind::Store,
        other => {
            return Err(ProtoError::new(
                "bad-request",
                format!("{what}.kind: unknown kind {other:?}"),
            ))
        }
    };
    let lanes = get_u32(obj, "lanes", Some(32), &what)?;
    if lanes == 0 || lanes > 32 {
        return Err(ProtoError::new(
            "bad-request",
            format!("{what}.lanes = {lanes} outside 1..=32"),
        ));
    }
    let bytes = get_u32(obj, "bytes", Some(4), &what)?;
    if bytes == 0 || bytes > 16 {
        return Err(ProtoError::new(
            "bad-request",
            format!("{what}.bytes = {bytes} outside 1..=16"),
        ));
    }
    let reps = get_u32(obj, "reps", Some(1), &what)?;
    if reps == 0 || reps > 1024 {
        return Err(ProtoError::new(
            "bad-request",
            format!("{what}.reps = {reps} outside 1..=1024"),
        ));
    }
    let tag = get_u32(obj, "tag", Some(0), &what)?;
    let tag = u16::try_from(tag)
        .map_err(|_| ProtoError::new("bad-request", format!("{what}.tag = {tag} exceeds u16")))?;
    Ok(AccessDesc {
        tag,
        kind,
        base: get_u64(obj, "base", Some(0), &what)?,
        cta_stride: get_u64(obj, "cta_stride", Some(0), &what)?,
        warp_stride: get_u64(obj, "warp_stride", Some(0), &what)?,
        lanes,
        bytes,
        reps,
        rep_stride: get_u64(obj, "rep_stride", Some(0), &what)?,
    })
}

fn parse_raw_kernel(obj: &cta_obs::Json) -> Result<RawKernel, ProtoError> {
    let grid = match obj.get("grid") {
        Some(cta_obs::Json::Arr(dims)) if !dims.is_empty() && dims.len() <= 3 => {
            let mut g = [1u32; 3];
            for (i, d) in dims.iter().enumerate() {
                let v = d.as_u64().ok_or_else(|| {
                    ProtoError::new("bad-request", format!("kernel.grid[{i}] must be a u64"))
                })?;
                g[i] = u32::try_from(v).map_err(|_| {
                    ProtoError::new("bad-request", format!("kernel.grid[{i}] = {v} exceeds u32"))
                })?;
            }
            g
        }
        Some(_) => {
            return Err(ProtoError::new(
                "bad-request",
                "kernel.grid must be an array of 1..=3 extents",
            ))
        }
        None => return Err(ProtoError::new("bad-request", "kernel.grid missing")),
    };
    let block = get_u32(obj, "block", None, "kernel")?;
    let accesses = match obj.get("accesses") {
        Some(cta_obs::Json::Arr(items)) => {
            if items.len() > MAX_ACCESSES {
                return Err(ProtoError::new(
                    "bad-request",
                    format!(
                        "kernel.accesses: {} entries exceed the {MAX_ACCESSES} cap",
                        items.len()
                    ),
                ));
            }
            items
                .iter()
                .enumerate()
                .map(|(i, a)| parse_access(a, i))
                .collect::<Result<Vec<_>, _>>()?
        }
        Some(_) => {
            return Err(ProtoError::new(
                "bad-request",
                "kernel.accesses must be an array",
            ))
        }
        None => Vec::new(),
    };
    Ok(RawKernel {
        grid,
        block,
        regs: get_u32(obj, "regs", Some(16), "kernel")?,
        smem: get_u32(obj, "smem", Some(0), "kernel")?,
        accesses,
    })
}

/// Parses one request line. On failure the returned error pairs with
/// the best-effort correlation id recovered from the line (empty when
/// even that is unreadable), so the error response still correlates.
pub fn parse_request(line: &str) -> Result<Request, (String, ProtoError)> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            String::new(),
            ProtoError::new(
                "oversize",
                format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte cap",
                    line.len()
                ),
            ),
        ));
    }
    let doc = cta_obs::parse_json(line)
        .map_err(|e| (String::new(), ProtoError::new("parse", e.to_string())))?;
    let id = doc
        .get("id")
        .and_then(|v| v.as_str())
        .unwrap_or("")
        .to_string();
    let fail = |e: ProtoError| (id.clone(), e);
    if !matches!(doc, cta_obs::Json::Obj(_)) {
        return Err(fail(ProtoError::new(
            "bad-request",
            "request must be a JSON object",
        )));
    }
    let gpu = match doc.get("gpu").and_then(|v| v.as_str()) {
        Some(g) => normalize_gpu(g),
        None => {
            return Err(fail(ProtoError::new(
                "bad-request",
                "gpu (preset name) missing",
            )))
        }
    };
    let mode = match doc.get("mode").and_then(|v| v.as_str()).unwrap_or("static") {
        "static" => Mode::Static,
        "measured" => Mode::Measured,
        other => {
            return Err(fail(ProtoError::new(
                "bad-request",
                format!("unknown mode {other:?}"),
            )))
        }
    };
    let kernel = match (doc.get("app"), doc.get("kernel")) {
        (Some(_), Some(_)) => {
            return Err(fail(ProtoError::new(
                "bad-request",
                "request carries both app and kernel; pick one",
            )))
        }
        (Some(app), None) => match app.as_str() {
            Some(a) => KernelRef::Named(a.to_ascii_uppercase()),
            None => {
                return Err(fail(ProtoError::new(
                    "bad-request",
                    "app must be a string abbreviation",
                )))
            }
        },
        (None, Some(k)) => KernelRef::Raw(parse_raw_kernel(k).map_err(&fail)?),
        (None, None) => {
            return Err(fail(ProtoError::new(
                "bad-request",
                "request needs either app or kernel",
            )))
        }
    };
    if mode == Mode::Measured && matches!(kernel, KernelRef::Raw(_)) {
        return Err(fail(ProtoError::new(
            "bad-request",
            "measured mode requires a named app",
        )));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail(ProtoError::new("bad-request", "deadline_ms must be a u64")))?,
        ),
        None => None,
    };
    Ok(Request {
        id,
        gpu,
        kernel,
        mode,
        deadline_ms,
    })
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an error response line (no trailing newline).
pub fn render_error(id: &str, err: &ProtoError, retry_after_ms: Option<u64>) -> String {
    let mut out = format!(
        "{{\"proto\":\"{PROTO}\",\"id\":\"{}\",\"error\":\"{}\",\"message\":\"{}\"",
        json_escape(id),
        err.code,
        json_escape(&err.message)
    );
    if let Some(ms) = retry_after_ms {
        out.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_request_round_trip() {
        let r = parse_request(r#"{"id":"a","gpu":"gtx570","app":"mm"}"#).unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.gpu, "GTX570");
        assert_eq!(r.kernel, KernelRef::Named("MM".into()));
        assert_eq!(r.mode, Mode::Static);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let a = parse_request(r#"{"id":"a","gpu":"GTX570","app":"MM"}"#).unwrap();
        let b = parse_request(r#"{"id":"a","gpu":"GTX570","app":"MM","x-hint":42,"trace":true}"#)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_ignores_id_and_deadline_but_not_semantics() {
        let base = parse_request(r#"{"id":"a","gpu":"GTX570","app":"MM"}"#).unwrap();
        let other_id =
            parse_request(r#"{"id":"zz","gpu":"gtx 570","app":"mm","deadline_ms":5}"#).unwrap();
        assert_eq!(base.digest(), other_id.digest());
        let other_gpu = parse_request(r#"{"id":"a","gpu":"GTX980","app":"MM"}"#).unwrap();
        let other_app = parse_request(r#"{"id":"a","gpu":"GTX570","app":"NW"}"#).unwrap();
        assert_ne!(base.digest(), other_gpu.digest());
        assert_ne!(base.digest(), other_app.digest());
    }

    #[test]
    fn raw_kernel_defaults_and_bounds() {
        let r = parse_request(
            r#"{"id":"k","gpu":"GTX570","kernel":{"grid":[64,16],"block":64,
                "accesses":[{"tag":1,"base":4096,"cta_stride":256}]}}"#,
        )
        .unwrap();
        match &r.kernel {
            KernelRef::Raw(k) => {
                assert_eq!(k.grid, [64, 16, 1]);
                assert_eq!(k.regs, 16);
                let a = &k.accesses[0];
                assert_eq!((a.lanes, a.bytes, a.reps), (32, 4, 1));
                assert_eq!(a.kind, AccessKind::Load);
            }
            _ => panic!("expected raw kernel"),
        }
        let bad = parse_request(
            r#"{"id":"k","gpu":"GTX570","kernel":{"grid":[1],"block":32,
                "accesses":[{"lanes":33}]}}"#,
        );
        assert_eq!(bad.unwrap_err().1.code, "bad-request");
    }

    #[test]
    fn oversize_and_parse_failures() {
        let long = format!(r#"{{"id":"a","gpu":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        assert_eq!(parse_request(&long).unwrap_err().1.code, "oversize");
        assert_eq!(parse_request("{nope").unwrap_err().1.code, "parse");
        let (id, err) = parse_request(r#"{"id":"r7","app":"MM"}"#).unwrap_err();
        assert_eq!(id, "r7", "id recovered for correlation");
        assert_eq!(err.code, "bad-request");
    }

    #[test]
    fn measured_mode_rejects_raw_kernels() {
        let e = parse_request(
            r#"{"id":"m","gpu":"GTX570","mode":"measured","kernel":{"grid":[1],"block":32}}"#,
        )
        .unwrap_err();
        assert_eq!(e.1.code, "bad-request");
    }

    #[test]
    fn error_rendering_escapes_and_orders_fields() {
        let e = ProtoError::new("parse", "broken \"line\"");
        assert_eq!(
            render_error("r\n1", &e, None),
            r#"{"proto":"plan/v1","id":"r\n1","error":"parse","message":"broken \"line\""}"#
        );
        let shed = ProtoError::new("overload", "queue full");
        assert!(render_error("x", &shed, Some(25)).ends_with(r#""retry_after_ms":25}"#));
    }
}
