//! The device-level memory system shared by all SMs: a banked write-back
//! L2 and a multi-channel DRAM with finite per-bank/per-channel throughput.
//!
//! Bandwidth contention is what converts the paper's L2-transaction
//! reductions (Figure 13) into wall-clock speedups (Figure 12): an L2- or
//! DRAM-bound kernel speeds up when fewer transactions queue behind each
//! other.

use crate::addrdec::AddrDec;
use crate::cache::{Cache, CacheStats, ReadOutcome, WriteOutcome};
use crate::config::{CacheConfig, GpuConfig, MemoryTimings};
use crate::work::CacheWork;

/// Which level of the hierarchy ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Served by the SM-private L1 (or L1/Tex unified) cache.
    L1,
    /// Served by the shared L2.
    L2,
    /// Served by off-chip DRAM.
    Dram,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::Dram => "DRAM",
        })
    }
}

/// Device-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Read transactions arriving at L2 (the paper's headline
    /// `L1_L2 Read Trans` metric).
    pub l2_read_txns: u64,
    /// Write transactions arriving at L2.
    pub l2_write_txns: u64,
    /// Atomic transactions arriving at L2.
    pub l2_atomic_txns: u64,
    /// Read transactions issued to DRAM.
    pub dram_reads: u64,
    /// Write(-back) transactions issued to DRAM.
    pub dram_writes: u64,
}

impl MemoryStats {
    /// Total L2 transactions (reads + writes + atomics), the quantity
    /// normalized in Figure 13.
    pub fn l2_transactions(&self) -> u64 {
        self.l2_read_txns + self.l2_write_txns + self.l2_atomic_txns
    }
}

/// The shared L2 + DRAM model. One instance per simulated device.
#[derive(Debug)]
pub struct MemorySystem {
    banks: Vec<Cache>,
    bank_free: Vec<u64>,
    chan_free: Vec<u64>,
    timings: MemoryTimings,
    /// Bank/channel interleave decoder at L2-line granularity.
    dec: AddrDec,
    /// Observable counters.
    pub stats: MemoryStats,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    pub fn new(cfg: &GpuConfig) -> Self {
        let t = cfg.timings.clone();
        let banks = (0..t.l2_banks)
            .map(|_| {
                Cache::new(CacheConfig {
                    size_bytes: cfg.l2.size_bytes / t.l2_banks,
                    ..cfg.l2.clone()
                })
            })
            .collect();
        MemorySystem {
            banks,
            bank_free: vec![0; t.l2_banks as usize],
            chan_free: vec![0; t.dram_channels as usize],
            dec: AddrDec::for_device(cfg.l2.line_bytes, t.l2_banks, t.dram_channels),
            timings: t,
            stats: MemoryStats::default(),
        }
    }

    /// Bank selection through the shared address decoder: real L2 slices
    /// hash the address so that power-of-two strides (dense-matrix
    /// columns) do not camp on a single bank.
    fn bank_of(&self, line_addr: u64) -> usize {
        self.dec.bank(line_addr)
    }

    fn chan_of(&self, line_addr: u64) -> usize {
        self.dec.channel(line_addr)
    }

    /// Occupies the bank and returns the cycle at which it starts serving.
    fn acquire_bank(&mut self, bank: usize, now: u64) -> u64 {
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + self.timings.l2_bank_gap as u64;
        start
    }

    /// Occupies the DRAM channel and returns its service start cycle.
    fn acquire_chan(&mut self, chan: usize, now: u64) -> u64 {
        let start = now.max(self.chan_free[chan]);
        self.chan_free[chan] = start + self.timings.dram_channel_gap as u64;
        start
    }

    /// Reads one L2-line. Returns the absolute cycle at which the data is
    /// back at the requesting SM and the level that served it.
    pub fn read_line(&mut self, line_addr: u64, now: u64) -> (u64, Level) {
        self.stats.l2_read_txns += 1;
        let bank = self.bank_of(line_addr);
        let start = self.acquire_bank(bank, now);
        match self.banks[bank].read(line_addr, start) {
            ReadOutcome::Hit => (start + self.timings.l2_hit as u64, Level::L2),
            ReadOutcome::HitReserved { ready_at } => {
                // Piggybacks on an in-flight DRAM fill issued by another SM.
                (
                    ready_at.max(start + self.timings.l2_hit as u64),
                    Level::Dram,
                )
            }
            ReadOutcome::Miss {
                mshr_wait,
                dirty_victim,
            } => {
                if dirty_victim {
                    self.writeback(line_addr, start);
                }
                // The request occupies the channel at its true issue time
                // (keeping the FIFO cursors causal); an MSHR stall only
                // delays when the data returns.
                let chan = self.chan_of(line_addr);
                let svc = self.acquire_chan(chan, start);
                self.stats.dram_reads += 1;
                // The line physically arrives independent of the MSHR
                // stall; only the requester's data return is delayed.
                // Recording the physical time keeps the in-flight heap
                // from compounding waits into future waits.
                let fill = svc + self.timings.dram as u64;
                self.banks[bank].fill(line_addr, fill);
                (fill + mshr_wait, Level::Dram)
            }
        }
    }

    /// Writes one L2-line (store path; never blocks the issuing warp).
    pub fn write_line(&mut self, line_addr: u64, now: u64) {
        self.stats.l2_write_txns += 1;
        let bank = self.bank_of(line_addr);
        let start = self.acquire_bank(bank, now);
        match self.banks[bank].write(line_addr, start) {
            WriteOutcome::Absorbed => {}
            WriteOutcome::AllocateMiss { dirty_victim } => {
                if dirty_victim {
                    self.writeback(line_addr, start);
                }
                // Write-allocate: fetch-on-write from DRAM.
                let chan = self.chan_of(line_addr);
                let svc = self.acquire_chan(chan, start);
                self.stats.dram_reads += 1;
                self.banks[bank].fill(line_addr, svc + self.timings.dram as u64);
            }
            WriteOutcome::Forwarded { .. } => {
                unreachable!("L2 is write-back; forwarded writes are an L1 outcome")
            }
        }
    }

    /// A serializing atomic on one L2-line: blocks the warp for a full L2
    /// round trip (plus any DRAM fetch if absent).
    pub fn atomic_line(&mut self, line_addr: u64, now: u64) -> (u64, Level) {
        self.stats.l2_atomic_txns += 1;
        let bank = self.bank_of(line_addr);
        let start = self.acquire_bank(bank, now);
        match self.banks[bank].read(line_addr, start) {
            ReadOutcome::Hit | ReadOutcome::HitReserved { .. } => {
                self.banks[bank].write(line_addr, start);
                (start + self.timings.l2_hit as u64, Level::L2)
            }
            ReadOutcome::Miss { dirty_victim, .. } => {
                if dirty_victim {
                    self.writeback(line_addr, start);
                }
                let chan = self.chan_of(line_addr);
                let svc = self.acquire_chan(chan, start);
                self.stats.dram_reads += 1;
                let done = svc + self.timings.dram as u64;
                self.banks[bank].fill(line_addr, done);
                self.banks[bank].write(line_addr, done);
                (done, Level::Dram)
            }
        }
    }

    fn writeback(&mut self, near_line: u64, now: u64) {
        let chan = self.chan_of(near_line);
        self.acquire_chan(chan, now);
        self.stats.dram_writes += 1;
    }

    /// Aggregated cache statistics over all L2 banks.
    pub fn l2_cache_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for b in &self.banks {
            agg.absorb(&b.stats);
        }
        agg
    }

    /// Work-model counters aggregated over every L2 bank.
    pub fn l2_work(&self) -> CacheWork {
        let mut agg = CacheWork::default();
        for b in &self.banks {
            agg.absorb(&b.work());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    fn mem() -> MemorySystem {
        MemorySystem::new(&arch::gtx570())
    }

    #[test]
    fn first_read_goes_to_dram_second_hits_l2() {
        let mut m = mem();
        let (t1, lvl1) = m.read_line(0, 0);
        assert_eq!(lvl1, Level::Dram);
        assert!(t1 >= m.timings.dram as u64);
        let (t2, lvl2) = m.read_line(0, t1 + 1);
        assert_eq!(lvl2, Level::L2);
        assert_eq!(t2, t1 + 1 + m.timings.l2_hit as u64);
        assert_eq!(m.stats.l2_read_txns, 2);
        assert_eq!(m.stats.dram_reads, 1);
    }

    #[test]
    fn inflight_fill_is_shared_across_sms() {
        let mut m = mem();
        let (t1, _) = m.read_line(0, 0);
        // A second SM asks for the same line while the fill is in flight:
        // no extra DRAM read, completion no earlier than the fill.
        let (t2, lvl) = m.read_line(0, 5);
        assert_eq!(lvl, Level::Dram);
        assert!(t2 >= t1);
        assert_eq!(m.stats.dram_reads, 1);
    }

    #[test]
    fn bank_contention_queues() {
        let mut m = mem();
        let line = m.dec.line_bytes() as u64;
        // Find a second line hashing to bank 0 alongside line 0.
        let target = m.bank_of(0);
        let peer = (1u64..)
            .map(|i| i * line)
            .find(|&a| m.bank_of(a) == target)
            .unwrap();
        // Warm both lines.
        let (t_a, _) = m.read_line(0, 0);
        let (t_b, _) = m.read_line(peer, 0);
        let warm = t_a.max(t_b) + 1;
        let (h1, _) = m.read_line(0, warm);
        let (h2, _) = m.read_line(peer, warm);
        // Same bank, same cycle: the second hit starts one gap later.
        assert_eq!(h2, h1 + m.timings.l2_bank_gap as u64);
    }

    #[test]
    fn power_of_two_strides_spread_over_banks() {
        let m = mem();
        let mut banks = std::collections::BTreeSet::new();
        for r in 0..64u64 {
            banks.insert(m.bank_of(r * 1024));
        }
        assert!(banks.len() >= m.timings.l2_banks as usize - 1);
    }

    #[test]
    fn writes_count_transactions_without_blocking() {
        let mut m = mem();
        m.write_line(64, 0);
        assert_eq!(m.stats.l2_write_txns, 1);
        // write-allocate fetched from DRAM
        assert_eq!(m.stats.dram_reads, 1);
    }

    #[test]
    fn atomics_serialize_on_bank() {
        let mut m = mem();
        let (t1, _) = m.atomic_line(0, 0);
        let (t2, lvl) = m.atomic_line(0, t1 + 1);
        assert_eq!(lvl, Level::L2);
        assert!(t2 > t1);
        assert_eq!(m.stats.l2_atomic_txns, 2);
    }

    #[test]
    fn l2_transactions_sums_all_kinds() {
        let mut m = mem();
        m.read_line(0, 0);
        m.write_line(32, 0);
        m.atomic_line(64, 0);
        assert_eq!(m.stats.l2_transactions(), 3);
    }
}
