//! The diagnostics framework: lint descriptors, levels, the registry of
//! every lint the analyzer knows, and the [`Report`] that collects and
//! renders findings.
//!
//! Modelled on rustc's lint machinery: every finding carries a stable
//! code (`CL0xx`), a kebab-case name, a default level, and a one-line
//! summary. Levels can be overridden per lint (the `-A`/`-W`/`-D`
//! equivalent) through [`Report::set_level`].

use std::collections::HashMap;
use std::fmt;

/// How severe a lint finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Suppressed: the finding is recorded nowhere.
    Allow,
    /// Reported, but does not fail the `analyze` gate.
    Warn,
    /// Reported and fails the `analyze` gate (nonzero exit).
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

impl Level {
    /// Parses a level name (`allow`/`warn`/`deny`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

/// A lint descriptor: stable identity plus default severity.
#[derive(Debug)]
pub struct Lint {
    /// Stable code, `CL0xx`. Never reused once published.
    pub code: &'static str,
    /// Kebab-case name (the rustc-style handle).
    pub name: &'static str,
    /// Severity unless overridden.
    pub default_level: Level,
    /// One-line description of what the lint catches.
    pub summary: &'static str,
}

macro_rules! declare_lints {
    ($($(#[$doc:meta])* $ident:ident = { $code:literal, $name:literal, $level:ident, $summary:literal }),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub static $ident: Lint = Lint {
                code: $code,
                name: $name,
                default_level: Level::$level,
                summary: $summary,
            };
        )+

        /// Every lint the analyzer knows, in code order.
        pub static LINTS: &[&Lint] = &[$(&$ident),+];
    };
}

declare_lints! {
    /// `f`/`f⁻¹` are not mutual inverses over the grid (Eqs. 4–7).
    PARTITION_NOT_INVERSE = {
        "CL001", "partition-not-inverse", Deny,
        "partition assign/invert are not mutual inverses over the grid"
    },
    /// Cluster sizes violate the Eq. 3–5 balance bounds.
    PARTITION_UNBALANCED = {
        "CL002", "partition-unbalanced", Deny,
        "cluster sizes violate the floor/ceil(|V|/M) balance bounds"
    },
    /// Cluster walks do not cover every original CTA exactly once.
    PARTITION_COVERAGE = {
        "CL003", "partition-coverage", Deny,
        "cluster enumeration misses or duplicates original CTA ids"
    },
    /// A transform constructor rejected inputs the analyzer fed it.
    TRANSFORM_CONSTRUCTION_FAILED = {
        "CL004", "transform-construction-failed", Deny,
        "a clustering transform could not be constructed for this kernel"
    },
    /// The redirection map is not a permutation of the grid.
    REDIRECTION_NOT_PERMUTATION = {
        "CL011", "redirection-not-permutation", Deny,
        "redirect() is not a permutation of the original CTA ids"
    },
    /// Agent worklists do not emit every original CTA exactly once.
    AGENT_COVERAGE = {
        "CL012", "agent-coverage", Deny,
        "agent worklists miss or duplicate original CTA ids"
    },
    /// Throttled-out agents still receive work, or worklist lengths are
    /// inconsistent with the round-robin split.
    AGENT_THROTTLE_LEAK = {
        "CL013", "agent-throttle-leak", Deny,
        "worklists inconsistent with ACTIVE_AGENTS throttling"
    },
    /// `MAX_AGENTS` or the launch grid disagree with the occupancy model.
    AGENT_OCCUPANCY_MISMATCH = {
        "CL014", "agent-occupancy-mismatch", Deny,
        "MAX_AGENTS or launch grid disagree with occupancy-derived limits"
    },
    /// L1-bypassed loads predominantly touch reused cache lines.
    BYPASS_ON_REUSED_LINE = {
        "CL021", "bypass-on-reused-line", Deny,
        "bypassed array's lines carry reuse the L1 would have served"
    },
    /// A prefetched line is never demanded afterwards.
    PREFETCH_NEVER_USED = {
        "CL022", "prefetch-never-used", Deny,
        "prefetched line is never demanded by the issuing warp"
    },
    /// A line is prefetched only after its last demand access.
    PREFETCH_AFTER_LAST_USE = {
        "CL023", "prefetch-after-last-use", Deny,
        "line prefetched after its last demand access"
    },
    /// The same line is prefetched twice with no intervening demand.
    DUPLICATE_PREFETCH = {
        "CL024", "duplicate-prefetch", Warn,
        "line prefetched repeatedly without an intervening demand access"
    },
    /// Average coalescing degree is pathologically low.
    PATHOLOGICAL_DIVERGENCE = {
        "CL025", "pathological-divergence", Warn,
        "average coalescing degree below 2 lanes per transaction"
    },
    /// A throttle request exceeds the occupancy-derived `MAX_AGENTS`.
    THROTTLE_EXCEEDS_OCCUPANCY = {
        "CL026", "throttle-exceeds-occupancy", Deny,
        "ACTIVE_AGENTS outside 1..=MAX_AGENTS"
    },
    /// A throttle request was repaired by `clamp_active_agents`.
    THROTTLE_CLAMPED = {
        "CL027", "throttle-clamped", Warn,
        "requested ACTIVE_AGENTS repaired by the runtime clamp"
    },
    /// Statically derived category disagrees with the recorded one.
    STATIC_CATEGORY_MISMATCH = {
        "CL030", "static-category-mismatch", Warn,
        "static locality category disagrees with the plan's category"
    },
    /// The plan exploits locality of an unexploitable category.
    PLAN_EXPLOITS_UNEXPLOITABLE = {
        "CL031", "plan-exploits-unexploitable", Deny,
        "plan exploits locality although its category is unexploitable"
    },
    /// The plan bypasses an array whose accesses carry reuse.
    PLAN_BYPASS_REUSED_TAG = {
        "CL032", "plan-bypass-reused-tag", Deny,
        "plan bypasses an array tag with significant static reuse"
    },
    /// The plan prefetches although locality is exploitable.
    PLAN_PREFETCH_ON_EXPLOITABLE = {
        "CL033", "plan-prefetch-on-exploitable", Deny,
        "plan enables prefetching although locality is exploitable"
    },
    /// A cache geometry the engine cannot model sanely: a sector size
    /// that does not divide the line size, an aggregated-tag array over a
    /// non-power-of-two bank count, or a zero-set array. Caught at
    /// plan-audit time so a bad config fails the analyze gate instead of
    /// panicking inside the simulator.
    DEGENERATE_CACHE_GEOMETRY = {
        "CL034", "degenerate-cache-geometry", Deny,
        "cache geometry is degenerate (sector/line split, ATA banking, or zero sets)"
    },
    /// Two warps of one CTA conflict on a word with no ordering barrier.
    /// Warn by default: the suite's irregular kernels (BFS visited
    /// flags, HST bin scatters) model real benign idempotent races.
    INTRA_CTA_RACE = {
        "CL101", "intra-cta-race", Warn,
        "unordered conflicting accesses to one word within a CTA"
    },
    /// CTAs of one launch conflict on a word with no inter-CTA ordering.
    CROSS_CTA_CONFLICT = {
        "CL102", "cross-cta-conflict", Warn,
        "conflicting accesses to one word from different CTAs"
    },
    /// The agent counter word is touched by a non-atomic access.
    UNSYNCED_COUNTER_ACCESS = {
        "CL103", "unsynced-counter-access", Deny,
        "agent counter word accessed without an atomic"
    },
    /// Warps of one CTA execute different barrier counts.
    BARRIER_DIVERGENCE = {
        "CL104", "barrier-divergence", Deny,
        "warps of one CTA reach different numbers of barriers"
    },
    /// The model checker found a reachable deadlock.
    PROTOCOL_DEADLOCK = {
        "CL110", "protocol-deadlock", Deny,
        "agent protocol can reach a state where no agent can step"
    },
    /// The model checker found a task consumed zero or multiple times.
    PROTOCOL_EXACTLY_ONCE = {
        "CL111", "protocol-exactly-once", Deny,
        "agent protocol can drop or duplicate a task"
    },
    /// The model checker found an agent that can be starved forever.
    PROTOCOL_STARVATION = {
        "CL112", "protocol-starvation", Deny,
        "an active agent can terminate without draining its task stride"
    },
    /// The abstract interpreter could not prove f⁻¹∘f = id.
    BINDING_IDENTITY_UNPROVEN = {
        "CL120", "binding-identity-unproven", Deny,
        "symbolic proof of assign/invert identity failed"
    },
    /// Binding arithmetic can overflow u64 on the symbolic domain.
    BINDING_OVERFLOW = {
        "CL121", "binding-overflow", Deny,
        "partition/binding arithmetic can overflow the u64 domain"
    },
    /// The cost model proves the read working set thrashes the L1: even
    /// the sound upper bound on the hit rate is near zero.
    WORKING_SET_THRASHES = {
        "CL201", "working-set-thrashes", Warn,
        "read working set provably thrashes the L1 at this geometry"
    },
    /// Every cacheable read touches a distinct line, so no clustering
    /// transform can convert a miss into a hit.
    CLUSTERING_MISS_INVARIANT = {
        "CL202", "clustering-miss-invariant", Warn,
        "all reads are cold: clustering provably cannot change the miss count"
    },
    /// The kernel presents no cacheable reads at all: cache geometry is
    /// irrelevant and only occupancy/latency effects remain.
    OCCUPANCY_BOUND_GEOMETRY_IRRELEVANT = {
        "CL203", "occupancy-bound-geometry-irrelevant", Warn,
        "no cacheable reads: L1 geometry provably cannot affect this kernel"
    },
    /// A measured hit rate fell outside the statically derived interval,
    /// or the modeled transaction count diverged from the simulator's.
    COSTMODEL_UNSOUND = {
        "CL204", "costmodel-unsound", Deny,
        "measured hit rate escapes the static [lo, hi] interval"
    },
    /// One set absorbs a super-proportional share of the read footprint
    /// under the configured indexing function.
    SET_CAMPING = {
        "CL301", "set-camping", Warn,
        "one L1 set absorbs a super-proportional footprint share"
    },
    /// Hashed and modulo decoders provably produce identical per-set
    /// behaviour: the indexing axis is dead for this kernel/geometry.
    INDEXING_INSENSITIVE = {
        "CL302", "indexing-insensitive", Warn,
        "hashed vs modulo indexing provably identical: dead DSE axis"
    },
    /// The geometry's conflict structure keeps the sound interval wide:
    /// most reads land in overflowing sets the bound cannot decide.
    CONFLICT_BOUND_GEOMETRY = {
        "CL303", "conflict-bound-geometry", Warn,
        "set conflicts dominate: the sound interval stays wide at this geometry"
    },
    /// A per-set prediction diverged from the simulator's per-set
    /// counters (emitted only by the `--verify-costmodel` machine check).
    SETMODEL_UNSOUND = {
        "CL304", "setmodel-unsound", Deny,
        "per-set prediction diverges from simulator per-set counters"
    },
    /// A plan about to be returned by the serving layer failed the
    /// static plan audit (emitted by [`crate::plan::audit_served`], the
    /// gate `cta-serve` and its tests run every response through).
    SERVED_PLAN_FAILS_AUDIT = {
        "CL401", "served-plan-fails-audit", Deny,
        "a served plan fails the static plan audit"
    },
}

/// Looks a lint up by its stable code.
pub fn lint_by_code(code: &str) -> Option<&'static Lint> {
    LINTS.iter().copied().find(|l| l.code == code)
}

/// Looks a lint up by its kebab-case name.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().copied().find(|l| l.name == name)
}

/// One emitted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: &'static str,
    /// Lint name.
    pub name: &'static str,
    /// Effective level after overrides.
    pub level: Level,
    /// What was being checked, e.g. `MM/GTX570/CLU+TOT`.
    pub subject: String,
    /// The specific finding.
    pub message: String,
}

/// Collects diagnostics across passes and renders them.
#[derive(Debug, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
    overrides: HashMap<&'static str, Level>,
    subjects_checked: u64,
}

impl Report {
    /// An empty report with default lint levels.
    pub fn new() -> Self {
        Report::default()
    }

    /// Overrides a lint's level (the `-A`/`-W`/`-D` equivalent).
    pub fn set_level(&mut self, lint: &'static Lint, level: Level) {
        self.overrides.insert(lint.code, level);
    }

    /// The effective level of `lint` under the current overrides.
    pub fn level_of(&self, lint: &'static Lint) -> Level {
        self.overrides
            .get(lint.code)
            .copied()
            .unwrap_or(lint.default_level)
    }

    /// Emits one finding. `Allow`-level findings are dropped.
    pub fn emit(&mut self, lint: &'static Lint, subject: &str, message: String) {
        let level = self.level_of(lint);
        if level == Level::Allow {
            return;
        }
        self.diags.push(Diagnostic {
            code: lint.code,
            name: lint.name,
            level,
            subject: subject.to_string(),
            message,
        });
    }

    /// Marks one subject (kernel × arch × variant) as checked, for the
    /// summary line.
    pub fn note_subject(&mut self) {
        self.subjects_checked += 1;
    }

    /// Subjects checked so far.
    pub fn subjects_checked(&self) -> u64 {
        self.subjects_checked
    }

    /// Merges `other` into `self` (used to join per-thread reports).
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
        self.subjects_checked += other.subjects_checked;
    }

    /// All findings, sorted deterministically by (subject, code, message).
    pub fn diagnostics(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.diags.iter().collect();
        v.sort_by(|a, b| (&a.subject, a.code, &a.message).cmp(&(&b.subject, b.code, &b.message)));
        v
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diags.iter().filter(|d| d.level == Level::Deny).count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diags.iter().filter(|d| d.level == Level::Warn).count()
    }

    /// Whether the report contains a finding of `lint` (any subject).
    pub fn has(&self, lint: &'static Lint) -> bool {
        self.diags.iter().any(|d| d.code == lint.code)
    }

    /// Renders the rustc-style human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in self.diagnostics() {
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}\n  = note: {}\n",
                d.level, d.code, d.name, d.subject, d.message
            ));
        }
        out.push_str(&format!(
            "analysis: {} subject(s) checked, {} deny, {} warn\n",
            self.subjects_checked,
            self.deny_count(),
            self.warn_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        let codes: Vec<&str> = LINTS.iter().map(|l| l.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "lint table must stay in unique code order");
        assert!(codes.iter().all(|c| c.starts_with("CL") && c.len() == 5));
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert!(std::ptr::eq(
            lint_by_code("CL012").unwrap(),
            &AGENT_COVERAGE
        ));
        assert!(std::ptr::eq(
            lint_by_name("agent-coverage").unwrap(),
            &AGENT_COVERAGE
        ));
        assert!(lint_by_code("CL999").is_none());
    }

    #[test]
    fn overrides_change_effective_level() {
        let mut r = Report::new();
        r.set_level(&AGENT_COVERAGE, Level::Warn);
        r.emit(&AGENT_COVERAGE, "a", "x".into());
        assert_eq!(r.deny_count(), 0);
        assert_eq!(r.warn_count(), 1);
        r.set_level(&AGENT_COVERAGE, Level::Allow);
        r.emit(&AGENT_COVERAGE, "a", "y".into());
        assert_eq!(r.warn_count(), 1, "allow-level findings are dropped");
    }

    #[test]
    fn diagnostics_sort_deterministically() {
        let mut r = Report::new();
        r.emit(&AGENT_COVERAGE, "b", "2".into());
        r.emit(&PARTITION_COVERAGE, "b", "1".into());
        r.emit(&AGENT_COVERAGE, "a", "3".into());
        let order: Vec<(&str, &str)> = r
            .diagnostics()
            .iter()
            .map(|d| (d.subject.as_str(), d.code))
            .collect();
        assert_eq!(order, vec![("a", "CL012"), ("b", "CL003"), ("b", "CL012")]);
    }

    #[test]
    fn human_rendering_has_rustc_shape() {
        let mut r = Report::new();
        r.note_subject();
        r.emit(
            &AGENT_COVERAGE,
            "MM/GTX570/CLU",
            "CTA 17 emitted 0 times".into(),
        );
        let text = r.render_human();
        assert!(text.contains("deny[CL012]: agent-coverage"));
        assert!(text.contains("--> MM/GTX570/CLU"));
        assert!(text.contains("1 subject(s) checked, 1 deny, 0 warn"));
    }
}
