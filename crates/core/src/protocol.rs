//! Introspection of the agent-clustering synchronization protocol.
//!
//! The agent transform ([`AgentKernel`](crate::AgentKernel)) implements
//! the paper's Listing 5: persistent CTAs that bind an SM's cluster,
//! derive an agent id (hardware warp slot on Fermi/Kepler, global atomic
//! ticket plus shared-memory broadcast on Maxwell/Pascal) and consume the
//! cluster's tasks in a strided order. That is a small concurrent
//! protocol, and the `cta-analyzer` crate verifies it — happens-before
//! race checking over the emitted op streams, and bounded model checking
//! over the abstract state machine.
//!
//! This module is the bridge: it exposes the protocol's *constants* (the
//! counter word layout, the broadcast cost) and an architecture-level
//! description ([`ProtocolSpec`]) that a verifier can explore without
//! walking warp programs or constructing kernels.

use gpu_sim::ArchGen;

/// Extra issue latency modelling the shared-memory broadcast that follows
/// the agent-id bid on dynamic-binding architectures (Listing 5).
pub const BROADCAST_COST: u32 = 12;

/// Array tag of the global per-SM agent-counter word
/// (`global_counters[smid]` in Listing 5). Reserved: no workload kernel
/// may use it.
pub const COUNTER_TAG: u16 = u16::MAX;

/// Global address of SM `sm_id`'s agent-counter word.
///
/// The counter array lives in its own tag-addressed region so that the
/// ticket traffic of different SMs stays word-disjoint:
/// `addr = (COUNTER_TAG << 32) + smid * 4`.
pub fn counter_addr(sm_id: usize) -> u64 {
    (u64::from(COUNTER_TAG) << 32) + sm_id as u64 * 4
}

/// How agents of one SM derive their agent id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingMode {
    /// Fermi/Kepler: the hardware CTA slot is stable for a persistent
    /// CTA, so the agent id is read off `%warpid` — no synchronization.
    StaticSlot,
    /// Maxwell/Pascal: thread 0 increments the SM's global counter word
    /// atomically, then broadcasts the ticket through shared memory to
    /// the rest of the CTA, which waits on a barrier.
    AtomicTicket,
}

impl BindingMode {
    /// The binding mode architecture `arch` forces.
    pub fn of(arch: ArchGen) -> Self {
        if arch.static_warp_slot_binding() {
            BindingMode::StaticSlot
        } else {
            BindingMode::AtomicTicket
        }
    }
}

/// Architecture-level description of one agent-clustering launch: the
/// facts a protocol verifier needs, decoupled from any concrete kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// How agents derive their id.
    pub binding: BindingMode,
    /// SMs (= clusters) in the launch.
    pub num_sms: usize,
    /// `MAX_AGENTS`: persistent CTAs launched per SM.
    pub max_agents: u32,
    /// `ACTIVE_AGENTS`: agents that execute tasks after throttling
    /// (`1 ..= max_agents`).
    pub active_agents: u32,
    /// Tasks per SM cluster (`cluster_sizes[sm]` = `|cluster(sm)|`).
    pub cluster_sizes: Vec<u64>,
}

impl ProtocolSpec {
    /// Task positions `w` agent `agent_id` of SM `sm` consumes, in order
    /// (the strided schedule `w ≡ agent_id (mod ACTIVE_AGENTS)`).
    pub fn tasks_of(&self, sm: usize, agent_id: u64) -> Vec<u64> {
        if sm >= self.num_sms || agent_id >= u64::from(self.active_agents) {
            return Vec::new();
        }
        (agent_id..self.cluster_sizes[sm])
            .step_by(self.active_agents as usize)
            .collect()
    }

    /// Total tasks across all clusters.
    pub fn total_tasks(&self) -> u64 {
        self.cluster_sizes.iter().sum()
    }

    /// Checks the spec's internal invariants (verifiers should refuse
    /// malformed specs rather than "prove" vacuous properties).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("zero SMs".into());
        }
        if self.max_agents == 0 {
            return Err("zero MAX_AGENTS".into());
        }
        if self.active_agents == 0 || self.active_agents > self.max_agents {
            return Err(format!(
                "ACTIVE_AGENTS {} outside 1..={}",
                self.active_agents, self.max_agents
            ));
        }
        if self.cluster_sizes.len() != self.num_sms {
            return Err(format!(
                "{} cluster sizes for {} SMs",
                self.cluster_sizes.len(),
                self.num_sms
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProtocolSpec {
        ProtocolSpec {
            binding: BindingMode::AtomicTicket,
            num_sms: 2,
            max_agents: 4,
            active_agents: 2,
            cluster_sizes: vec![5, 3],
        }
    }

    #[test]
    fn counter_words_are_disjoint_per_sm() {
        let a = counter_addr(0);
        let b = counter_addr(1);
        assert_ne!(a / 4, b / 4);
        assert_eq!(a >> 32, u64::from(COUNTER_TAG));
    }

    #[test]
    fn binding_mode_tracks_architecture() {
        assert_eq!(BindingMode::of(ArchGen::Kepler), BindingMode::StaticSlot);
        assert_eq!(BindingMode::of(ArchGen::Pascal), BindingMode::AtomicTicket);
    }

    #[test]
    fn strided_schedule_partitions_each_cluster() {
        let s = spec();
        let mut all: Vec<u64> = (0..2).flat_map(|a| s.tasks_of(0, a)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert!(s.tasks_of(0, 2).is_empty(), "throttled agent idles");
        assert!(s.tasks_of(9, 0).is_empty(), "out-of-range SM");
        assert_eq!(s.total_tasks(), 8);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.active_agents = 5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.cluster_sizes.pop();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.num_sms = 0;
        s.cluster_sizes.clear();
        assert!(s.validate().is_err());
    }
}
