//! NW — Needleman-Wunsch DNA sequence alignment (Rodinia `nw`).
//!
//! The anti-diagonal wavefront reads the score-matrix cells written by
//! the previous diagonal's CTAs, at offsets **within one cache line** of
//! its own writes. Under the write-evict L1, a neighbouring CTA's store
//! invalidates the very line a reader just fetched — the paper's
//! write-related category (Figure 4-(D)): locality exists but cannot be
//! exploited.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "NW",
    full_name: "nw",
    description: "DNA sequence alignment algorithm",
    category: PaperCategory::Write,
    warps_per_cta: 1,
    partition: PartitionHint::X,
    opt_agents: [8, 16, 16, 8],
    regs: [28, 27, 39, 40],
    smem: 2180,
    source: "Rodinia",
};

const TAG_SCORE: u16 = 0;
const TAG_REF: u16 = 1;

/// The Needleman-Wunsch workload model.
#[derive(Debug, Clone)]
pub struct NeedlemanWunsch {
    /// CTAs in the 1D grid (one anti-diagonal block each).
    pub grid: u32,
    /// Diagonal sweeps fused per kernel.
    pub sweeps: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl NeedlemanWunsch {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        NeedlemanWunsch {
            grid: 768,
            sweeps: 4,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, sweeps: u32) -> Self {
        NeedlemanWunsch {
            grid,
            sweeps,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for NeedlemanWunsch {
    fn name(&self) -> String {
        format!("NW(grid={},s{})", self.grid, self.sweeps)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 32u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
        let mut prog = Program::new();
        // Each CTA owns a 32-word cell strip; strips of consecutive CTAs
        // are adjacent, so the +-1-cell dependency reads land in the
        // neighbour's strip — less than a cache line away from the
        // neighbour's own writes.
        let strip = ctx.cta * 32;
        for s in 0..self.sweeps as u64 {
            // Read the north-west dependency cells: the tail of the
            // previous CTA's strip plus our own previous diagonal.
            prog.push(read_words(TAG_SCORE, strip.saturating_sub(2), 32));
            // Reference sequence tables (streaming).
            prog.push(read_words(TAG_REF, strip + s * 65536, 32));
            prog.push(Op::Compute(10));
            // Write this diagonal's cells over the strip.
            prog.push(write_words(TAG_SCORE, strip, 32));
        }
        prog
    }
}

impl Workload for NeedlemanWunsch {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn reads_overlap_neighbour_writes_within_a_line() {
        let nw = NeedlemanWunsch::new(4, 1);
        let reads1: Vec<u64> = nw
            .warp_program(&ctx(1), 0)
            .iter()
            .filter_map(|op| match op {
                Op::Load(a) if a.tag == TAG_SCORE => Some(a.addrs.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        let writes0: Vec<u64> = nw
            .warp_program(&ctx(0), 0)
            .iter()
            .filter_map(|op| match op {
                Op::Store(a) if a.tag == TAG_SCORE => Some(a.addrs.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        // CTA 1's dependency reads include words CTA 0 writes.
        assert!(reads1.iter().any(|a| writes0.contains(a)));
        // And they share 128B lines with CTA 1's own writes (write-evict
        // interference).
        let w1: Vec<u64> = nw
            .warp_program(&ctx(1), 0)
            .iter()
            .filter_map(|op| match op {
                Op::Store(a) => Some(coalesce_lines(a, 128)),
                _ => None,
            })
            .flatten()
            .collect();
        let r1_lines: Vec<u64> = reads1.iter().map(|a| a & !127).collect();
        assert!(w1.iter().any(|l| r1_lines.contains(l)));
    }

    #[test]
    fn single_warp_ctas() {
        let nw = NeedlemanWunsch::for_arch(ArchGen::Fermi);
        assert_eq!(nw.launch().warps_per_cta(32), 1);
        assert_eq!(nw.info().category, PaperCategory::Write);
    }

    #[test]
    fn sweeps_scale_stores() {
        let n1 = NeedlemanWunsch::new(2, 1);
        let n4 = NeedlemanWunsch::new(2, 4);
        let stores = |n: &NeedlemanWunsch| {
            n.warp_program(&ctx(0), 0)
                .iter()
                .filter(|op| matches!(op, Op::Store(_)))
                .count()
        };
        assert_eq!(stores(&n4), 4 * stores(&n1));
    }
}
