//! The analysis driver: runs every pass family over one workload on one
//! GPU, mirroring the variant stack of the Figure 12/13 harness
//! (`cluster_bench::runner::AppPlan`) so the analyzer audits exactly what
//! the evaluation executes.

use crate::diag::{Report, THROTTLE_CLAMPED, TRANSFORM_CONSTRUCTION_FAILED};
use crate::profile::StaticProfile;
use crate::{hb, ir, plan as plan_audit, transform};
use cluster_bench::runner::{hinted_partition, SharedKernel};
use cta_clustering::{
    clamp_active_agents, AgentKernel, Axis, BypassKernel, Plan, RedirectionKernel,
};
use gpu_kernels::{PaperCategory, PartitionHint, Workload};
use gpu_sim::{GpuConfig, KernelSpec};
use locality::Category;

/// Cross-CTA prefetch depth of the `PFH+TOT` variant (matches the
/// harness).
const PREFETCH_DEPTH: usize = 2;

/// Resolves the paper's Table 2 category label into the [`Category`] the
/// plan carries, resolving the combined `Data&Writing` label with the
/// statically observed category when it matches either half.
fn paper_to_category(paper: PaperCategory, observed: Category) -> Category {
    match paper {
        PaperCategory::Algorithm => Category::Algorithm,
        PaperCategory::CacheLine => Category::CacheLine,
        PaperCategory::Data => Category::Data,
        PaperCategory::Write => Category::Write,
        PaperCategory::Streaming => Category::Streaming,
        PaperCategory::DataWrite => {
            if matches!(observed, Category::Data | Category::Write) {
                observed
            } else {
                Category::Data
            }
        }
    }
}

/// Runs all three pass families over `workload` on `base_cfg`, appending
/// findings to `report`.
///
/// The checked variants mirror the harness: partition invariants on the
/// hinted axis (and the opposite axis, since `tune`-style probes build
/// both), redirection and agent transforms over the hinted partition,
/// IR lints on the baseline / bypassed / prefetching programs, and the
/// plan audit over the statically derived optimization plan.
pub fn analyze_workload(workload: Box<dyn Workload>, base_cfg: &GpuConfig, report: &mut Report) {
    let kernel = SharedKernel::new(workload);
    let info = kernel.info();
    let launch = kernel.launch();
    let cfg = base_cfg.prefer_l1(launch.smem_per_cta);
    let base = format!("{}/{}", info.abbr, cfg.name);
    let grid = launch.grid;
    let m = cfg.num_sms as u64;

    // Pass family 0: the cache geometry every variant below will run on
    // must be modelable at all — a degenerate split fails here instead of
    // panicking inside the engine's constructors.
    plan_audit::check_cache_geometry(&cfg, &format!("{base}/geometry"), report);

    // Pass family 1a: partition invariants, both axes (the framework's
    // axis probe constructs both, so both must be sound).
    for axis in [Axis::Y, Axis::X] {
        match axis.partition(grid, m) {
            Ok(p) => transform::check_partition(&p, &format!("{base}/partition:{axis}"), report),
            Err(e) => report.emit(
                &TRANSFORM_CONSTRUCTION_FAILED,
                &format!("{base}/partition:{axis}"),
                format!("partition: {e}"),
            ),
        }
    }

    let partition = hinted_partition(&kernel, &cfg);

    // Pass family 1b: redirection permutation.
    let rd = RedirectionKernel::new(kernel.clone(), partition.clone());
    transform::check_redirection(&rd, &format!("{base}/RD"), report);

    // Pass family 1c: agent coverage, throttling, occupancy.
    let agents = match AgentKernel::with_partition(kernel.clone(), &cfg, partition.clone()) {
        Ok(a) => a,
        Err(e) => {
            report.emit(
                &TRANSFORM_CONSTRUCTION_FAILED,
                &format!("{base}/CLU"),
                format!("agent transform: {e}"),
            );
            return;
        }
    };
    transform::check_agents(&agents, &format!("{base}/CLU"), report);
    transform::check_agent_occupancy(&agents, &cfg, &format!("{base}/CLU"), report);

    let max_agents = agents.max_agents();
    let requested = info.opt_agents_for(cfg.arch);
    let active = clamp_active_agents(requested, max_agents);
    if active != requested {
        report.emit(
            &THROTTLE_CLAMPED,
            &format!("{base}/CLU+TOT"),
            format!(
                "Table 2 opt agents = {requested}, runtime clamps to {active} (MAX_AGENTS = {max_agents})"
            ),
        );
    }
    let throttled = match agents.clone().with_active_agents(active) {
        Ok(t) => t,
        Err(e) => {
            report.emit(
                &TRANSFORM_CONSTRUCTION_FAILED,
                &format!("{base}/CLU+TOT"),
                format!("throttle: {e}"),
            );
            return;
        }
    };
    transform::check_agents(&throttled, &format!("{base}/CLU+TOT"), report);

    // Pass family 2: IR lints — baseline stream, then the bypassed and
    // prefetching agent programs (the variants that rewrite cache ops).
    let profile = StaticProfile::collect(&kernel, &cfg);
    ir::check_kernel(&kernel, &cfg, &format!("{base}/BSL"), report);

    // Pass families 7 + 8: the CL2xx cost model and the CL3xx set-conflict
    // model share one walked access summary of the baseline stream at the
    // harness's cache geometry.
    let summary = locality::AccessSummary::collect_on(&kernel, &cfg);
    crate::costmodel::check_summary(&summary, &cfg, &format!("{base}/costmodel"), report);
    crate::setmodel::check_summary(&summary, &cfg, &format!("{base}/setmodel"), report);

    let bypass_tags = profile.streaming_tags();
    match AgentKernel::with_partition(
        BypassKernel::new(kernel.clone(), bypass_tags.clone()),
        &cfg,
        partition.clone(),
    )
    .and_then(|a| a.with_active_agents(active))
    {
        Ok(bypassed) => ir::check_kernel(&bypassed, &cfg, &format!("{base}/CLU+TOT+BPS"), report),
        Err(e) => report.emit(
            &TRANSFORM_CONSTRUCTION_FAILED,
            &format!("{base}/CLU+TOT+BPS"),
            format!("bypass transform: {e}"),
        ),
    }

    // Pass families 2 + 4a over the prefetching variant, fused into one
    // walk (program generation dominates walk cost for agent kernels).
    // The happens-before pass sees the full binding protocol here — the
    // atomic ticket and broadcast barrier on Maxwell/Pascal presets —
    // stacked on the inner kernel's access stream; the inserted
    // prefetches are non-binding and invisible to it.
    let prefetching = throttled.with_prefetch(PREFETCH_DEPTH);
    let mut ir_pass = ir::IrPass::new();
    // The agent variant's write/atomic set is the inner kernel's plus the
    // protocol's ticket counter; reads outside it cannot race.
    let mut written = profile.written_tags().to_vec();
    written.push(cta_clustering::protocol::COUNTER_TAG);
    let mut hb_pass = hb::HbPass::new().with_written_tags(written);
    gpu_sim::walk::each_warp_program_on(&prefetching, &cfg, |ctx, warp, prog| {
        ir_pass.visit(ctx, warp, prog);
        hb_pass.visit(ctx, warp, prog);
    });
    ir_pass.finish(&format!("{base}/PFH+TOT"), report);
    hb_pass.finish(&format!("{base}/PFH+TOT"), report);

    // Pass family 3: audit the plan the framework stack would execute.
    let plan_category = paper_to_category(info.category, profile.category);
    let exploit = plan_category.exploitable();
    let plan = Plan {
        category: plan_category,
        axis: match info.partition {
            PartitionHint::X => Axis::X,
            PartitionHint::Y => Axis::Y,
        },
        exploit_locality: exploit,
        active_agents: Some(active),
        bypass: if exploit { bypass_tags } else { Vec::new() },
        prefetch: if exploit { 0 } else { PREFETCH_DEPTH },
    };
    plan_audit::audit(&plan, &profile, max_agents, &format!("{base}/plan"), report);
}

/// Analyzes every workload of the Figure 3 suite (the full 33-kernel
/// set) on `base_cfg`, returning a fresh report.
pub fn analyze_arch(base_cfg: &GpuConfig) -> Report {
    let mut report = Report::new();
    for w in gpu_kernels::suite::fig3_suite(base_cfg.arch) {
        analyze_workload(w, base_cfg, &mut report);
    }
    // Pass family 4b: bounded model checking of the binding protocol
    // under this architecture's binding mode.
    crate::modelcheck::check_arch(base_cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn single_workload_analysis_is_deny_clean() {
        let cfg = arch::gtx570();
        let mut r = Report::new();
        let w = gpu_kernels::suite::by_abbr("MM", cfg.arch).unwrap();
        analyze_workload(w, &cfg, &mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert!(r.subjects_checked() >= 9);
    }

    #[test]
    fn paper_category_resolution() {
        assert_eq!(
            paper_to_category(PaperCategory::DataWrite, Category::Write),
            Category::Write
        );
        assert_eq!(
            paper_to_category(PaperCategory::DataWrite, Category::Streaming),
            Category::Data
        );
        assert_eq!(
            paper_to_category(PaperCategory::Algorithm, Category::Streaming),
            Category::Algorithm
        );
    }
}
