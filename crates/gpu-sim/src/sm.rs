//! Per-SM execution state: resident CTAs, warp contexts, the L1 sectors,
//! and occupancy accounting.

use crate::cache::{Cache, CacheStats};
use crate::config::{CacheConfig, GpuConfig};
use crate::kernel::Program;

/// One resident warp's execution context.
#[derive(Debug)]
pub(crate) struct WarpState {
    /// CTA slot this warp belongs to.
    pub cta_slot: u32,
    /// Warp index within its CTA.
    pub warp: u32,
    /// Remaining instruction stream.
    pub program: Program,
    /// Next op index.
    pub pc: usize,
    /// Earliest cycle the next op may issue.
    pub ready_at: u64,
    /// Parked at a `__syncthreads()`.
    pub at_barrier: bool,
}

/// Bookkeeping for one resident CTA.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResidentCta {
    /// Linear CTA id within the launched grid.
    pub cta: u64,
    /// Warps the CTA launched with.
    pub warps_total: u32,
    /// Warps that ran their program to completion.
    pub warps_done: u32,
    /// Warps currently parked at the barrier.
    pub barrier_count: u32,
    /// Dispatch cycle.
    pub dispatched: u64,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub(crate) struct SmState {
    pub id: usize,
    /// Next cycle the issue stage is free.
    pub clock: u64,
    /// L1 sectors (one for Fermi/Kepler, two for Maxwell/Pascal).
    pub l1_sectors: Vec<Cache>,
    /// Warp contexts, indexed by hardware warp slot
    /// (`cta_slot * warps_per_cta + warp`).
    pub warps: Vec<Option<WarpState>>,
    /// Resident CTAs, indexed by CTA slot.
    pub ctas: Vec<Option<ResidentCta>>,
    /// CTAs dispatched to this SM so far (the atomic-ticket value).
    pub dispatch_count: u64,
    /// Times at which a freed slot owes the scheduler a dispatch poll.
    pub pending_dispatch: Vec<u64>,
    /// Next cycle the load/store unit can accept a transaction: the LSU
    /// replays divergent accesses one line-transaction per cycle, which
    /// bounds how fast one SM can flood the memory system.
    pub lsu_free: u64,
    /// L2-line transactions issued by loads that bypassed L1 (explicit
    /// `BypassL1` cache op, or L1 disabled architecturally).
    pub bypassed_reads: u64,
    /// Occupancy accounting: live warps right now.
    pub active_warps: u32,
    /// Integral of `active_warps` over time.
    pub occ_integral: u64,
    /// Last time `active_warps` changed.
    pub occ_last_change: u64,
}

impl SmState {
    pub(crate) fn new(id: usize, cfg: &GpuConfig, max_ctas: u32, warps_per_cta: u32) -> Self {
        let sector_cfg = CacheConfig {
            size_bytes: cfg.l1.size_bytes / cfg.l1_sectors,
            ..cfg.l1.clone()
        };
        SmState {
            id,
            clock: 0,
            l1_sectors: (0..cfg.l1_sectors)
                .map(|_| Cache::new(sector_cfg.clone()))
                .collect(),
            warps: (0..(max_ctas * warps_per_cta) as usize)
                .map(|_| None)
                .collect(),
            ctas: (0..max_ctas as usize).map(|_| None).collect(),
            dispatch_count: 0,
            pending_dispatch: Vec::new(),
            lsu_free: 0,
            bypassed_reads: 0,
            active_warps: 0,
            occ_integral: 0,
            occ_last_change: 0,
        }
    }

    /// Lowest free CTA slot, if any.
    pub(crate) fn free_slot(&self) -> Option<u32> {
        self.ctas.iter().position(|c| c.is_none()).map(|i| i as u32)
    }

    /// Number of resident CTAs.
    #[allow(dead_code)] // exercised by tests; kept as an inspection helper
    pub(crate) fn resident(&self) -> usize {
        self.ctas.iter().filter(|c| c.is_some()).count()
    }

    /// Updates the occupancy integral up to `now`, then applies a delta to
    /// the live-warp count.
    pub(crate) fn account_warps(&mut self, now: u64, delta: i64) {
        let now = now.max(self.occ_last_change);
        self.occ_integral += self.active_warps as u64 * (now - self.occ_last_change);
        self.occ_last_change = now;
        self.active_warps = (self.active_warps as i64 + delta) as u32;
    }

    /// The L1 sector serving a given CTA slot. The paper speculates the
    /// Maxwell/Pascal unified-cache sectors "are private to particular
    /// CTA-slots following certain mapping mechanism"; we map slots to
    /// sectors round-robin. The engine inlines this mapping in its
    /// split-borrow hot path; this method is the documented reference.
    #[allow(dead_code)]
    pub(crate) fn sector_of_slot(&self, slot: u32) -> usize {
        (slot as usize) % self.l1_sectors.len()
    }

    /// Aggregated L1 statistics over this SM's sectors.
    pub(crate) fn l1_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.l1_sectors {
            agg.absorb(&s.stats);
        }
        agg
    }

    /// Earliest ready time among issuable warps (not done, not at a
    /// barrier), with the warp-slot index as deterministic tiebreak.
    pub(crate) fn next_issuable(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for (i, w) in self.warps.iter().enumerate() {
            if let Some(w) = w {
                if !w.at_barrier {
                    let key = (w.ready_at, i);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        best
    }

    /// The SM's next event time: earliest of issuable-warp readiness
    /// (clamped by the issue clock) and pending dispatch polls. `None`
    /// when the SM has nothing to do.
    pub(crate) fn next_event(&self) -> Option<u64> {
        let issue = self.next_issuable().map(|(t, _)| t.max(self.clock));
        let dispatch = self.pending_dispatch.iter().copied().min();
        match (issue, dispatch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn slot_and_sector_mapping() {
        let cfg = arch::gtx980();
        let sm = SmState::new(0, &cfg, 4, 2);
        assert_eq!(sm.l1_sectors.len(), 2);
        assert_eq!(sm.sector_of_slot(0), 0);
        assert_eq!(sm.sector_of_slot(1), 1);
        assert_eq!(sm.sector_of_slot(2), 0);
        assert_eq!(sm.free_slot(), Some(0));
        assert_eq!(sm.resident(), 0);
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let cfg = arch::gtx570();
        let mut sm = SmState::new(0, &cfg, 2, 1);
        sm.account_warps(0, 2); // 2 warps live from t=0
        sm.account_warps(100, -1); // one retires at t=100
        sm.account_warps(150, -1);
        assert_eq!(sm.occ_integral, 2 * 100 + 50); // 2 warps for 100 cy, then 1 for 50
        assert_eq!(sm.active_warps, 0);
    }

    #[test]
    fn next_event_prefers_earliest() {
        let cfg = arch::gtx570();
        let mut sm = SmState::new(0, &cfg, 2, 1);
        assert_eq!(sm.next_event(), None);
        sm.pending_dispatch.push(500);
        assert_eq!(sm.next_event(), Some(500));
        sm.warps[0] = Some(WarpState {
            cta_slot: 0,
            warp: 0,
            program: vec![crate::kernel::Op::Compute(1)],
            pc: 0,
            ready_at: 30,
            at_barrier: false,
        });
        assert_eq!(sm.next_event(), Some(30));
    }
}
