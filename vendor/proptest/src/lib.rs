//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the `proptest!` macro over `pat in
//! strategy` arguments, `prop_assert!`/`prop_assert_eq!`, integer-range and
//! `Just` strategies, tuples, `prop::sample::select`,
//! `prop::collection::vec`, and `Strategy::prop_flat_map`/`prop_map`.
//!
//! Differences from upstream: generation is deterministic per test name
//! (no `PROPTEST_CASES`/persistence machinery) and failing cases are
//! reported without shrinking. Each property runs [`test_runner::CASES`]
//! cases.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a new strategy from each generated value.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { base: self, f }
        }

        /// Maps generated values through `f`.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, S> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> S,
        S: Strategy,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, T> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod test_runner {
    //! The per-test deterministic RNG and case budget.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cases generated per property.
    pub const CASES: usize = 64;

    /// RNG handed to strategies (wraps the workspace `StdRng`).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Creates an RNG seeded deterministically from the test name, so
        /// every run and every machine generates the same cases.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }
    }
}

pub mod sample {
    //! Strategies sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.0.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates a `Vec` whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec length range must be nonempty");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs each property over [`test_runner::CASES`] generated cases.
///
/// Accepts the upstream `fn name(pat in strategy, ...) { body }` form;
/// the body may use `prop_assert!`/`prop_assert_eq!` (which abort just the
/// failing case with a descriptive panic) as well as plain `assert!`s.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

pub mod prelude {
    //! Everything a property-based test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Upstream-compatible `prop::` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5, "y was {y}");
        }

        #[test]
        fn flat_map_dependent_values((n, k) in (1u64..20).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(k < n);
        }

        #[test]
        fn select_and_vec(b in prop::sample::select(vec![4u32, 8]),
                          v in prop::collection::vec(0u64..10, 1..50)) {
            prop_assert!(b == 4 || b == 8);
            prop_assert_eq!(v.iter().filter(|&&x| x < 10).count(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x is small");
            }
        }
        inner();
    }
}
