//! The kernel abstraction: launch geometry plus lazily-generated per-warp
//! instruction streams.
//!
//! A kernel in this simulator is a *workload model*: instead of executing
//! real instructions it describes, per warp, the sequence of global-memory
//! accesses, compute delays and barriers the real kernel would perform.
//! Programs are generated **at dispatch time**, after the CTA has been
//! assigned to an SM, through the [`CtaContext`]. This is what lets the
//! agent-based clustering transform behave like real persistent CTAs: its
//! task list depends on the physical SM id (`%smid`) the hardware scheduler
//! happened to place it on.

use crate::dim::Dim3;
use crate::error::SimError;
use crate::program::ProgramBuilder;

/// Kernel launch configuration: grid/block geometry and per-CTA resource
/// footprint (mirrors `kernel<<<grid, block>>>` plus the occupancy-relevant
/// outputs of `nvcc --ptxas-options=-v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// CTAs in the grid.
    pub grid: Dim3,
    /// Threads in one CTA.
    pub block: Dim3,
    /// Registers used per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per CTA, in bytes.
    pub smem_per_cta: u32,
}

impl LaunchConfig {
    /// Creates a launch with the given geometry and a light default
    /// resource footprint (16 registers, no shared memory).
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            regs_per_thread: 16,
            smem_per_cta: 0,
        }
    }

    /// Sets the register footprint per thread.
    pub fn with_regs(mut self, regs_per_thread: u32) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    /// Sets the shared memory footprint per CTA.
    pub fn with_smem(mut self, smem_per_cta: u32) -> Self {
        self.smem_per_cta = smem_per_cta;
        self
    }

    /// Total CTAs in the grid.
    pub fn num_ctas(&self) -> u64 {
        self.grid.count()
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per CTA for the given warp width, rounded up.
    pub fn warps_per_cta(&self, warp_size: u32) -> u32 {
        self.threads_per_cta().div_ceil(warp_size)
    }

    /// Validates the launch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidLaunch`] for an empty grid or block, or a
    /// block exceeding 1024 threads (the CUDA hardware limit on all four
    /// evaluated architectures).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.grid.count() == 0 {
            return Err(SimError::InvalidLaunch("empty grid".into()));
        }
        if self.block.count() == 0 {
            return Err(SimError::InvalidLaunch("empty block".into()));
        }
        if self.block.count() > 1024 {
            return Err(SimError::InvalidLaunch(format!(
                "block of {} threads exceeds the 1024-thread hardware limit",
                self.block.count()
            )));
        }
        Ok(())
    }
}

/// Where a memory instruction is allowed to cache, mirroring the PTX cache
/// operators the paper uses in its transformed kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheOp {
    /// Default `ld.global.ca`: cache at L1 and L2.
    #[default]
    CacheAll,
    /// `ld.global.cg`: bypass L1, cache at L2 only (the paper's bypassing
    /// optimization for streaming accesses, §4.3-(II)).
    BypassL1,
    /// `prefetch.global.L1` / `__ldg` prefetch: starts the fill but does not
    /// block the warp (§4.3-(III)).
    PrefetchL1,
}

/// A tag identifying which logical array an access touches (e.g. matrix A
/// vs B vs C in MM). Transforms use tags to retarget specific arrays
/// (bypass the streaming one, prefetch the reused one); the locality
/// profiler uses them to attribute reuse per data structure.
pub type ArrayTag = u16;

/// Lane-address layout knowledge carried from an access's constructor to
/// the coalescer, so the hot emission path can skip re-deriving what the
/// kernel already proved by construction (see `coalesce_lines_into`).
///
/// A hint is a *sound* claim, not an optimization guess: `Contiguous`
/// promises every lane sits exactly `bytes_per_lane` after the previous,
/// `Sorted` promises strictly increasing lanes that are *not* contiguous,
/// and anything unprovable stays `Unknown` (classified dynamically, which
/// is always correct). Debug builds assert every hint against the address
/// vector on every coalesce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShapeHint {
    /// No constructor-level knowledge: the coalescer classifies the lanes.
    #[default]
    Unknown,
    /// Lane `l` is at `addrs[0] + l * bytes_per_lane` exactly.
    Contiguous,
    /// Addresses strictly increase but are not contiguous.
    Sorted,
}

/// One warp-wide global-memory access: up to 32 per-lane byte addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Logical array being accessed.
    pub tag: ArrayTag,
    /// Cache operator.
    pub cache_op: CacheOp,
    /// Per-active-lane byte addresses (1 ..= 32 entries).
    pub addrs: Vec<u64>,
    /// Bytes accessed per lane (4 for `float`/`int`, 8 for `double`).
    pub bytes_per_lane: u32,
    /// Constructor-proven lane layout (see [`ShapeHint`]). Sound only
    /// while `addrs` is never rewritten after construction — which no
    /// transform does; anything that did would have to reset this to
    /// [`ShapeHint::Unknown`].
    pub shape_hint: ShapeHint,
}

impl MemAccess {
    /// A fully-coalesced access: `warp_size` lanes reading consecutive
    /// `bytes_per_lane`-sized words starting at `base`.
    pub fn coalesced(tag: ArrayTag, base: u64, lanes: u32, bytes_per_lane: u32) -> Self {
        MemAccess {
            tag,
            cache_op: CacheOp::CacheAll,
            addrs: (0..lanes)
                .map(|l| base + (l as u64) * bytes_per_lane as u64)
                .collect(),
            bytes_per_lane,
            shape_hint: ShapeHint::Contiguous,
        }
    }

    /// A strided access: lane `l` touches `base + l * stride`.
    pub fn strided(tag: ArrayTag, base: u64, lanes: u32, stride: u64, bytes_per_lane: u32) -> Self {
        // `base + l*stride` is contiguous exactly when the stride equals
        // the lane width, strictly increasing whenever the stride is
        // positive; a zero stride (every lane on one address) is neither.
        let shape_hint = if stride == bytes_per_lane as u64 || lanes <= 1 {
            ShapeHint::Contiguous
        } else if stride >= 1 {
            ShapeHint::Sorted
        } else {
            ShapeHint::Unknown
        };
        MemAccess {
            tag,
            cache_op: CacheOp::CacheAll,
            addrs: (0..lanes).map(|l| base + l as u64 * stride).collect(),
            bytes_per_lane,
            shape_hint,
        }
    }

    /// A single-lane access (e.g. the microbenchmark's primary thread).
    pub fn scalar(tag: ArrayTag, addr: u64, bytes: u32) -> Self {
        MemAccess {
            tag,
            cache_op: CacheOp::CacheAll,
            addrs: vec![addr],
            bytes_per_lane: bytes,
            // A single lane is vacuously contiguous.
            shape_hint: ShapeHint::Contiguous,
        }
    }

    /// An access with explicit per-lane addresses (irregular kernels).
    pub fn gather(tag: ArrayTag, addrs: Vec<u64>, bytes_per_lane: u32) -> Self {
        MemAccess {
            tag,
            cache_op: CacheOp::CacheAll,
            addrs,
            bytes_per_lane,
            shape_hint: ShapeHint::Unknown,
        }
    }

    /// Sets the cache operator (builder-style).
    pub fn with_cache_op(mut self, op: CacheOp) -> Self {
        self.cache_op = op;
        self
    }
}

/// One element of a warp's instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Global-memory read; the warp blocks until the slowest transaction
    /// returns.
    Load(MemAccess),
    /// Global-memory write; retired through the store path without
    /// blocking the warp (beyond issue).
    Store(MemAccess),
    /// Serializing read-modify-write on global memory (used by the agent
    /// transform's id bidding on Maxwell/Pascal).
    Atomic(MemAccess),
    /// `delay` cycles of arithmetic before the next op can issue.
    Compute(u32),
    /// CTA-wide `__syncthreads()`.
    Barrier,
}

impl Op {
    /// The memory access carried by this op, if any.
    pub fn access(&self) -> Option<&MemAccess> {
        match self {
            Op::Load(a) | Op::Store(a) | Op::Atomic(a) => Some(a),
            Op::Compute(_) | Op::Barrier => None,
        }
    }

    /// Mutable access to the memory access carried by this op, if any.
    pub fn access_mut(&mut self) -> Option<&mut MemAccess> {
        match self {
            Op::Load(a) | Op::Store(a) | Op::Atomic(a) => Some(a),
            Op::Compute(_) | Op::Barrier => None,
        }
    }

    /// Whether this op is a CTA barrier.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Op::Barrier)
    }
}

/// A warp's full instruction stream.
pub type Program = Vec<Op>;

/// Dispatch-time context handed to [`KernelSpec::warp_program`].
///
/// Fields marked *(hardware)* are only known once the (real or simulated)
/// GigaThread engine has placed the CTA; they model the special registers
/// and runtime state the paper's agent transform reads (`%smid`,
/// `%warpid`, the global atomic ticket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaContext {
    /// Linear CTA id within the launched grid (`blockIdx`, row-major).
    pub cta: u64,
    /// *(hardware)* Physical SM the CTA was dispatched to (`%smid`).
    pub sm_id: usize,
    /// *(hardware)* Hardware CTA slot occupied on that SM. Static binding
    /// architectures (Fermi/Kepler) let an agent derive its id from this.
    pub slot: u32,
    /// *(hardware)* Zero-based dispatch order of this CTA **on its SM**:
    /// the value a global `atomicAdd(&counter[smid], 1)` ticket would
    /// observe on dynamic-binding architectures (Maxwell/Pascal).
    pub arrival: u64,
    /// Number of SMs on the device (needed by clustering arithmetic).
    pub num_sms: usize,
}

/// A simulatable GPU kernel: geometry plus per-warp programs.
///
/// Programs may depend on dispatch-time hardware state via [`CtaContext`];
/// baseline kernels typically use only `ctx.cta`.
pub trait KernelSpec {
    /// Human-readable kernel name (used in reports).
    fn name(&self) -> String;

    /// Launch geometry and per-CTA resource footprint.
    fn launch(&self) -> LaunchConfig;

    /// Instruction stream of warp `warp` (0-based within the CTA) of the
    /// CTA described by `ctx`.
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program;

    /// Writes the instruction stream of warp `warp` into `out`, reusing
    /// its allocation. The simulation engine dispatches every warp
    /// through this method with recycled buffers, so kernels generating
    /// many short programs can avoid one heap allocation per warp.
    ///
    /// The default clears `out` and delegates to
    /// [`warp_program`](Self::warp_program); implementors only need to
    /// override it when they can build the program in place.
    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        *out = self.warp_program(ctx, warp);
    }

    /// The warp's whole program as a shared, immutable slice, when the
    /// kernel can serve one — e.g. from a cross-variant program cache.
    /// The engine prefers this over generation (zero-copy dispatch), and
    /// wrapping transforms use it to replay inner programs instead of
    /// regenerating them.
    ///
    /// The returned ops must be identical to what
    /// [`warp_program`](Self::warp_program) would generate for the same
    /// `(ctx, warp)`. The default is `None`: generate every time.
    fn warp_program_arc(&self, ctx: &CtaContext, warp: u32) -> Option<std::sync::Arc<[Op]>> {
        let _ = (ctx, warp);
        None
    }

    /// Builds the warp's program into `out`, possibly referencing shared
    /// cached segments (see [`ProgramBuilder`]). This is the engine's
    /// dispatch path; the default delegates to
    /// [`warp_program_into`](Self::warp_program_into) through the
    /// builder's recycled inline buffer, so plain kernels behave exactly
    /// as before. Transforms that concatenate inner programs override it
    /// to splice in [`warp_program_arc`](Self::warp_program_arc) slices.
    fn warp_program_build(&self, ctx: &CtaContext, warp: u32, out: &mut ProgramBuilder) {
        if let Some(ops) = self.warp_program_arc(ctx, warp) {
            out.push_shared(&ops);
        } else {
            self.warp_program_into(ctx, warp, out.inline_ops());
        }
    }
}

impl<K: KernelSpec + ?Sized> KernelSpec for &K {
    fn name(&self) -> String {
        (**self).name()
    }
    fn launch(&self) -> LaunchConfig {
        (**self).launch()
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        (**self).warp_program(ctx, warp)
    }
    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        (**self).warp_program_into(ctx, warp, out)
    }
    fn warp_program_arc(&self, ctx: &CtaContext, warp: u32) -> Option<std::sync::Arc<[Op]>> {
        (**self).warp_program_arc(ctx, warp)
    }
    fn warp_program_build(&self, ctx: &CtaContext, warp: u32, out: &mut ProgramBuilder) {
        (**self).warp_program_build(ctx, warp, out)
    }
}

impl<K: KernelSpec + ?Sized> KernelSpec for Box<K> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn launch(&self) -> LaunchConfig {
        (**self).launch()
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        (**self).warp_program(ctx, warp)
    }
    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        (**self).warp_program_into(ctx, warp, out)
    }
    fn warp_program_arc(&self, ctx: &CtaContext, warp: u32) -> Option<std::sync::Arc<[Op]>> {
        (**self).warp_program_arc(ctx, warp)
    }
    fn warp_program_build(&self, ctx: &CtaContext, warp: u32, out: &mut ProgramBuilder) {
        (**self).warp_program_build(ctx, warp, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_warp_math() {
        let l = LaunchConfig::new(Dim3::plane(4, 4), Dim3::new(32, 8, 1));
        assert_eq!(l.num_ctas(), 16);
        assert_eq!(l.threads_per_cta(), 256);
        assert_eq!(l.warps_per_cta(32), 8);
        // Partial warps round up.
        let l = LaunchConfig::new(1u32, 33u32);
        assert_eq!(l.warps_per_cta(32), 2);
    }

    #[test]
    fn launch_validation() {
        assert!(LaunchConfig::new(1u32, 32u32).validate().is_ok());
        assert!(LaunchConfig::new(Dim3::new(0, 1, 1), 32u32)
            .validate()
            .is_err());
        assert!(LaunchConfig::new(1u32, Dim3::new(0, 0, 0))
            .validate()
            .is_err());
        assert!(LaunchConfig::new(1u32, Dim3::new(2048, 1, 1))
            .validate()
            .is_err());
    }

    #[test]
    fn coalesced_access_addresses() {
        let a = MemAccess::coalesced(0, 1000, 4, 4);
        assert_eq!(a.addrs, vec![1000, 1004, 1008, 1012]);
    }

    #[test]
    fn strided_access_addresses() {
        let a = MemAccess::strided(1, 0, 3, 128, 4);
        assert_eq!(a.addrs, vec![0, 128, 256]);
    }

    #[test]
    fn op_access_projection() {
        let mut op = Op::Load(MemAccess::scalar(0, 64, 4));
        assert!(op.access().is_some());
        op.access_mut().unwrap().cache_op = CacheOp::BypassL1;
        assert_eq!(op.access().unwrap().cache_op, CacheOp::BypassL1);
        assert!(Op::Barrier.access().is_none());
        assert!(Op::Compute(5).access().is_none());
        assert!(Op::Barrier.is_barrier());
    }
}
