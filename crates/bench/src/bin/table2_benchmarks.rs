//! Regenerates the paper's Table 2: benchmark characteristics.

fn main() {
    println!("Table 2: Benchmark Characteristics (paper Table 2)");
    println!("CTAs/SM computed by the occupancy model per architecture");
    println!("(F/K/M/P = Fermi/Kepler/Maxwell/Pascal)");
    println!();
    print!("{}", cluster_bench::tables::table2());
}
