//! Redirection-based clustering (paper §4.2.4-(1), Listing 4, Figure 9).
//!
//! The cheapest CTA-Clustering scheme: the new kernel has exactly the
//! same grid as the original, and each CTA `u` *redirects* itself to
//! execute original CTA `v = f⁻¹(g(u))` using RR-based binding. No
//! hardware state is consulted, so the transform costs three integer
//! operations — but it only clusters correctly when the GigaThread engine
//! really dispatches round-robin, which real hardware does not
//! (§3.1-(3)). The paper (and our Figure 12 reproduction) shows it
//! helping some applications while being generally inferior to
//! agent-based clustering.

use crate::bind::rr_binding;
use crate::partition::Partition;
use gpu_sim::{CtaContext, KernelSpec, LaunchConfig, Program};

/// A kernel transformed by redirection-based clustering.
///
/// # Examples
///
/// ```
/// use cta_clustering::{Partition, RedirectionKernel};
/// use gpu_kernels::MatrixMul;
/// use gpu_sim::{arch, KernelSpec, Simulation};
///
/// let mm = MatrixMul::new(4, 4, 2);
/// let partition = Partition::y(mm.launch().grid, 15)?;
/// let rd = RedirectionKernel::new(mm, partition);
/// let stats = Simulation::new(arch::gtx570(), &rd).run()?;
/// assert_eq!(stats.placements.len(), 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RedirectionKernel<K> {
    inner: K,
    partition: Partition,
}

impl<K: KernelSpec> RedirectionKernel<K> {
    /// Wraps `inner` with the redirection transform under `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition's grid does not match the kernel's grid.
    pub fn new(inner: K, partition: Partition) -> Self {
        assert_eq!(
            partition.grid(),
            inner.launch().grid,
            "partition must cover the kernel grid"
        );
        RedirectionKernel { inner, partition }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consumes the wrapper, returning the original kernel.
    pub fn into_inner(self) -> K {
        self.inner
    }

    /// The redirection target of new-kernel CTA `u` (exposed for tests
    /// and analysis).
    pub fn redirect(&self, u: u64) -> u64 {
        let (w, i) = rr_binding(u, self.partition.num_clusters());
        self.partition.invert(w, i)
    }
}

impl<K: KernelSpec> KernelSpec for RedirectionKernel<K> {
    fn name(&self) -> String {
        format!("RD[{}]", self.inner.name())
    }

    fn launch(&self) -> LaunchConfig {
        // Identical geometry: |N| == |O| (1-to-1 mapping).
        self.inner.launch()
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let v = self.redirect(ctx.cta);
        let redirected = CtaContext { cta: v, ..*ctx };
        self.inner.warp_program(&redirected, warp)
    }

    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        let v = self.redirect(ctx.cta);
        let redirected = CtaContext { cta: v, ..*ctx };
        self.inner.warp_program_into(&redirected, warp, out);
    }

    fn warp_program_arc(
        &self,
        ctx: &CtaContext,
        warp: u32,
    ) -> Option<std::sync::Arc<[gpu_sim::Op]>> {
        // The transform is a pure CTA-id remap, so a cached program for
        // the redirected CTA replays zero-copy.
        let v = self.redirect(ctx.cta);
        let redirected = CtaContext { cta: v, ..*ctx };
        self.inner.warp_program_arc(&redirected, warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use gpu_sim::{Dim3, MemAccess, Op};

    /// Identity kernel that records its CTA id in the load address.
    #[derive(Debug, Clone)]
    struct Probe {
        grid: Dim3,
    }

    impl KernelSpec for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(self.grid, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(0, ctx.cta * 4, 4))]
        }
    }

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 2,
        }
    }

    #[test]
    fn redirection_is_a_permutation() {
        let probe = Probe {
            grid: Dim3::plane(3, 2),
        };
        let p = Partition::y(probe.launch().grid, 2).unwrap();
        let rd = RedirectionKernel::new(probe, p);
        let mut targets: Vec<u64> = (0..6).map(|u| rd.redirect(u)).collect();
        targets.sort_unstable();
        assert_eq!(targets, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn under_strict_rr_same_cluster_lands_on_same_sm() {
        // Under u % M placement, cluster members are u = i, i+M, i+2M...
        // which all redirect into cluster i's task list in order.
        let probe = Probe {
            grid: Dim3::plane(3, 2),
        };
        let p = Partition::y(probe.launch().grid, 2).unwrap();
        let rd = RedirectionKernel::new(probe, p);
        // Cluster 0 tasks are v=0,1,2; they are executed by u=0,2,4.
        assert_eq!(rd.redirect(0), 0);
        assert_eq!(rd.redirect(2), 1);
        assert_eq!(rd.redirect(4), 2);
        // Cluster 1 tasks v=3,4,5 by u=1,3,5.
        assert_eq!(rd.redirect(1), 3);
        assert_eq!(rd.redirect(3), 4);
        assert_eq!(rd.redirect(5), 5);
    }

    #[test]
    fn program_is_original_ctas_program() {
        let probe = Probe {
            grid: Dim3::plane(3, 2),
        };
        let p = Partition::y(probe.launch().grid, 2).unwrap();
        let rd = RedirectionKernel::new(probe.clone(), p);
        let prog = rd.warp_program(&ctx(2), 0);
        // u=2 redirects to v=1: the address must encode v, not u.
        assert_eq!(prog, probe.warp_program(&ctx(1), 0));
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn grid_mismatch_panics() {
        let probe = Probe {
            grid: Dim3::plane(3, 2),
        };
        let p = Partition::y(Dim3::plane(4, 4), 2).unwrap();
        let _ = RedirectionKernel::new(probe, p);
    }
}
