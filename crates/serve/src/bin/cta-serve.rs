//! `cta-serve`: the persistent clustering-plan server.
//!
//! ```text
//! cargo run --release -p cta-serve -- [OPTIONS]
//!
//!   (default)          serve line-delimited JSON requests on stdin,
//!                      responses on stdout, until EOF or a
//!                      {"op":"shutdown"} control line
//!   --tcp ADDR         listen on ADDR (e.g. 127.0.0.1:7878) instead
//!   --threads N        worker threads (default: CLUSTER_BENCH_THREADS
//!                      or the machine's parallelism)
//!   --queue N          in-flight cap before overload shedding
//!                      (default 1024; 0 disables shedding)
//!   --deadline-ms N    default per-request deadline
//!   --bench            run the serve-bench/v1 throughput benchmark
//!   --requests N       with --bench: mix size (default 20000)
//!   --out FILE         with --bench: write the artifact to FILE
//!                      (default: print to stdout)
//!   --check FILE       validate a committed serve-bench/v1 artifact
//!                      and exit (0 valid, 1 invalid)
//! ```
//!
//! With `CLUSTER_OBS=1` the server exports its counters and histograms
//! through `cta-obs` on exit (JSONL + Chrome trace next to the binary's
//! working directory), ready for `obs-report --check`.

use cta_serve::{bench, Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

const BIN: &str = "cta-serve";

struct Options {
    tcp: Option<String>,
    threads: usize,
    queue: usize,
    deadline_ms: Option<u64>,
    bench: bool,
    requests: usize,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        tcp: None,
        threads: 0,
        queue: 1024,
        deadline_ms: None,
        bench: false,
        requests: 20_000,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tcp" => opts.tcp = Some(args.next().ok_or("--tcp needs an address")?),
            "--threads" => {
                opts.threads = args
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads needs a number")?;
            }
            "--queue" => {
                opts.queue = args
                    .next()
                    .ok_or("--queue needs a capacity")?
                    .parse()
                    .map_err(|_| "--queue needs a number")?;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    args.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a number")?,
                );
            }
            "--bench" => opts.bench = true,
            "--requests" => {
                opts.requests = args
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|_| "--requests needs a number")?;
            }
            "--out" => opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a file")?)),
            "--check" => {
                opts.check = Some(PathBuf::from(args.next().ok_or("--check needs a file")?));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{BIN}: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{BIN}: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match bench::check_report(&text) {
            Ok(()) => {
                println!(
                    "{BIN}: {} is a valid serve-bench/v1 artifact",
                    path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{BIN}: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    cluster_bench::par::tune_allocator();

    if opts.bench {
        let report = bench::run(&bench::BenchOptions {
            requests: opts.requests,
            threads: opts.threads,
        });
        let rendered = bench::render_report(&report);
        eprintln!(
            "{BIN}: {} requests, {} distinct, {} threads: {:.0} req/s, hit rate {:.3}",
            report.requests,
            report.distinct,
            report.threads,
            report.req_per_s,
            report.cache.hit_rate()
        );
        match &opts.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &rendered) {
                    eprintln!("{BIN}: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("{BIN}: artifact written to {}", path.display());
            }
            None => print!("{rendered}"),
        }
        cta_obs::export_global(BIN);
        return ExitCode::SUCCESS;
    }

    let server = Server::new(ServerConfig {
        threads: opts.threads,
        queue_cap: opts.queue,
        retry_after_ms: 25,
        default_deadline_ms: opts.deadline_ms,
    });

    let result = match &opts.tcp {
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{BIN}: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "{BIN}: listening on {addr} with {} workers",
                server.threads()
            );
            server.serve_tcp(listener).map(|()| None)
        }
        None => {
            let stdin = std::io::stdin();
            server
                .serve_lines(BufReader::new(stdin.lock()), std::io::stdout())
                .map(Some)
        }
    };

    match result {
        Ok(summary) => {
            if let Some(s) = summary {
                let stats = server.cache_stats();
                eprintln!(
                    "{BIN}: {} requests, {} responses, {} shed; cache {}/{} hits ({:.3})",
                    s.requests,
                    s.responses,
                    s.shed,
                    stats.hits,
                    stats.lookups,
                    stats.hit_rate()
                );
            }
            cta_obs::export_global(BIN);
            let _ = std::io::stderr().flush();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{BIN}: {e}");
            ExitCode::FAILURE
        }
    }
}
