//! Criterion microbenchmarks of the cache model: hit/miss paths, the
//! write-evict policy, and set hashing — the structures every simulated
//! kernel spends its time in.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_sim::{Cache, CacheConfig, WritePolicy};

fn fermi_l1() -> CacheConfig {
    CacheConfig {
        size_bytes: 48 * 1024,
        line_bytes: 128,
        associativity: 4,
        mshr_entries: 32,
        write_policy: WritePolicy::WriteEvict,
        sector_bytes: 0,
        aggregated_tags: false,
        index_fn: gpu_sim::IndexFn::Hashed,
    }
}

fn bench_hit_path(c: &mut Criterion) {
    let mut cache = Cache::new(fermi_l1());
    // Warm a small working set.
    for i in 0..64u64 {
        cache.read(i * 128, 0);
        cache.fill(i * 128, 0);
    }
    c.bench_function("l1_hit", |b| {
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            cache.read(black_box((t % 64) * 128), t)
        })
    });
}

fn bench_miss_path(c: &mut Criterion) {
    c.bench_function("l1_streaming_miss", |b| {
        let mut cache = Cache::new(fermi_l1());
        let mut addr = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            addr += 128;
            t += 1;
            let out = cache.read(black_box(addr), t);
            cache.fill(addr, t + 400);
            out
        })
    });
}

fn bench_write_evict(c: &mut Criterion) {
    let mut cache = Cache::new(fermi_l1());
    for i in 0..64u64 {
        cache.read(i * 128, 0);
        cache.fill(i * 128, 0);
    }
    c.bench_function("l1_write_evict", |b| {
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            cache.write(black_box((t % 64) * 128), t)
        })
    });
}

fn bench_set_hash(c: &mut Criterion) {
    let cache = Cache::new(fermi_l1());
    c.bench_function("set_index_hash", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a += 1024;
            cache.set_index(black_box(a))
        })
    });
}

criterion_group!(
    benches,
    bench_hit_path,
    bench_miss_path,
    bench_write_evict,
    bench_set_hash
);
criterion_main!(benches);
