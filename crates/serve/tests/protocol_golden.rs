//! Protocol golden test: the committed request fixtures must produce
//! byte-exact committed responses, at every worker count.
//!
//! The fixture matrix covers the full protocol surface: valid named and
//! structural requests, a formatting twin (same digest, different id
//! and JSON shape), unknown fields, malformed JSON, a zero-CTA grid, an
//! unknown app, an unknown GPU, an oversize payload, an invalid mode
//! combination, and an ambiguous app+kernel request.
//!
//! Any intentional protocol change must regenerate the golden in the
//! same commit: `UPDATE_GOLDEN=1 cargo test -p cta-serve --test
//! protocol_golden`.

use cta_serve::{Server, ServerConfig};

const REQUESTS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/requests.jsonl");
const RESPONSES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/responses.jsonl");

fn fixture_requests() -> Vec<String> {
    std::fs::read_to_string(REQUESTS)
        .expect("committed request fixtures present")
        .lines()
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect()
}

fn server(threads: usize) -> Server {
    Server::new(ServerConfig {
        threads,
        queue_cap: 0,
        ..ServerConfig::default()
    })
}

#[test]
fn fixtures_render_the_committed_golden_at_every_worker_count() {
    let lines = fixture_requests();
    assert!(lines.len() >= 14, "fixture matrix shrank");

    let baseline = server(1).handle_batch(&lines);
    for threads in [2, 8] {
        let parallel = server(threads).handle_batch(&lines);
        assert_eq!(
            baseline, parallel,
            "responses must be byte-identical at {threads} workers"
        );
    }

    let rendered: String = baseline.iter().map(|l| format!("{l}\n")).collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(RESPONSES, &rendered).expect("rewrite golden");
        return;
    }
    let golden = std::fs::read_to_string(RESPONSES).expect(
        "golden responses missing; regenerate with UPDATE_GOLDEN=1 \
         cargo test -p cta-serve --test protocol_golden",
    );
    assert_eq!(
        rendered, golden,
        "protocol output drifted from tests/golden/responses.jsonl; if \
         the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_covers_the_error_matrix() {
    let golden = std::fs::read_to_string(RESPONSES).expect("golden responses present");
    let lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        lines.len(),
        fixture_requests().len(),
        "one response line per request line"
    );
    for code in [
        "\"error\":\"parse\"",
        "\"error\":\"bad-kernel\"",
        "\"error\":\"unknown-gpu\"",
        "\"error\":\"unknown-app\"",
        "\"error\":\"oversize\"",
        "\"error\":\"bad-request\"",
    ] {
        assert!(
            golden.contains(code),
            "golden must cover the {code} error path"
        );
    }
    // The formatting twin g2 answers with g1's plan under its own id.
    let g1 = lines[0];
    let g2 = lines[1];
    assert!(g1.contains("\"id\":\"g1\"") && g2.contains("\"id\":\"g2\""));
    assert_eq!(
        g1.replace("\"id\":\"g1\"", "\"id\":\"g2\""),
        g2.to_string(),
        "digest twins share one plan body"
    );
    // Same for the parameter-sweep twin g14 of the structural g3.
    let g3 = lines[2];
    let g14 = lines[13];
    assert_eq!(
        g3.replace("\"id\":\"g3\"", "\"id\":\"g14\""),
        g14.to_string(),
        "structural sweep twins share one plan body"
    );
    // Every success line carries the full plan/v1 field set.
    for line in &lines {
        assert!(line.starts_with("{\"proto\":\"plan/v1\",\"id\":\""));
        if !line.contains("\"error\"") {
            for field in [
                "\"category\"",
                "\"exploit\"",
                "\"axis\"",
                "\"active_agents\"",
                "\"max_agents\"",
                "\"bypass\"",
                "\"prefetch\"",
                "\"hit_lo\"",
                "\"hit_hi\"",
            ] {
                assert!(line.contains(field), "{line} lacks {field}");
            }
        }
    }
}

#[test]
fn stream_session_matches_the_batch_golden() {
    let lines = fixture_requests();
    let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let mut out = Vec::new();
    let s = server(3);
    let summary = s
        .serve_lines(input.as_bytes(), &mut out)
        .expect("stream session");
    assert_eq!(summary.requests, lines.len() as u64);
    assert_eq!(summary.responses, lines.len() as u64);
    let expect: String = server(1)
        .handle_batch(&lines)
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(String::from_utf8(out).expect("utf8"), expect);
}
