//! IMD — non-local-means image denoising (CUDA SDK `imageDenoising`).
//!
//! Each 8x8-pixel CTA scans a search window that extends several pixels
//! past its tile on every side. The horizontal halo overlaps the windows
//! of same-row neighbour CTAs, giving algorithm-related inter-CTA reuse
//! clustered by Y-partitioning; the register-heavy kernel (Table 2: up to
//! 63 regs/thread) also makes it occupancy-sensitive.

use crate::common::read_words;
use crate::common::write_words;
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "IMD",
    full_name: "imageDenoising",
    description: "NLM method for image denoising",
    category: PaperCategory::Algorithm,
    warps_per_cta: 2,
    partition: PartitionHint::Y,
    opt_agents: [8, 16, 14, 16],
    regs: [63, 61, 49, 55],
    smem: 0,
    source: "CUDA SDK",
};

const TAG_IMAGE: u16 = 0;
const TAG_OUTPUT: u16 = 1;

/// The NLM denoising workload model.
#[derive(Debug, Clone)]
pub struct ImageDenoise {
    /// CTA tiles along X (each 8 pixels wide).
    pub grid_x: u32,
    /// CTA tiles along Y (each 8 pixels tall).
    pub grid_y: u32,
    /// Search-window apron in pixels on each side.
    pub apron: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl ImageDenoise {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        ImageDenoise {
            grid_x: 24,
            grid_y: 96,
            apron: 6,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, apron: u32) -> Self {
        ImageDenoise {
            grid_x,
            grid_y,
            apron,
            regs: INFO.regs[0],
        }
    }

    fn image_row_words(&self) -> u64 {
        self.grid_x as u64 * 8 + 2 * self.apron as u64
    }
}

impl KernelSpec for ImageDenoise {
    fn name(&self) -> String {
        format!("IMD({}x{},a{})", self.grid_x, self.grid_y, self.apron)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), Dim3::plane(8, 8))
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let window_rows = 8 + 2 * self.apron as u64;
        let window_cols = (8 + 2 * self.apron as u64).min(32);
        let mut prog = Program::new();
        // The two warps split the window rows between them.
        let half = window_rows.div_ceil(2);
        let r0 = warp as u64 * half;
        let r1 = (r0 + half).min(window_rows);
        for r in r0..r1 {
            let row = by as u64 * 8 + r; // apron folded into the base offset
            let col = bx as u64 * 8;
            prog.push(read_words(
                TAG_IMAGE,
                row * self.image_row_words() + col,
                window_cols as u32,
            ));
            prog.push(Op::Compute(10));
        }
        prog.push(Op::Barrier);
        // Each warp writes half the 8x8 output tile (4 rows of 8).
        for r in 0..4u64 {
            let row = by as u64 * 8 + warp as u64 * 4 + r;
            prog.push(write_words(
                TAG_OUTPUT,
                row * self.grid_x as u64 * 8 + bx as u64 * 8,
                8,
            ));
        }
        prog
    }
}

impl Workload for ImageDenoise {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn occupancy_is_register_sensitive() {
        // 63 regs x 64 threads = 4032 regs/CTA: Fermi fits 8 (32K regs).
        let cfg = arch::gtx570();
        let imd = ImageDenoise::for_arch(ArchGen::Fermi);
        let occ = gpu_sim::occupancy(&cfg, &imd.launch()).unwrap();
        assert_eq!(occ.ctas_per_sm, 8);
    }

    #[test]
    fn horizontal_neighbours_share_window_words() {
        let imd = ImageDenoise::new(4, 4, 6);
        let words = |cta| {
            imd.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_IMAGE)
                .flat_map(|a| a.addrs.clone())
                .collect::<std::collections::BTreeSet<_>>()
        };
        // CTA 0 (bx=0) and CTA 1 (bx=1) share by=0: column windows overlap.
        let shared: Vec<_> = words(0).intersection(&words(1)).cloned().collect();
        assert!(!shared.is_empty(), "apron must overlap row neighbours");
    }

    #[test]
    fn warps_cover_disjoint_window_rows() {
        let imd = ImageDenoise::new(2, 2, 4);
        let rows = |w| {
            imd.warp_program(&ctx(0), w)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_IMAGE)
                .map(|a| a.addrs[0] / 4 / imd.image_row_words())
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(rows(0).intersection(&rows(1)).count() == 0);
        assert_eq!(rows(0).len() + rows(1).len(), (8 + 2 * 4) as usize);
    }
}
