//! Suite constructors: the paper's benchmark sets at evaluation scale.

use crate::extras;
use crate::info::Workload;
use crate::{
    Atax, BTree, Backprop, Bfs, Bicg, BlackScholes, Conv3d, Dct, Dxtc, Histogram, Hotspot,
    ImageDenoise, Kmeans, MatrixMul, MonteCarlo, Mvt, NeedlemanWunsch, NeuralNet, Sad, Sgemm,
    Syr2k, Syrk,
};
use gpu_sim::ArchGen;

/// The 23 Table 2 applications in the paper's row order, configured for
/// `arch` (per-architecture register footprints).
pub fn table2_suite(arch: ArchGen) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Kmeans::for_arch(arch)),
        Box::new(MatrixMul::for_arch(arch)),
        Box::new(NeuralNet::for_arch(arch)),
        Box::new(ImageDenoise::for_arch(arch)),
        Box::new(Backprop::for_arch(arch)),
        Box::new(Dct::for_arch(arch)),
        Box::new(Sgemm::for_arch(arch)),
        Box::new(Hotspot::for_arch(arch)),
        Box::new(Syrk::for_arch(arch)),
        Box::new(Syr2k::for_arch(arch)),
        Box::new(Atax::for_arch(arch)),
        Box::new(Mvt::for_arch(arch)),
        Box::new(Nbody::for_arch(arch)),
        Box::new(Conv3d::for_arch(arch)),
        Box::new(Bicg::for_arch(arch)),
        Box::new(Histogram::for_arch(arch)),
        Box::new(BTree::for_arch(arch)),
        Box::new(NeedlemanWunsch::for_arch(arch)),
        Box::new(Bfs::for_arch(arch)),
        Box::new(MonteCarlo::for_arch(arch)),
        Box::new(Dxtc::for_arch(arch)),
        Box::new(Sad::for_arch(arch)),
        Box::new(BlackScholes::for_arch(arch)),
    ]
}

use crate::Nbody;

/// The 33 applications of Figure 3, in the paper's bar order
/// (MM NN BS 3CV BC HST BTR NW BFS SAD HS ATX BKP SGM MVT COR LUD FWT PFD
/// STD MRI SRD LIB SR2 NE SP BNO SLA FTD LPS GES HRT KMN).
pub fn fig3_suite(arch: ArchGen) -> Vec<Box<dyn Workload>> {
    let mut suite: Vec<Box<dyn Workload>> = vec![
        Box::new(MatrixMul::for_arch(arch)),
        Box::new(NeuralNet::for_arch(arch)),
        Box::new(BlackScholes::for_arch(arch)),
        Box::new(Conv3d::for_arch(arch)),
        Box::new(Bicg::for_arch(arch)),
        Box::new(Histogram::for_arch(arch)),
        Box::new(BTree::for_arch(arch)),
        Box::new(NeedlemanWunsch::for_arch(arch)),
        Box::new(Bfs::for_arch(arch)),
        Box::new(Sad::for_arch(arch)),
        Box::new(Hotspot::for_arch(arch)),
        Box::new(Atax::for_arch(arch)),
        Box::new(Backprop::for_arch(arch)),
        Box::new(Sgemm::for_arch(arch)),
        Box::new(Mvt::for_arch(arch)),
    ];
    for e in extras::all_extras() {
        suite.push(Box::new(e));
    }
    suite.push(Box::new(Kmeans::for_arch(arch)));
    suite
}

/// Looks up a Table 2 workload by its paper abbreviation
/// (case-insensitive). Returns `None` for unknown abbreviations.
pub fn by_abbr(abbr: &str, arch: ArchGen) -> Option<Box<dyn Workload>> {
    let target = abbr.to_ascii_uppercase();
    table2_suite(arch)
        .into_iter()
        .find(|w| w.info().abbr == target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::PaperCategory;

    #[test]
    fn table2_has_23_rows_in_order() {
        let suite = table2_suite(ArchGen::Fermi);
        assert_eq!(suite.len(), 23);
        let abbrs: Vec<_> = suite.iter().map(|w| w.info().abbr).collect();
        assert_eq!(
            abbrs,
            vec![
                "KMN", "MM", "NN", "IMD", "BKP", "DCT", "SGM", "HS", "SYK", "S2K", "ATX", "MVT",
                "NBO", "3CV", "BC", "HST", "BTR", "NW", "BFS", "MON", "DXT", "SAD", "BS"
            ]
        );
    }

    #[test]
    fn category_counts_match_paper() {
        let suite = table2_suite(ArchGen::Kepler);
        let count = |c: PaperCategory| suite.iter().filter(|w| w.info().category == c).count();
        assert_eq!(count(PaperCategory::Algorithm), 8);
        assert_eq!(count(PaperCategory::CacheLine), 7);
        assert_eq!(count(PaperCategory::Data), 2);
        assert_eq!(count(PaperCategory::Write), 1);
        assert_eq!(count(PaperCategory::DataWrite), 1);
        assert_eq!(count(PaperCategory::Streaming), 4);
    }

    #[test]
    fn fig3_has_33_bars_ending_with_kmn() {
        let suite = fig3_suite(ArchGen::Maxwell);
        assert_eq!(suite.len(), 33);
        assert_eq!(suite.first().unwrap().info().abbr, "MM");
        assert_eq!(suite.last().unwrap().info().abbr, "KMN");
    }

    #[test]
    fn by_abbr_finds_known_and_rejects_unknown() {
        assert!(by_abbr("mm", ArchGen::Fermi).is_some());
        assert!(by_abbr("SYK", ArchGen::Pascal).is_some());
        assert!(by_abbr("NOPE", ArchGen::Fermi).is_none());
    }

    #[test]
    fn all_launches_validate() {
        for w in table2_suite(ArchGen::Pascal) {
            w.launch()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.info().abbr));
        }
    }
}
