//! The `serve-bench/v1` throughput benchmark and its committed artifact.
//!
//! Drives a duplicate-heavy request mix — every Table 2 app crossed
//! with the four Table 1 presets, plus a band of structural kernels —
//! through [`Server::handle_batch`] and reports sustained requests per
//! second, cache traffic, and latency quantiles from the log2 latency
//! histogram.
//!
//! The artifact committed at `BENCH_serve.json` records a measured run
//! (`cta-serve --bench --out BENCH_serve.json`); `--check` re-validates
//! the committed file's schema and invariants **without re-measuring**,
//! so CI stays deterministic on slow machines:
//!
//! * `cache.hits + cache.misses == cache.lookups` and
//!   `cache.misses == distinct` (the cache's conservation laws);
//! * `hit_rate >= 0.85` on the duplicate-heavy mix;
//! * `req_per_s >= 10000` (the throughput the server must sustain);
//! * latency quantiles are present and monotone.

use crate::server::{Server, ServerConfig};
use cta_obs::Hist;
use std::time::Instant;

/// Minimum sustained throughput the committed artifact must show.
pub const MIN_REQ_PER_S: f64 = 10_000.0;

/// Minimum content-cache hit rate on the duplicate-heavy mix.
pub const MIN_HIT_RATE: f64 = 0.85;

/// Options of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Total requests in the mix.
    pub requests: usize,
    /// Worker threads (`0` = the `cluster_bench::par` configuration).
    pub threads: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            requests: 20_000,
            threads: 0,
        }
    }
}

/// One measured benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Requests served.
    pub requests: u64,
    /// Distinct request digests in the mix.
    pub distinct: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the batch, in milliseconds.
    pub elapsed_ms: f64,
    /// Sustained requests per second.
    pub req_per_s: f64,
    /// Cache traffic.
    pub cache: crate::cache::CacheStats,
    /// Per-request latency quantiles, microseconds.
    pub latency_us: [f64; 3],
}

/// A duplicate-heavy request mix: `n` requests cycling through the
/// given apps on the given presets plus a band of structural kernels.
/// Returns the lines and the number of distinct digests.
pub fn mix(n: usize, apps: &[&str], gpus: &[&str]) -> (Vec<String>, u64) {
    let mut templates: Vec<String> = Vec::new();
    for gpu in gpus {
        for app in apps {
            templates.push(format!(r#""gpu":"{gpu}","app":"{app}""#));
        }
    }
    for stride in [0u64, 128, 4096, 65536] {
        templates.push(format!(
            r#""gpu":"GTX980","kernel":{{"grid":[64,4],"block":64,"accesses":[{{"tag":0,"base":0,"cta_stride":{stride},"warp_stride":256}},{{"tag":1,"base":1073741824,"reps":4}}]}}"#
        ));
    }
    let distinct = templates.len().min(n.max(1)) as u64;
    let lines = (0..n)
        .map(|i| format!(r#"{{"id":"b{i}",{}}}"#, templates[i % templates.len()]))
        .collect();
    (lines, distinct)
}

/// The standard artifact mix: every Table 2 app on every Table 1
/// preset plus the structural band.
pub fn standard_mix(n: usize) -> (Vec<String>, u64) {
    let apps: Vec<&str> = gpu_kernels::suite::table2_suite(gpu_sim::ArchGen::Fermi)
        .iter()
        .map(|w| w.info().abbr)
        .collect();
    mix(n, &apps, &["GTX570", "TeslaK40", "GTX980", "GTX1080"])
}

/// Runs the benchmark over an explicit mix (unit tests use a small
/// one; the artifact run uses [`standard_mix`]).
pub fn run_mix(threads: usize, lines: &[String], distinct: u64) -> BenchReport {
    let server = Server::new(ServerConfig {
        threads,
        queue_cap: 0,
        ..ServerConfig::default()
    });
    let threads = server.threads();
    let started = Instant::now();
    let timed: Vec<u64> = cluster_bench::par::par_map(lines, threads, |line| {
        let t0 = Instant::now();
        let resp = server.answer(line, None);
        assert!(!resp.is_empty());
        t0.elapsed().as_micros() as u64
    });
    let elapsed = started.elapsed();
    let mut hist = Hist::new();
    for us in timed {
        hist.record(us);
    }
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    BenchReport {
        requests: lines.len() as u64,
        distinct,
        threads,
        elapsed_ms,
        req_per_s: lines.len() as f64 / elapsed.as_secs_f64(),
        cache: server.cache_stats(),
        latency_us: [
            hist.quantile(0.5).unwrap_or(0.0),
            hist.quantile(0.9).unwrap_or(0.0),
            hist.quantile(0.99).unwrap_or(0.0),
        ],
    }
}

/// Runs the standard benchmark at the given size.
pub fn run(opts: &BenchOptions) -> BenchReport {
    let (lines, distinct) = standard_mix(opts.requests);
    run_mix(opts.threads, &lines, distinct)
}

/// Renders the `serve-bench/v1` JSON artifact (one pretty-stable line
/// per field; floats with fixed precision).
pub fn render_report(r: &BenchReport) -> String {
    format!(
        "{{\n  \"schema\": \"serve-bench/v1\",\n  \"requests\": {},\n  \"distinct\": {},\n  \"threads\": {},\n  \"elapsed_ms\": {:.3},\n  \"req_per_s\": {:.1},\n  \"cache\": {{ \"lookups\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6} }},\n  \"latency_us\": {{ \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1} }}\n}}\n",
        r.requests,
        r.distinct,
        r.threads,
        r.elapsed_ms,
        r.req_per_s,
        r.cache.lookups,
        r.cache.hits,
        r.cache.misses,
        r.cache.hit_rate(),
        r.latency_us[0],
        r.latency_us[1],
        r.latency_us[2],
    )
}

fn field_f64(doc: &cta_obs::Json, path: &[&str]) -> Result<f64, String> {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("missing field {}", path.join(".")))?;
    }
    match cur {
        cta_obs::Json::Num(raw) => raw
            .parse()
            .map_err(|_| format!("{} is not a number", path.join("."))),
        _ => Err(format!("{} is not a number", path.join("."))),
    }
}

/// Validates a committed `serve-bench/v1` artifact: schema, cache
/// conservation laws, and the throughput / hit-rate floors. Pure check
/// of the recorded run — nothing is re-measured.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn check_report(text: &str) -> Result<(), String> {
    let doc = cta_obs::parse_json(text).map_err(|e| format!("artifact is not JSON: {e}"))?;
    if doc.get("schema").and_then(|s| s.as_str()) != Some("serve-bench/v1") {
        return Err("schema must be \"serve-bench/v1\"".into());
    }
    let requests = field_f64(&doc, &["requests"])?;
    let distinct = field_f64(&doc, &["distinct"])?;
    let lookups = field_f64(&doc, &["cache", "lookups"])?;
    let hits = field_f64(&doc, &["cache", "hits"])?;
    let misses = field_f64(&doc, &["cache", "misses"])?;
    let hit_rate = field_f64(&doc, &["cache", "hit_rate"])?;
    let req_per_s = field_f64(&doc, &["req_per_s"])?;
    if hits + misses != lookups {
        return Err(format!(
            "cache conservation violated: {hits} hits + {misses} misses != {lookups} lookups"
        ));
    }
    if misses != distinct {
        return Err(format!(
            "one-fill-per-digest violated: {misses} misses vs {distinct} distinct"
        ));
    }
    if lookups != requests {
        return Err(format!(
            "every request must consult the cache: {lookups} lookups vs {requests} requests"
        ));
    }
    if hit_rate < MIN_HIT_RATE {
        return Err(format!(
            "hit rate {hit_rate} below the {MIN_HIT_RATE} floor"
        ));
    }
    if req_per_s < MIN_REQ_PER_S {
        return Err(format!(
            "throughput {req_per_s} req/s below the {MIN_REQ_PER_S} floor"
        ));
    }
    let p50 = field_f64(&doc, &["latency_us", "p50"])?;
    let p90 = field_f64(&doc, &["latency_us", "p90"])?;
    let p99 = field_f64(&doc, &["latency_us", "p99"])?;
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!("latency quantiles not monotone: {p50} {p90} {p99}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_bench_conservation_laws_and_artifact_check() {
        // A small mix (2 cheap apps x 2 presets + 4 structural kernels
        // = 8 distinct) at 80 requests: hit rate 0.9 clears the
        // artifact's floor while staying fast in debug builds.
        let (lines, distinct) = mix(80, &["NW", "BTR"], &["GTX570", "GTX980"]);
        let mut report = run_mix(0, &lines, distinct);
        assert_eq!(report.requests, 80);
        assert_eq!(report.cache.misses, report.distinct);
        assert_eq!(
            report.cache.hits + report.cache.misses,
            report.cache.lookups
        );
        assert!(report.latency_us[0] <= report.latency_us[2]);
        // The structural invariants validate as rendered; the
        // throughput floor is a property of the committed full-size
        // artifact, not of a unit-sized run on a loaded test machine,
        // so pin it to a passing value before exercising the checker.
        report.req_per_s = report.req_per_s.max(MIN_REQ_PER_S);
        let good = render_report(&report);
        check_report(&good).expect("fresh artifact validates");

        assert!(check_report(&good.replace("serve-bench/v1", "nope")).is_err());
        let slow = good.replace(
            &format!("\"req_per_s\": {:.1}", report.req_per_s),
            "\"req_per_s\": 9.0",
        );
        assert!(check_report(&slow).unwrap_err().contains("throughput"));
        let leaky = good.replace(
            &format!("\"misses\": {}", report.cache.misses),
            &format!("\"misses\": {}", report.cache.misses + 1),
        );
        assert!(check_report(&leaky).is_err(), "conservation is enforced");
        assert!(check_report("{]").is_err());
    }

    #[test]
    fn standard_mix_is_duplicate_heavy() {
        // Only builds the lines; nothing is planned here.
        let (lines, distinct) = standard_mix(4096);
        assert_eq!(lines.len(), 4096);
        assert_eq!(distinct, 96, "23 apps x 4 presets + 4 raw kernels");
        assert!(1.0 - distinct as f64 / lines.len() as f64 >= MIN_HIT_RATE);
    }
}
