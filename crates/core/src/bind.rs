//! Step 3 of CTA-Clustering: **Binding** `g : N → C` (paper §4.2.3).
//!
//! Binding associates the CTAs of the *new* kernel with cluster
//! coordinates `(w, i)`. Two schemes exist:
//!
//! * **RR-based** ([`rr_binding`], Eq. 8) — assumes the GigaThread engine
//!   dispatches round-robin, so CTA `u` must be sitting on SM `u % M`.
//!   Cheap (pure arithmetic) but wrong whenever the hardware deviates
//!   from strict RR, which the paper demonstrates it does (§3.1-(3)).
//! * **SM-based** — reads the physical SM id at run time (`%smid`) and
//!   derives the agent id from the hardware warp slot (Fermi/Kepler,
//!   static binding) or a global atomic ticket (Maxwell/Pascal, dynamic
//!   binding). Implemented inside
//!   [`AgentKernel`](crate::AgentKernel), which receives both through
//!   [`gpu_sim::CtaContext`].

/// RR-based binding (Eq. 8): `(w, i) = (u / M, u % M)` for new-kernel CTA
/// `u` under the strict-round-robin assumption with `m` clusters.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// // The paper's example: CTA u=4 of the new MM kernel with M=2
/// // clusters maps to (w, i) = (2, 0).
/// assert_eq!(cta_clustering::rr_binding(4, 2), (2, 0));
/// ```
pub fn rr_binding(u: u64, m: u64) -> (u64, u64) {
    assert!(m > 0, "at least one cluster required");
    (u / m, u % m)
}

/// Inverse of [`rr_binding`]: recovers the new-kernel CTA id `u` from a
/// cluster coordinate, `u = w * M + i`.
///
/// Returns `None` when the recomposition would overflow `u64` (a
/// coordinate no launchable kernel can produce, but one the verifier's
/// symbolic domain must still account for) or when `i >= m`.
///
/// # Examples
///
/// ```
/// use cta_clustering::{rr_binding, rr_unbinding};
/// assert_eq!(rr_unbinding(2, 0, 2), Some(4));
/// assert_eq!(rr_unbinding(rr_binding(17, 5).0, rr_binding(17, 5).1, 5), Some(17));
/// assert_eq!(rr_unbinding(u64::MAX, 1, 2), None); // w*M overflows
/// assert_eq!(rr_unbinding(0, 3, 2), None); // i out of range
/// ```
pub fn rr_unbinding(w: u64, i: u64, m: u64) -> Option<u64> {
    assert!(m > 0, "at least one cluster required");
    if i >= m {
        return None;
    }
    w.checked_mul(m)?.checked_add(i)
}

/// Which binding scheme a transform uses (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingScheme {
    /// RR-based binding (redirection clustering).
    RoundRobin,
    /// SM-based binding (agent clustering).
    SmBased,
}

impl std::fmt::Display for BindingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BindingScheme::RoundRobin => "RR-based",
            BindingScheme::SmBased => "SM-based",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eq8_example() {
        assert_eq!(rr_binding(4, 2), (2, 0));
        assert_eq!(rr_binding(5, 2), (2, 1));
        assert_eq!(rr_binding(0, 15), (0, 0));
    }

    #[test]
    fn covers_all_cluster_coordinates() {
        let m = 7u64;
        let mut seen = std::collections::BTreeSet::new();
        for u in 0..35 {
            assert!(seen.insert(rr_binding(u, m)));
        }
        assert_eq!(seen.len(), 35);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        rr_binding(3, 0);
    }

    #[test]
    fn unbinding_round_trips_and_rejects_overflow() {
        for u in [0u64, 1, 4, 5, 1 << 40, u64::MAX] {
            for m in [1u64, 2, 7, u64::MAX] {
                let (w, i) = rr_binding(u, m);
                assert_eq!(rr_unbinding(w, i, m), Some(u), "u={u} m={m}");
            }
        }
        assert_eq!(rr_unbinding(u64::MAX / 2 + 1, 0, 2), None);
        assert_eq!(rr_unbinding(u64::MAX, u64::MAX - 1, u64::MAX), None);
        assert_eq!(rr_unbinding(1, 2, 2), None);
    }
}
