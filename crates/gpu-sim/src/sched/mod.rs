//! CTA schedulers: models of the GigaThread engine.
//!
//! The real GigaThread engine is hardware-implemented, undocumented and
//! inaccessible (paper §2). The paper's microbenchmark observed that it is
//! *not* strict round-robin: the first turnaround is roughly RR, later
//! turnarounds are demand-driven, and on some parts (GTX750Ti) assignment
//! is effectively random within a turnaround, with measurable per-SM
//! imbalance. Three models cover that spectrum:
//!
//! * [`StrictRoundRobin`] — the folklore assumption several prior works
//!   build on (and the one redirection-based clustering needs).
//! * [`HardwareLike`] — seeded perturbation of RR in the first wave plus
//!   demand-driven refills; the default, matching §3.1-(3).
//! * [`Randomized`] — uniform random selection (GTX750Ti behaviour).
//!
//! The engine polls `next_for_sm` whenever `sm_id` has a free CTA slot; a
//! scheduler therefore controls *which* CTA goes to the asking SM but not
//! which SM asks (that is emergent demand).

mod hardware;
mod random;
mod round_robin;

pub use hardware::HardwareLike;
pub use random::Randomized;
pub use round_robin::StrictRoundRobin;

/// A model of the hardware CTA scheduler.
pub trait CtaScheduler: std::fmt::Debug {
    /// Prepares the scheduler for a grid of `total_ctas` CTAs. Called by
    /// the engine before dispatch begins; implementations must fully reset
    /// internal state so one scheduler value can serve multiple runs.
    fn reset(&mut self, total_ctas: u64);

    /// Chooses the next CTA (linear id) to dispatch to `sm_id`, or `None`
    /// when no CTAs remain.
    fn next_for_sm(&mut self, sm_id: usize, now: u64) -> Option<u64>;

    /// CTAs not yet handed out.
    fn remaining(&self) -> u64;

    /// Short scheduler name for reports.
    fn label(&self) -> &'static str;
}

impl<S: CtaScheduler + ?Sized> CtaScheduler for &mut S {
    fn reset(&mut self, total_ctas: u64) {
        (**self).reset(total_ctas)
    }
    fn next_for_sm(&mut self, sm_id: usize, now: u64) -> Option<u64> {
        (**self).next_for_sm(sm_id, now)
    }
    fn remaining(&self) -> u64 {
        (**self).remaining()
    }
    fn label(&self) -> &'static str {
        (**self).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut dyn CtaScheduler, n: u64) -> Vec<u64> {
        s.reset(n);
        let mut out = Vec::new();
        while let Some(c) = s.next_for_sm(out.len() % 4, out.len() as u64) {
            out.push(c);
        }
        out
    }

    #[test]
    fn all_schedulers_emit_each_cta_exactly_once() {
        let mut rr = StrictRoundRobin::new();
        let mut hw = HardwareLike::new(42);
        let mut rnd = Randomized::new(42);
        for s in [&mut rr as &mut dyn CtaScheduler, &mut hw, &mut rnd] {
            let mut got = drain(s, 100);
            assert_eq!(got.len(), 100);
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(s.remaining(), 0);
            assert!(s.next_for_sm(0, 1000).is_none());
        }
    }

    #[test]
    fn reset_restores_full_grid() {
        let mut s = Randomized::new(7);
        let a = drain(&mut s, 20);
        let b = drain(&mut s, 20);
        assert_eq!(a.len(), b.len());
        // Determinism: same seed state progression is self-consistent.
        assert_eq!(drain(&mut Randomized::new(7), 20), a);
    }
}
