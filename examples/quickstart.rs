//! Quickstart: cluster one kernel, measure the win.
//!
//! Takes the paper's running example (tiled matrix multiplication on a
//! Kepler-class GPU), applies agent-based CTA-Clustering along the
//! Y-partition, and prints the speedup, L2-transaction reduction and L1
//! hit rates against the unmodified baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use cta_clustering::{AgentKernel, Partition};
use gpu_kernels::{MatrixMul, NeuralNet};
use gpu_sim::{arch, ArchGen, KernelSpec, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = arch::tesla_k40();
    println!("GPU: {cfg}");
    println!();

    // --- Matrix multiplication: the paper's running example -------------
    let mm = MatrixMul::for_arch(ArchGen::Kepler);
    let baseline = Simulation::new(cfg.clone(), &mm).run()?;

    // Cluster CTAs that share matrix-A row bands (same blockIdx.y) onto
    // the same SM: Y-partitioning into one cluster per SM, executed by
    // persistent agent CTAs.
    let partition = Partition::y(mm.launch().grid, cfg.num_sms as u64)?;
    let clustered = AgentKernel::with_partition(mm.clone(), &cfg, partition)?;
    let optimized = Simulation::new(cfg.clone(), &clustered).run()?;

    report(&mm.name(), &baseline, &optimized);
    println!("(the paper's §5.2-(6) explains why MM gains little: its reuse");
    println!(" distance exceeds the L1 and 32-warp CTAs leave few agents)");
    println!();

    // --- A kernel where clustering shines --------------------------------
    let nn = NeuralNet::for_arch(ArchGen::Kepler);
    let baseline = Simulation::new(cfg.clone(), &nn).run()?;
    let partition = Partition::y(nn.launch().grid, cfg.num_sms as u64)?;
    let clustered = AgentKernel::with_partition(nn.clone(), &cfg, partition)?;
    let optimized = Simulation::new(cfg.clone(), &clustered).run()?;
    report(&nn.name(), &baseline, &optimized);

    Ok(())
}

fn report(name: &str, baseline: &gpu_sim::RunStats, optimized: &gpu_sim::RunStats) {
    println!("{name}:");
    println!(
        "  cycles        {:>10} -> {:>10}  ({:.2}x speedup)",
        baseline.cycles,
        optimized.cycles,
        optimized.speedup_vs(baseline)
    );
    println!(
        "  L2 txns       {:>10} -> {:>10}  ({:.0}% reduction)",
        baseline.l2_transactions(),
        optimized.l2_transactions(),
        100.0 * (1.0 - optimized.l2_txns_vs(baseline))
    );
    println!(
        "  L1 hit rate   {:>9.1}% -> {:>9.1}%",
        100.0 * baseline.l1_hit_rate(),
        100.0 * optimized.l1_hit_rate()
    );
}
