//! Set-associative cache model with LRU replacement, MSHR-style
//! outstanding-fill tracking and *hit-reserved* semantics.
//!
//! The paper's Figure 2 shows that in the first turnaround only one CTA per
//! SM actually fetches from DRAM; its siblings *hit reserved*: they match a
//! line whose fill is still in flight and wait for it. This model
//! reproduces that by timestamping fills.
//!
//! The tag and recency state lives in one interleaved slab (`WaySlab`):
//! each set's block holds its tag row followed by its packed 32-bit LRU
//! stamps, padded to a 64-byte multiple and started on a 64-byte boundary,
//! so the hit path's probe + stamp update touch *one* host cache line for
//! assoc ≤ 5 (the 4-way L1) and stay within the tag row's lines for the
//! 16-way L2 banks — previously the separate `lru` slab cost a second
//! cold line per simulated hit. The tag-match scan walks the dense `u64`
//! row in fixed-width chunks of four ways with a branchless compare mask
//! per chunk (every preset associativity is a multiple of four), which
//! the compiler vectorizes. Validity is folded into the tag row
//! ([`INVALID_TAG`]), which is unreachable as a real tag because tags are
//! addresses divided by the line size. Fill/sector state (`fill_done`,
//! `valid`, `dirty`) stays in a parallel slab indexed `set * associativity
//! + way`: the pure hit path never loads it on unsectored geometries.
//!
//! Every access path also tallies [`CacheWork`] counters (tag-compare
//! chunks probed, victim-scan ways examined, valid-line displacements) —
//! the deterministic work model `sim_core --check` pins exactly in place
//! of noisy wall-clock gates.
//!
//! Sector state is packed into per-line `u32` bitmasks (`valid`, `dirty`):
//! a line of a sectored geometry ([`CacheConfig::sector_bytes`]) tracks
//! which sectors hold data and which are dirty with one bit per sector.
//! Unsectored geometries (every preset default) are the one-sector special
//! case — mask `0b1` — and behave bit-identically to line-granular
//! booleans; the golden differential tests pin that.
//!
//! The opt-in [`CacheConfig::aggregated_tags`] variant (ATA-Cache) keeps a
//! compact per-set ghost array of recently evicted tags. Every miss probes
//! it *before* the data state is touched and uses the answer to pick the
//! insertion priority: a ghost hit (recent eviction, reuse predicted)
//! inserts at MRU as usual, a ghost miss inserts LIP-style at the cold end
//! so streaming lines evict each other instead of the working set.

use crate::addrdec::AddrDec;
use crate::config::{CacheConfig, WritePolicy};
use crate::work::CacheWork;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Per-level counters, updated on every access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read transactions presented to this level.
    pub reads: u64,
    /// Reads that hit a fully-arrived line.
    pub read_hits: u64,
    /// Reads that hit a line whose fill was still in flight (counted as
    /// hits for hit-rate purposes, but latency extends to the fill).
    pub read_reserved: u64,
    /// Reads that missed and allocated.
    pub read_misses: u64,
    /// Write transactions presented to this level.
    pub writes: u64,
    /// Writes that hit (write-back levels only).
    pub write_hits: u64,
    /// Writes that missed.
    pub write_misses: u64,
    /// Lines invalidated by the write-evict policy.
    pub write_evictions: u64,
    /// Valid lines replaced by an allocating miss (capacity/conflict
    /// evictions; dirty or clean).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Misses that stalled for a free MSHR entry.
    pub mshr_stalls: u64,
    /// Total cycles spent in MSHR structural stalls.
    pub mshr_wait_cycles: u64,
}

impl CacheStats {
    /// Read hit rate counting reserved hits as hits (profiler convention).
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        (self.read_hits + self.read_reserved) as f64 / self.reads as f64
    }

    /// Evictions of *clean* lines (no writeback traffic). Derived rather
    /// than stored: the struct layout (and its `Debug` repr, which the
    /// golden differential tests hash) stays unchanged.
    pub fn clean_evictions(&self) -> u64 {
        self.evictions - self.writebacks
    }

    /// Evictions of *dirty* lines — each one cost a writeback
    /// transaction. Alias of [`CacheStats::writebacks`], named for the
    /// clean/dirty split it forms with [`CacheStats::clean_evictions`].
    pub fn dirty_evictions(&self) -> u64 {
        self.writebacks
    }

    /// Merge another stats block into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        self.read_reserved += other.read_reserved;
        self.read_misses += other.read_misses;
        self.writes += other.writes;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.write_evictions += other.write_evictions;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.mshr_stalls += other.mshr_stalls;
        self.mshr_wait_cycles += other.mshr_wait_cycles;
    }
}

/// Opt-in per-set profile, the ground truth the CL3xx set-conflict
/// analysis is machine-checked against. Kept *outside* [`CacheStats`]
/// (whose layout and `Debug` repr the golden differential tests hash)
/// and allocated only when a caller asks for it
/// ([`Cache::enable_set_profile`]), so the packed hot path of an
/// unprofiled run is untouched apart from a predictable `None` branch.
#[derive(Debug, Clone, Default)]
pub struct SetProfile {
    /// Per-set demand-read hits (arrived + reserved — the
    /// [`CacheStats::read_hit_rate`] convention).
    pub read_hits: Vec<u64>,
    /// Per-set demand-read misses, including sector misses on resident
    /// lines.
    pub read_misses: Vec<u64>,
    /// Per-set evictions of valid lines (the install path's
    /// [`CacheStats::evictions`], attributed to sets).
    pub evictions: Vec<u64>,
    /// Per-set distinct tags ever installed (read misses and
    /// write-allocate misses — exactly the install-capable lines the
    /// static model maps to sets).
    installed: Vec<HashSet<u64>>,
}

impl SetProfile {
    fn new(num_sets: usize) -> SetProfile {
        SetProfile {
            read_hits: vec![0; num_sets],
            read_misses: vec![0; num_sets],
            evictions: vec![0; num_sets],
            installed: (0..num_sets).map(|_| HashSet::new()).collect(),
        }
    }

    /// Number of sets profiled.
    pub fn num_sets(&self) -> usize {
        self.read_hits.len()
    }

    /// Distinct tags ever installed into `set` — the measured per-set
    /// footprint the decoder-computed one must match exactly.
    pub fn installed_footprint(&self, set: usize) -> u64 {
        self.installed[set].len() as u64
    }

    /// Merges another array's profile: counters add, installed-tag sets
    /// *union* (a shared line installed by several SMs is one line of
    /// the footprint, not several). Panics if the geometries differ.
    pub fn absorb(&mut self, other: &SetProfile) {
        assert_eq!(self.num_sets(), other.num_sets(), "set-profile geometry");
        for s in 0..self.num_sets() {
            self.read_hits[s] += other.read_hits[s];
            self.read_misses[s] += other.read_misses[s];
            self.evictions[s] += other.evictions[s];
            self.installed[s].extend(other.installed[s].iter().copied());
        }
    }
}

/// Result of presenting a read to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Data present and arrived.
    Hit,
    /// Line allocated but fill still in flight; data usable at `ready_at`.
    HitReserved {
        /// Absolute cycle at which the in-flight fill completes.
        ready_at: u64,
    },
    /// Not present. The caller must fetch from the next level and then
    /// call [`Cache::fill`].
    Miss {
        /// Extra cycles the request waited for a free MSHR before it could
        /// even be sent downstream (0 when MSHRs were available).
        mshr_wait: u64,
        /// Whether a dirty victim was evicted (write-back levels: the
        /// caller must account a writeback transaction).
        dirty_victim: bool,
    },
}

/// Result of presenting a write to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write-evict level: the line (if present) was invalidated and the
    /// write must be forwarded downstream.
    Forwarded {
        /// Whether a matching line was evicted (cross-CTA write-related
        /// locality destruction, paper Fig. 4-(D)).
        evicted: bool,
    },
    /// Write-back level: absorbed by a present line (marked dirty).
    Absorbed,
    /// Write-back level: write-allocate fetched the line; the caller must
    /// account a read from the next level and call [`Cache::fill`].
    AllocateMiss {
        /// Whether a dirty victim was evicted.
        dirty_victim: bool,
    },
}

/// Tag-slab sentinel marking an invalid way. Unreachable as a real tag:
/// tags are `line_addr / line_bytes` with `line_bytes >= 32`, so real
/// tags never exceed `u64::MAX / 32`.
const INVALID_TAG: u64 = u64::MAX;

/// Fill-memo sentinel: no way is awaiting a fill.
const NO_WAY: u32 = u32::MAX;

/// LRU stamp of a LIP-style cold insert (aggregated-tag mode): below any
/// live line's stamp, so an un-retouched cold line is the next victim,
/// while still ranking above empty ways in the `(valid, lru)` order.
const COLD_STAMP: u32 = 1;

/// Per-way fill/sector state, packed into one 16-byte record so a probe
/// that needs any of it takes one cache-line touch instead of three.
/// Kept out of the interleaved [`WaySlab`]: the pure hit path of an
/// unsectored geometry never loads it, and widening every set block by
/// 16 bytes per way would push the 4-way L1's probe+stamp block past one
/// host cache line.
#[derive(Debug, Clone, Copy, Default)]
struct WayState {
    /// Fill-completion cycle; `u64::MAX` while the allocating miss has
    /// not been [`Cache::fill`]ed yet. Line-level: concurrent sector
    /// fills merge conservatively onto the latest horizon.
    fill_done: u64,
    /// Sector-valid bitmask: which sectors hold data (arrived or in
    /// flight). Meaningful only while the tag is valid.
    valid: u32,
    /// Sector-dirty bitmask (write-back levels).
    dirty: u32,
}

/// Interleaved per-set tag + recency storage — the "one-line hit path".
///
/// Each set owns a block of `stride` consecutive `u64` words: `assoc` tag
/// words, then `ceil(assoc/2)` words of packed 32-bit LRU stamps (way `w`
/// lives in the low or high half of word `assoc + w/2`), padded to a
/// multiple of 8 words. The backing slice is over-allocated by 7 words
/// and the first block starts at the first 64-byte boundary, so every
/// block is 64-byte aligned without any unsafe aliasing tricks. An
/// assoc-4 set (the L1 preset) is 8 words = exactly one host cache line
/// for the probe *and* the stamp write; the 16-way L2 banks take 24
/// words, with each way's stamp word on the same lines as its tag row
/// instead of in a separate megabyte-scale `lru` slab.
#[derive(Debug)]
struct WaySlab {
    buf: Box<[u64]>,
    /// Word index of set 0's block (aligns `buf` to a 64-byte boundary).
    first: usize,
    /// Words per set block.
    stride: usize,
    assoc: usize,
    sets: usize,
}

impl WaySlab {
    fn new(sets: usize, assoc: usize) -> WaySlab {
        let stride = (assoc + assoc.div_ceil(2)).next_multiple_of(8);
        let buf = vec![0u64; sets * stride + 7].into_boxed_slice();
        let first = buf.as_ptr().align_offset(64);
        assert!(first <= 7, "u64 allocations are 8-byte aligned");
        let mut slab = WaySlab {
            buf,
            first,
            stride,
            assoc,
            sets,
        };
        slab.reset();
        slab
    }

    /// Invalidates every tag and zeroes every stamp.
    fn reset(&mut self) {
        self.buf.fill(0);
        for set in 0..self.sets {
            let b = self.first + set * self.stride;
            self.buf[b..b + self.assoc].fill(INVALID_TAG);
        }
    }

    /// First word of the set's block.
    #[inline]
    fn block(&self, set: usize) -> usize {
        self.first + set * self.stride
    }

    #[inline]
    fn tag_row(&self, block: usize) -> &[u64] {
        &self.buf[block..block + self.assoc]
    }

    #[inline]
    fn tag(&self, block: usize, way: usize) -> u64 {
        self.buf[block + way]
    }

    #[inline]
    fn set_tag(&mut self, block: usize, way: usize, tag: u64) {
        self.buf[block + way] = tag;
    }

    #[inline]
    fn lru(&self, block: usize, way: usize) -> u32 {
        (self.buf[block + self.assoc + (way >> 1)] >> ((way & 1) * 32)) as u32
    }

    #[inline]
    fn set_lru(&mut self, block: usize, way: usize, stamp: u32) {
        let word = &mut self.buf[block + self.assoc + (way >> 1)];
        let shift = (way & 1) * 32;
        *word = (*word & !(0xFFFF_FFFFu64 << shift)) | ((stamp as u64) << shift);
    }
}

impl Clone for WaySlab {
    fn clone(&self) -> WaySlab {
        // A cloned allocation can land at a different 64-byte phase, so
        // copy block-by-block instead of deriving `Clone` (which would
        // reuse `first` against the wrong base address).
        let mut new = WaySlab::new(self.sets, self.assoc);
        for set in 0..self.sets {
            let src = self.block(set);
            let dst = new.block(set);
            new.buf[dst..dst + self.stride].copy_from_slice(&self.buf[src..src + self.stride]);
        }
        new
    }
}

/// Way holding `tag` within a set's tag row, if resident. A tag match
/// implies validity ([`INVALID_TAG`] never equals a real tag).
///
/// Two scan strategies by row width. Narrow rows (the 4-way L1, where
/// hits land a compare or two in) use a plain early-exit scan. Wide rows
/// (the 16-way L2 banks) use a fixed-width chunked scan: four ways per
/// step, compare results packed into a branchless match mask — one
/// predictable branch per chunk instead of an unpredictable one per way,
/// and a shape the compiler vectorizes. The scan itself carries no
/// instrumentation: the work model's chunk tally is derived arithmetically
/// from the outcome by [`scan_chunks`], keeping the hottest loop in the
/// simulator byte-identical to its uncounted form.
#[inline]
fn scan_row(row: &[u64], tag: u64) -> Option<usize> {
    if row.len() <= 4 {
        return row.iter().position(|&t| t == tag);
    }
    let mut i = 0;
    while i + 4 <= row.len() {
        let m = (row[i] == tag) as u32
            | (((row[i + 1] == tag) as u32) << 1)
            | (((row[i + 2] == tag) as u32) << 2)
            | (((row[i + 3] == tag) as u32) << 3);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 4;
    }
    while i < row.len() {
        if row[i] == tag {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Number of tag-compare chunks a [`scan_row`] over `len` ways walked to
/// produce `way` (the [`CacheWork::tag_chunks`] unit), reconstructed from
/// the outcome instead of counted in the loop. Narrow rows are one chunk.
/// Wide rows count one chunk per 4-way group examined — a hit in group `g`
/// examined `g + 1` groups (the remainder tail, if entered, is the last
/// "group"), a miss examined them all.
#[inline]
fn scan_chunks(len: usize, way: Option<usize>) -> u64 {
    if len <= 4 {
        return 1;
    }
    match way {
        Some(w) => (w / 4 + 1) as u64,
        None => (len / 4 + usize::from(!len.is_multiple_of(4))) as u64,
    }
}

/// A single set-associative cache array (one L1 sector, or one L2 bank).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Tag/set/sector field extraction (shared hash model with the
    /// device-level bank/channel interleave).
    dec: AddrDec,
    assoc: usize,
    /// Sector mask covering every sector of a line (`0b1` unsectored).
    full_mask: u32,
    /// Interleaved per-set tags and packed LRU stamps (see [`WaySlab`]).
    /// Tags use [`INVALID_TAG`] for empty ways. Stamps are the low 32
    /// bits of [`tick`]; recency comparisons use wraparound-safe ages,
    /// `tick.wrapping_sub(stamp)`, so ordering survives a 32-bit rollover
    /// as long as the live stamps span less than 2^32 ticks — guaranteed
    /// trivially while `tick < u32::MAX`, which a debug assertion pins
    /// for every simulated run. Invalidation (write-evict) keeps the
    /// stamp, so a recently-invalidated way is a *worse* victim than a
    /// never-used one — matching LRU over `(valid, lru)` pairs.
    ///
    /// [`tick`]: Cache::tick
    ways: WaySlab,
    /// Per-way fill and sector state (see [`WayState`]).
    state: Box<[WayState]>,
    tick: u64,
    /// Completion times of outstanding fills (MSHR occupancy), min-first.
    /// Pruned lazily: retired entries linger until a miss actually finds
    /// the heap at capacity, which is the only moment occupancy matters.
    inflight: BinaryHeap<Reverse<u64>>,
    /// Set of the most recent allocation awaiting its fill (meaningful
    /// only while `last_fill_way != NO_WAY`).
    last_fill_set: u32,
    /// Way of the most recent allocation awaiting its fill. The engine
    /// always fills the miss it just took, so [`Cache::fill`] checks
    /// here before falling back to a tag scan.
    last_fill_way: u32,
    /// Ghost-tag array (aggregated-tag mode): per set, the last `assoc`
    /// evicted tags in a ring. Empty unless `cfg.aggregated_tags`.
    ghost_tags: Box<[u64]>,
    /// Per-set ring cursors into `ghost_tags`.
    ghost_cur: Box<[u32]>,
    /// Ghost probes performed (== misses taken in aggregated-tag mode).
    ata_probes: u64,
    /// Ghost probes that matched a recently evicted tag.
    ata_hits: u64,
    /// Opt-in per-set profile (see [`SetProfile`]); `None` — and off the
    /// hot path — unless [`Cache::enable_set_profile`] was called.
    profile: Option<Box<SetProfile>>,
    /// Deterministic work-model counters (see [`CacheWork`]).
    work: CacheWork,
    /// Observable counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate; construct configs through
    /// [`CacheConfig::validate`]-checked paths.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate("cache").expect("valid cache config");
        let num_sets = cfg.num_sets() as u64;
        let assoc = cfg.associativity as usize;
        let lines = (num_sets as usize) * assoc;
        let sectors = cfg.sectors_per_line();
        let (ghost_tags, ghost_cur) = if cfg.aggregated_tags {
            (
                vec![INVALID_TAG; lines].into_boxed_slice(),
                vec![0; num_sets as usize].into_boxed_slice(),
            )
        } else {
            (Box::default(), Box::default())
        };
        Cache {
            dec: AddrDec::for_cache_indexed(
                cfg.line_bytes,
                cfg.effective_sector_bytes(),
                num_sets,
                cfg.index_fn,
            ),
            assoc,
            full_mask: (((1u64 << sectors) - 1) & u32::MAX as u64) as u32,
            ways: WaySlab::new(num_sets as usize, assoc),
            state: vec![WayState::default(); lines].into_boxed_slice(),
            cfg,
            tick: 0,
            inflight: BinaryHeap::new(),
            last_fill_set: 0,
            last_fill_way: NO_WAY,
            ghost_tags,
            ghost_cur,
            ata_probes: 0,
            ata_hits: 0,
            profile: None,
            work: CacheWork::default(),
            stats: CacheStats::default(),
        }
    }

    /// Turns on per-set profiling (idempotent). Existing contents and
    /// stats are unaffected; profiling only observes accesses made after
    /// the call, so enable it before the first access.
    pub fn enable_set_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(SetProfile::new(self.cfg.num_sets() as usize)));
        }
    }

    /// The per-set profile, if profiling was enabled.
    pub fn set_profile(&self) -> Option<&SetProfile> {
        self.profile.as_deref()
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The decoder this array indexes through.
    pub fn decoder(&self) -> &AddrDec {
        &self.dec
    }

    /// Aggregated-tag probe counters `(probes, hits)`; both zero unless
    /// the cache runs with [`CacheConfig::aggregated_tags`].
    pub fn ata_counters(&self) -> (u64, u64) {
        (self.ata_probes, self.ata_hits)
    }

    /// Work-model counters this array accumulated (see [`CacheWork`]).
    pub fn work(&self) -> CacheWork {
        self.work
    }

    /// Set index of a line, using multiplicative (Fibonacci) hashing as a
    /// model of the address swizzling in real GPU L1/L2 arrays. Plain
    /// modulo indexing collapses the power-of-two row strides that
    /// dense-matrix kernels produce onto a handful of sets; NVIDIA
    /// hardware hashes higher address bits into the index to avoid
    /// exactly that pathology. Power-of-two set counts (every preset
    /// geometry) reduce the final modulo to a mask.
    #[inline]
    pub fn set_index(&self, line_addr: u64) -> u64 {
        self.dec.set_of_tag(self.dec.tag(line_addr))
    }

    /// Counted tag probe: way holding `tag` in `set`'s row (if resident),
    /// with the chunks walked tallied into the work model.
    #[inline]
    fn find(&mut self, block: usize, tag: u64) -> Option<usize> {
        let way = scan_row(self.ways.tag_row(block), tag);
        self.work.tag_chunks += scan_chunks(self.assoc, way);
        way
    }

    fn prune_inflight(&mut self, now: u64) {
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t > now {
                break;
            }
            self.inflight.pop();
        }
    }

    /// Admits a miss to the MSHRs, returning the structural-stall wait.
    /// Retired fills are only pruned when the heap is nominally at
    /// capacity: an under-capacity heap admits immediately whether or not
    /// stale entries linger, so the outcomes are identical to eager
    /// pruning.
    fn mshr_admit(&mut self, now: u64) -> u64 {
        let cap = self.cfg.mshr_entries as usize;
        if self.inflight.len() >= cap {
            self.prune_inflight(now);
        }
        if self.inflight.len() < cap {
            return 0;
        }
        // Structural stall: the request waits for the earliest
        // in-flight fill to retire and reuses its entry. The entry is
        // popped (it has completed by the time the request proceeds),
        // and the wait is bounded by one fill horizon so a burst of
        // same-cycle misses shares the stall rather than chaining it
        // (real hardware replays the instruction, it does not build an
        // unbounded queue in front of the MSHRs).
        let Reverse(earliest) = self.inflight.pop().expect("nonempty inflight");
        // Drain everything that retires alongside it.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t > earliest {
                break;
            }
            self.inflight.pop();
        }
        let wait = earliest.saturating_sub(now);
        self.stats.mshr_stalls += 1;
        self.stats.mshr_wait_cycles += wait;
        wait
    }

    /// Presents a read of the line containing `line_addr` (already
    /// line-aligned by the coalescer), touching every sector.
    #[inline]
    pub fn read(&mut self, line_addr: u64, now: u64) -> ReadOutcome {
        self.read_sectors(line_addr, self.full_mask, now)
    }

    /// Presents a read of the given sectors of a line. `sectors` must be
    /// a nonempty subset of the line's sector mask. On unsectored
    /// geometries the only valid mask is `0b1`, and this is identical to
    /// [`Cache::read`].
    #[inline]
    pub fn read_sectors(&mut self, line_addr: u64, sectors: u32, now: u64) -> ReadOutcome {
        debug_assert!(sectors != 0 && sectors & !self.full_mask == 0);
        self.stats.reads += 1;
        self.tick += 1;
        debug_assert!(self.tick < u32::MAX as u64, "LRU stamp space exhausted");
        let tick = self.tick;
        let (tag, set) = self.dec.tag_and_set(line_addr);
        let block = self.ways.block(set);
        if let Some(w) = self.find(block, tag) {
            self.ways.set_lru(block, w, tick as u32);
            let i = set * self.assoc + w;
            // The sector-state load is skipped entirely on unsectored
            // geometries (every resident line is whole, the short-circuit
            // keeps the `valid` slab off the hit path).
            if self.full_mask != 0b1 && sectors & !self.state[i].valid != 0 {
                // Sector miss on a resident line: the tag match spares
                // the eviction, but the absent sectors must be fetched.
                // The line's fill horizon conservatively extends to the
                // new fill.
                self.stats.read_misses += 1;
                if let Some(p) = self.profile.as_deref_mut() {
                    p.read_misses[set] += 1;
                }
                let mshr_wait = self.mshr_admit(now);
                self.state[i].valid |= sectors;
                self.state[i].fill_done = u64::MAX;
                self.last_fill_set = set as u32;
                self.last_fill_way = w as u32;
                return ReadOutcome::Miss {
                    mshr_wait,
                    dirty_victim: false,
                };
            }
            if let Some(p) = self.profile.as_deref_mut() {
                p.read_hits[set] += 1;
            }
            if self.state[i].fill_done > now {
                self.stats.read_reserved += 1;
                return ReadOutcome::HitReserved {
                    ready_at: self.state[i].fill_done,
                };
            }
            self.stats.read_hits += 1;
            return ReadOutcome::Hit;
        }
        // Miss: check MSHR availability, then pick a victim.
        self.stats.read_misses += 1;
        if let Some(p) = self.profile.as_deref_mut() {
            p.read_misses[set] += 1;
        }
        let mshr_wait = self.mshr_admit(now);
        let (_, dirty_victim) = self.install(set, tag, tick, sectors);
        ReadOutcome::Miss {
            mshr_wait,
            dirty_victim,
        }
    }

    /// Installs `tag` into `set` with the given sectors pending,
    /// returning the claimed way and whether a dirty line was evicted.
    /// The victim is the first way maximizing `(empty, age)` with
    /// `age = tick - stamp` wraparound-safe — empty ways first (oldest
    /// stamp winning), then true LRU; identical to minimizing
    /// `(valid, lru)` while stamps fit the tick counter.
    fn install(&mut self, set: usize, tag: u64, tick: u64, sectors: u32) -> (usize, bool) {
        let block = self.ways.block(set);
        let now = tick as u32;
        // Victim ranking packed into one integer per way — empty bit above
        // the 32-bit wraparound-safe age — so "better victim" is a plain
        // `>` and the scan compiles to conditional moves instead of a
        // data-dependent branch per way (LRU stamps are close to random,
        // so that branch mispredicted constantly). First tie wins, and the
        // scan never exits early, which is outcome-identical: the packed
        // order equals the old `(empty, age)` lexicographic order, and the
        // only early exit the old loop took was on a key nothing later
        // could strictly beat.
        let key = |w: usize| {
            let empty = (self.ways.tag(block, w) == INVALID_TAG) as u64;
            let age = now.wrapping_sub(self.ways.lru(block, w)) as u64;
            (empty << 32) | age
        };
        let mut victim = 0;
        let mut best = key(0);
        for w in 1..self.assoc {
            let k = key(w);
            if k > best {
                best = k;
                victim = w;
            }
        }
        self.work.victim_ways += self.assoc as u64;
        // Aggregated-tag mode: probe the compact ghost array *before*
        // touching any data state, then record the eviction in it.
        let stamp = if self.cfg.aggregated_tags {
            self.ata_stamp(set, tag, now)
        } else {
            now
        };
        let victim_tag = self.ways.tag(block, victim);
        let was_valid = victim_tag != INVALID_TAG;
        let vi = set * self.assoc + victim;
        let dirty_victim = was_valid && self.state[vi].dirty != 0;
        if was_valid {
            self.stats.evictions += 1;
            self.work.set_conflicts += 1;
            if let Some(p) = self.profile.as_deref_mut() {
                p.evictions[set] += 1;
            }
            if self.cfg.aggregated_tags {
                self.ghost_push(set, victim_tag);
            }
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.installed[set].insert(tag);
        }
        if dirty_victim {
            self.stats.writebacks += 1;
        }
        self.ways.set_tag(block, victim, tag);
        self.state[vi] = WayState {
            fill_done: u64::MAX, // in flight until `fill` is called
            valid: sectors,
            dirty: 0,
        };
        self.ways.set_lru(block, victim, stamp);
        self.last_fill_set = set as u32;
        self.last_fill_way = victim as u32;
        (victim, dirty_victim)
    }

    /// Ghost probe for an incoming tag: a hit predicts reuse (the tag was
    /// evicted recently) and earns an MRU insert; a miss demotes the
    /// insert to the cold end (LIP), so one-touch streams displace each
    /// other instead of the resident working set.
    fn ata_stamp(&mut self, set: usize, tag: u64, tick: u32) -> u32 {
        self.ata_probes += 1;
        let base = set * self.assoc;
        if self.ghost_tags[base..base + self.assoc].contains(&tag) {
            self.ata_hits += 1;
            tick
        } else {
            COLD_STAMP
        }
    }

    /// Records an evicted tag in the set's ghost ring.
    fn ghost_push(&mut self, set: usize, tag: u64) {
        let cur = self.ghost_cur[set] as usize;
        self.ghost_tags[set * self.assoc + cur] = tag;
        self.ghost_cur[set] = ((cur + 1) % self.assoc) as u32;
    }

    /// Completes the fill started by a previous `Miss`, making the line's
    /// data available at absolute cycle `ready_at`. The common case — the
    /// engine fills the miss it just took — resolves through the one-entry
    /// install memo instead of a tag scan.
    #[inline]
    pub fn fill(&mut self, line_addr: u64, ready_at: u64) {
        let tag = self.dec.tag(line_addr);
        let memo_way = self.last_fill_way;
        let memo_set = self.last_fill_set as usize;
        if memo_way != NO_WAY && self.ways.tag(self.ways.block(memo_set), memo_way as usize) == tag
        {
            // A way holding `tag` is unique device-wide (the tag is the
            // full line number and determines its set), so the memo hit
            // names the same way a scan would find.
            self.state[memo_set * self.assoc + memo_way as usize].fill_done = ready_at;
        } else {
            let set = self.dec.set_of_tag(tag) as usize;
            let block = self.ways.block(set);
            if let Some(w) = self.find(block, tag) {
                self.state[set * self.assoc + w].fill_done = ready_at;
            }
        }
        self.inflight.push(Reverse(ready_at));
    }

    /// Presents a write of the line containing `line_addr`, touching
    /// every sector.
    #[inline]
    pub fn write(&mut self, line_addr: u64, now: u64) -> WriteOutcome {
        self.write_sectors(line_addr, self.full_mask, now)
    }

    /// Presents a write of the given sectors of a line.
    #[inline]
    pub fn write_sectors(&mut self, line_addr: u64, sectors: u32, _now: u64) -> WriteOutcome {
        debug_assert!(sectors != 0 && sectors & !self.full_mask == 0);
        self.stats.writes += 1;
        self.tick += 1;
        debug_assert!(self.tick < u32::MAX as u64, "LRU stamp space exhausted");
        let tick = self.tick;
        let (tag, set) = self.dec.tag_and_set(line_addr);
        let block = self.ways.block(set);
        match self.cfg.write_policy {
            WritePolicy::WriteEvict => {
                let evicted = if let Some(w) = self.find(block, tag) {
                    // Invalidate but keep the LRU stamp: the way ranks
                    // behind never-used ways for the next victim choice.
                    self.ways.set_tag(block, w, INVALID_TAG);
                    self.stats.write_evictions += 1;
                    true
                } else {
                    false
                };
                WriteOutcome::Forwarded { evicted }
            }
            WritePolicy::WriteBackAllocate => {
                if let Some(w) = self.find(block, tag) {
                    // The write itself fills any absent sectors it
                    // covers (no fetch needed for fully overwritten
                    // sectors); in-flight lines absorb the write too,
                    // the merge happens when the fill arrives. Unsectored
                    // lines are always whole, so the `valid` update is
                    // skipped with the slab load.
                    let i = set * self.assoc + w;
                    if self.full_mask != 0b1 {
                        self.state[i].valid |= sectors;
                    }
                    self.state[i].dirty |= sectors;
                    self.ways.set_lru(block, w, tick as u32);
                    self.stats.write_hits += 1;
                    return WriteOutcome::Absorbed;
                }
                self.stats.write_misses += 1;
                let (w, dirty_victim) = self.install(set, tag, tick, sectors);
                // Mark dirty immediately: the allocate fetch is accounted by
                // the caller, after which the line holds the merged write.
                self.state[set * self.assoc + w].dirty = sectors;
                WriteOutcome::AllocateMiss { dirty_victim }
            }
        }
    }

    /// Whether the line is currently resident with arrived data in every
    /// sector (test and probe helper; does not touch LRU state or
    /// statistics).
    pub fn probe(&self, line_addr: u64, now: u64) -> bool {
        let (tag, set) = self.dec.tag_and_set(line_addr);
        let way = scan_row(self.ways.tag_row(self.ways.block(set)), tag);
        way.is_some_and(|w| {
            let i = set * self.assoc + w;
            self.state[i].fill_done <= now && self.state[i].valid & self.full_mask == self.full_mask
        })
    }

    /// Invalidates all contents and outstanding fills; statistics are kept.
    pub fn flush(&mut self) {
        self.ways.reset();
        self.state.fill(WayState::default());
        self.ghost_tags.fill(INVALID_TAG);
        self.ghost_cur.fill(0);
        self.inflight.clear();
        self.last_fill_way = NO_WAY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(policy: WritePolicy) -> CacheConfig {
        CacheConfig {
            size_bytes: 1024, // 4 sets x 2 ways x 128B
            line_bytes: 128,
            associativity: 2,
            mshr_entries: 2,
            write_policy: policy,
            sector_bytes: 0,
            aggregated_tags: false,
            index_fn: crate::config::IndexFn::Hashed,
        }
    }

    fn small(policy: WritePolicy) -> Cache {
        Cache::new(config(policy))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small(WritePolicy::WriteEvict);
        assert!(matches!(c.read(0, 0), ReadOutcome::Miss { .. }));
        c.fill(0, 100);
        // Before the fill arrives: hit-reserved.
        assert_eq!(c.read(0, 50), ReadOutcome::HitReserved { ready_at: 100 });
        // After: plain hit.
        assert_eq!(c.read(0, 200), ReadOutcome::Hit);
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.read_reserved, 1);
        assert_eq!(c.stats.read_misses, 1);
    }

    /// First n line addresses colliding with line 0's set.
    fn colliding(c: &Cache, n: usize) -> Vec<u64> {
        let target = c.set_index(0);
        (1u64..)
            .map(|i| i * 128)
            .filter(|&a| c.set_index(a) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small(WritePolicy::WriteEvict);
        let peers = colliding(&c, 2);
        c.read(0, 0);
        c.fill(0, 0);
        for &a in &peers {
            assert!(matches!(c.read(a, 1), ReadOutcome::Miss { .. }));
            c.fill(a, 1);
        }
        // Line 0 was LRU in a 2-way set and must be gone; peers remain.
        assert!(!c.probe(0, 10));
        assert!(c.probe(peers[0], 10));
        assert!(c.probe(peers[1], 10));
        // Only the replacement of line 0 displaced valid data.
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.stats.clean_evictions(), 1);
        assert_eq!(c.stats.dirty_evictions(), 0);
    }

    #[test]
    fn hashing_spreads_power_of_two_strides() {
        // 256 lines at a 1KB stride (the dense-matrix row stride that
        // collapses onto 4 sets under modulo indexing) must spread over
        // every set under XOR hashing.
        let c = Cache::new(CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 128,
            associativity: 4,
            mshr_entries: 32,
            write_policy: WritePolicy::WriteEvict,
            sector_bytes: 0,
            aggregated_tags: false,
            index_fn: crate::config::IndexFn::Hashed,
        });
        let mut sets = std::collections::BTreeSet::new();
        for r in 0..256u64 {
            sets.insert(c.set_index(r * 1024));
        }
        assert!(sets.len() >= 16, "only {} sets used", sets.len());
    }

    #[test]
    fn masked_set_index_matches_modulo() {
        // Every preset geometry has power-of-two sets, so the hot path
        // uses the mask; it must agree with the generic modulo on a dense
        // address sweep.
        let c = small(WritePolicy::WriteEvict);
        let num_sets = c.cfg.num_sets() as u64;
        assert!(num_sets.is_power_of_two());
        for a in (0..4096u64).map(|i| i * 128) {
            let ln = a / c.cfg.line_bytes as u64;
            let h = ln.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            assert_eq!(c.set_index(a), h % num_sets);
            assert!(c.set_index(a) < num_sets);
        }
    }

    #[test]
    fn write_evict_invalidates() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 0);
        assert!(c.probe(0, 1));
        assert_eq!(c.write(0, 1), WriteOutcome::Forwarded { evicted: true });
        assert!(!c.probe(0, 2));
        // Write to an absent line forwards without eviction.
        assert_eq!(c.write(4096, 2), WriteOutcome::Forwarded { evicted: false });
        assert_eq!(c.stats.write_evictions, 1);
    }

    #[test]
    fn invalidated_way_ranks_behind_untouched_ways() {
        // After a write-evict invalidation, the way keeps its LRU stamp:
        // the next install in that set must prefer a never-used way (lru
        // 0) over the freshly-invalidated one.
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0); // occupies one way of set(0)
        c.fill(0, 0);
        c.write(0, 1); // invalidates it, keeping its stamp
        let peer = colliding(&c, 1)[0];
        c.read(peer, 2); // installs into the *other* (never-used) way
        c.fill(peer, 2);
        c.read(0, 3); // refetch line 0: must not displace the peer
        c.fill(0, 3);
        assert!(c.probe(peer, 10));
        assert!(c.probe(0, 10));
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn write_back_allocates_and_writes_back() {
        let mut c = small(WritePolicy::WriteBackAllocate);
        let peers = colliding(&c, 2);
        assert!(matches!(c.write(0, 0), WriteOutcome::AllocateMiss { .. }));
        c.fill(0, 0);
        assert_eq!(c.write(0, 1), WriteOutcome::Absorbed);
        // Evicting the dirty line reports a dirty victim.
        for (i, &a) in peers.iter().enumerate() {
            match c.read(a, 2) {
                ReadOutcome::Miss { dirty_victim, .. } if i == 1 => assert!(dirty_victim),
                ReadOutcome::Miss { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
            c.fill(a, 2);
        }
        assert_eq!(c.stats.writebacks, 1);
        assert_eq!(c.stats.dirty_evictions(), 1);
        assert_eq!(c.stats.clean_evictions(), c.stats.evictions - 1);
    }

    #[test]
    fn mshr_saturation_delays() {
        let mut c = small(WritePolicy::WriteEvict);
        // Two fills in flight (mshr_entries = 2).
        c.read(0, 0);
        c.fill(0, 500);
        c.read(128, 0);
        c.fill(128, 600);
        // Third distinct miss at t=10 must wait for the earliest fill (500).
        match c.read(256, 10) {
            ReadOutcome::Miss { mshr_wait, .. } => assert_eq!(mshr_wait, 490),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lazy_inflight_pruning_matches_eager() {
        let mut c = small(WritePolicy::WriteEvict);
        // Two fills that retire early; a later miss at capacity must see
        // them as retired (pruned on demand) and pay no stall.
        c.read(0, 0);
        c.fill(0, 5);
        c.read(128, 0);
        c.fill(128, 6);
        match c.read(256, 100) {
            ReadOutcome::Miss { mshr_wait, .. } => assert_eq!(mshr_wait, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats.mshr_stalls, 0);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 0);
        c.flush();
        assert!(!c.probe(0, 1));
        assert_eq!(c.stats.read_misses, 1);
    }

    #[test]
    fn hit_rate_counts_reserved() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        c.fill(0, 100);
        c.read(0, 10);
        c.read(0, 200);
        assert!((c.stats.read_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fill_memo_survives_interleaved_misses() {
        // A fill issued after *another* line's miss overwrote the memo
        // must still land via the tag-scan fallback.
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0); // memo -> way of line 0
        c.read(4096, 0); // different set; memo -> way of line 4096
        c.fill(0, 70); // memo mismatch, fallback scan
        c.fill(4096, 80); // memo hit
        assert_eq!(c.read(0, 100), ReadOutcome::Hit);
        assert_eq!(c.read(4096, 100), ReadOutcome::Hit);
        assert_eq!(c.read(0, 60), ReadOutcome::HitReserved { ready_at: 70 });
    }

    fn sectored(policy: WritePolicy) -> Cache {
        Cache::new(CacheConfig {
            sector_bytes: 32, // 4 sectors per 128B line
            ..config(policy)
        })
    }

    #[test]
    fn sector_miss_fetches_without_eviction() {
        let mut c = sectored(WritePolicy::WriteBackAllocate);
        // Touch sector 0 only.
        assert!(matches!(
            c.read_sectors(0, 0b0001, 0),
            ReadOutcome::Miss { .. }
        ));
        c.fill(0, 10);
        assert_eq!(c.read_sectors(0, 0b0001, 20), ReadOutcome::Hit);
        // Sector 2 of the same line: tag hit, sector miss — a miss with
        // no victim, not an eviction.
        match c.read_sectors(0, 0b0100, 21) {
            ReadOutcome::Miss { dirty_victim, .. } => assert!(!dirty_victim),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats.evictions, 0);
        assert_eq!(c.stats.read_misses, 2);
        c.fill(0, 40);
        assert_eq!(c.read_sectors(0, 0b0101, 50), ReadOutcome::Hit);
        // The full line is resident only once every sector is valid.
        assert!(!c.probe(0, 60));
        c.read_sectors(0, 0b1010, 60);
        c.fill(0, 70);
        assert!(c.probe(0, 80));
    }

    #[test]
    fn writes_fill_the_sectors_they_cover() {
        let mut c = sectored(WritePolicy::WriteBackAllocate);
        assert!(matches!(
            c.write_sectors(0, 0b0011, 0),
            WriteOutcome::AllocateMiss { .. }
        ));
        c.fill(0, 5);
        // The written sectors are valid without a demand fetch.
        assert_eq!(c.read_sectors(0, 0b0011, 10), ReadOutcome::Hit);
        // An untouched sector still misses.
        assert!(matches!(
            c.read_sectors(0, 0b1000, 11),
            ReadOutcome::Miss { .. }
        ));
    }

    #[test]
    fn unsectored_default_has_one_sector() {
        let c = small(WritePolicy::WriteEvict);
        assert_eq!(c.full_mask, 0b1);
        assert_eq!(c.dec.sectors_per_line(), 1);
        let s = sectored(WritePolicy::WriteEvict);
        assert_eq!(s.full_mask, 0b1111);
    }

    fn ata(assoc: u32) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: assoc * 128, // a single set
            line_bytes: 128,
            associativity: assoc,
            mshr_entries: 32,
            write_policy: WritePolicy::WriteEvict,
            sector_bytes: 0,
            aggregated_tags: true,
            index_fn: crate::config::IndexFn::Hashed,
        })
    }

    #[test]
    fn ata_cold_inserts_protect_the_working_set() {
        // Fill a 4-way set with a working set, then stream 64 one-touch
        // lines through it. LIP insertion makes the streaming lines evict
        // each other: the working set must survive.
        let mut c = ata(4);
        let ws: Vec<u64> = (0..4u64).map(|i| i * 128).collect();
        for &a in &ws {
            c.read(a, 0);
            c.fill(a, 0);
        }
        // Re-touch to give the working set fresh MRU stamps.
        for &a in &ws {
            assert_eq!(c.read(a, 10), ReadOutcome::Hit);
        }
        for i in 0..64u64 {
            c.read((100 + i) * 128, 20);
            c.fill((100 + i) * 128, 20);
        }
        let survivors = ws.iter().filter(|&&a| c.probe(a, 100)).count();
        assert_eq!(survivors, 3, "only one way is sacrificed to the stream");
        let (probes, hits) = c.ata_counters();
        assert_eq!(probes, 68, "every miss probes the ghost array");
        assert!(hits < probes);
    }

    #[test]
    fn ata_ghost_hit_restores_mru_insertion() {
        // Evict a line, then refetch it: the ghost array remembers the
        // tag, so the refetch enters at MRU and survives a later stream.
        let mut c = ata(2);
        c.read(0, 0);
        c.fill(0, 0);
        c.read(128, 0);
        c.fill(128, 0);
        c.read(256, 1); // evicts one way -> ghost remembers it
        c.fill(256, 1);
        let (_, hits_before) = c.ata_counters();
        // Refetch whichever line was evicted.
        let evicted = if c.probe(0, 2) { 128 } else { 0 };
        c.read(evicted, 3);
        c.fill(evicted, 3);
        let (_, hits_after) = c.ata_counters();
        assert_eq!(hits_after, hits_before + 1, "refetch hits the ghost");
        // A later cold line must not displace the ghost-promoted one.
        c.read(512, 4);
        c.fill(512, 4);
        assert!(c.probe(evicted, 10));
    }

    #[test]
    fn ata_off_is_untouched_by_default() {
        let c = small(WritePolicy::WriteEvict);
        assert_eq!(c.ata_counters(), (0, 0));
        assert!(c.ghost_tags.is_empty());
    }

    #[test]
    fn modulo_indexing_changes_only_the_set_function() {
        let mut cfg = config(WritePolicy::WriteEvict);
        cfg.index_fn = crate::config::IndexFn::Modulo;
        let c = Cache::new(cfg);
        let num_sets = c.cfg.num_sets() as u64;
        for a in (0..1024u64).map(|i| i * 128) {
            assert_eq!(c.set_index(a), (a / 128) % num_sets);
        }
    }

    #[test]
    fn set_profile_tracks_hits_misses_and_footprints() {
        let mut c = small(WritePolicy::WriteEvict);
        c.enable_set_profile();
        c.enable_set_profile(); // idempotent

        // Two distinct lines in set(0)'s conflict group, one revisited.
        let peers = colliding(&c, 1);
        c.read(0, 0);
        c.fill(0, 0);
        c.read(0, 1); // hit
        c.read(peers[0], 2); // second way, no eviction
        c.fill(peers[0], 2);
        let set0 = c.set_index(0) as usize;
        let p = c.set_profile().expect("profiling enabled");
        assert_eq!(p.num_sets(), c.cfg.num_sets() as usize);
        assert_eq!(p.read_hits[set0], 1);
        assert_eq!(p.read_misses[set0], 2);
        assert_eq!(p.evictions[set0], 0);
        assert_eq!(p.installed_footprint(set0), 2);
        let per_set_total: u64 = p.read_hits.iter().chain(p.read_misses.iter()).sum();
        assert_eq!(per_set_total, c.stats.reads);
    }

    #[test]
    fn set_profile_absorb_unions_footprints() {
        // Two arrays (think: two SMs) both install line 0 — the merged
        // footprint counts it once, while counters add.
        let mut a = small(WritePolicy::WriteEvict);
        let mut b = small(WritePolicy::WriteEvict);
        a.enable_set_profile();
        b.enable_set_profile();
        a.read(0, 0);
        a.fill(0, 0);
        b.read(0, 0);
        b.fill(0, 0);
        let peer = colliding(&a, 1)[0];
        b.read(peer, 1);
        b.fill(peer, 1);
        let set0 = a.set_index(0) as usize;
        let mut merged = a.set_profile().unwrap().clone();
        merged.absorb(b.set_profile().unwrap());
        assert_eq!(merged.installed_footprint(set0), 2, "union, not sum");
        assert_eq!(merged.read_misses[set0], 3);
    }

    #[test]
    fn unprofiled_cache_allocates_no_profile() {
        let mut c = small(WritePolicy::WriteEvict);
        c.read(0, 0);
        assert!(c.set_profile().is_none());
    }
}
