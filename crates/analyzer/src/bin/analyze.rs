//! `analyze`: sweep the static analysis over the full Figure 3 suite on
//! every architecture preset and report findings. The sweep includes the
//! concurrency verifier: happens-before race checking inside the
//! per-workload passes, bounded model checking of the binding protocol
//! per preset, and the symbolic proof of the binding arithmetic.
//!
//! ```text
//! cargo run --release -p cta-analyzer --bin analyze [-- OPTIONS]
//!
//!   --json             emit the machine-readable report instead of text
//!   --arch NAME        only sweep presets whose name contains NAME
//!   --app ABBR         only analyze the workload with this abbreviation
//!   --filter SUBSTR    only analyze workloads whose abbreviation
//!                      contains SUBSTR (case-insensitive)
//!   --threads N        worker threads (default 4); the report is
//!                      byte-identical for every N
//!   --verify-protocol  run only the protocol model checker and the
//!                      binding-arithmetic proof (the concurrency gate)
//!   --verify-costmodel re-simulate the full `sim_core` benchmark matrix
//!                      (every preset × Table 2 app × variant, plus the
//!                      ATA sweep) and check every measured L1 hit rate
//!                      against the CL2xx cost model's static interval;
//!                      any escape is a deny-level CL204
//!   --explain CODE     print the long-form explanation of one lint
//!   --list-lints       print the lint registry and exit
//! ```
//!
//! Exit status: **0** when the sweep is clean or carries only warnings,
//! **1** on any deny-level finding (the CI gate), **2** on usage or
//! internal errors (bad flags, no matching preset, a worker panic).

use cta_analyzer::diag::Report;
use cta_analyzer::{absint, analyze_workload, modelcheck, render_json, LINTS};
use gpu_sim::{arch, GpuConfig};
use std::process::ExitCode;

struct Options {
    json: bool,
    arch_filter: Vec<String>,
    app_filter: Vec<String>,
    app_substr: Vec<String>,
    threads: usize,
    verify_protocol: bool,
    verify_costmodel: bool,
    explain: Option<String>,
    list_lints: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        arch_filter: Vec::new(),
        app_filter: Vec::new(),
        app_substr: Vec::new(),
        threads: 4,
        verify_protocol: false,
        verify_costmodel: false,
        explain: None,
        list_lints: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--list-lints" => opts.list_lints = true,
            "--verify-protocol" => opts.verify_protocol = true,
            "--verify-costmodel" => opts.verify_costmodel = true,
            "--explain" => {
                let v = args.next().ok_or("--explain needs a lint code or name")?;
                opts.explain = Some(v);
            }
            "--arch" => {
                let v = args.next().ok_or("--arch needs a value")?;
                opts.arch_filter.push(v.to_lowercase());
            }
            "--app" => {
                let v = args.next().ok_or("--app needs a value")?;
                opts.app_filter.push(v.to_uppercase());
            }
            "--filter" => {
                let v = args.next().ok_or("--filter needs a value")?;
                opts.app_substr.push(v.to_uppercase());
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// One unit of sweep work. Jobs are executed in parallel but merged in
/// job order, so the report is independent of the thread count.
enum Job {
    /// All pass families over one workload (by Figure 3 suite position)
    /// on one preset.
    Workload { preset: usize, index: usize },
    /// Bounded model checking of the binding protocol on one preset.
    Protocol { preset: usize },
    /// Symbolic proof of the partition/binding arithmetic (global).
    Arithmetic,
}

/// Deterministic telemetry label for a job: stable across thread counts
/// and job orderings, so the exported span table is byte-identical.
fn job_label(job: &Job, presets: &[GpuConfig]) -> String {
    match job {
        Job::Workload { preset, index } => {
            let cfg = &presets[*preset];
            let abbr = gpu_kernels::suite::fig3_suite(cfg.arch)
                .into_iter()
                .nth(*index)
                .map(|w| w.info().abbr)
                .unwrap_or("?");
            format!("analyze/{}/{}", cfg.name, abbr)
        }
        Job::Protocol { preset } => format!("modelcheck/{}", presets[*preset].name),
        Job::Arithmetic => "absint/arithmetic".to_string(),
    }
}

fn run_job(job: &Job, presets: &[GpuConfig]) -> Report {
    let _job_span = cta_obs::span(job_label(job, presets));
    let mut report = Report::new();
    match job {
        Job::Workload { preset, index } => {
            let cfg = &presets[*preset];
            let w = gpu_kernels::suite::fig3_suite(cfg.arch)
                .into_iter()
                .nth(*index)
                .expect("job was built from the suite listing");
            analyze_workload(w, cfg, &mut report);
        }
        Job::Protocol { preset } => modelcheck::check_arch(&presets[*preset], &mut report),
        Job::Arithmetic => absint::check(&mut report),
    }
    report
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_lints {
        for lint in LINTS {
            println!(
                "{} {:<28} {:<5} {}",
                lint.code, lint.name, lint.default_level, lint.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(query) = &opts.explain {
        return match cta_analyzer::explain::render(query) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("analyze: no lint matches `{query}` (try --list-lints)");
                ExitCode::from(2)
            }
        };
    }

    if opts.verify_costmodel {
        return verify_costmodel();
    }

    let presets: Vec<GpuConfig> = arch::all_presets()
        .into_iter()
        .filter(|c| {
            opts.arch_filter.is_empty()
                || opts
                    .arch_filter
                    .iter()
                    .any(|f| c.name.to_lowercase().contains(f))
        })
        .collect();
    if presets.is_empty() {
        eprintln!("analyze: no architecture preset matches the --arch filter");
        return ExitCode::from(2);
    }

    let keep = |abbr: &str| {
        let upper = abbr.to_uppercase();
        (opts.app_filter.is_empty() || opts.app_filter.contains(&upper))
            && (opts.app_substr.is_empty() || opts.app_substr.iter().any(|s| upper.contains(s)))
    };

    let mut jobs: Vec<Job> = Vec::new();
    for (pi, cfg) in presets.iter().enumerate() {
        if !opts.verify_protocol {
            for (wi, w) in gpu_kernels::suite::fig3_suite(cfg.arch)
                .into_iter()
                .enumerate()
            {
                if keep(w.info().abbr) {
                    jobs.push(Job::Workload {
                        preset: pi,
                        index: wi,
                    });
                }
            }
        }
        jobs.push(Job::Protocol { preset: pi });
    }
    jobs.push(Job::Arithmetic);

    let root_span = cta_obs::span("bin/analyze");

    // Round-robin the jobs across the workers; each worker reports
    // (job index, report) so the merge below is by job order, making
    // the output byte-identical for any worker count. Worker panics are
    // caught per job (`thread::scope` would otherwise re-raise them at
    // the implicit join) and downgraded to the internal-error exit.
    let workers = opts.threads.min(jobs.len());
    let per_worker: Vec<Vec<(usize, Option<Report>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let jobs = &jobs;
                let presets = &presets;
                scope.spawn(move || {
                    jobs.iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, job)| {
                            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_job(job, presets)
                            }));
                            (i, r.ok())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught per job"))
            .collect()
    });

    let mut indexed: Vec<(usize, Option<Report>)> = per_worker.into_iter().flatten().collect();
    if indexed.iter().any(|(_, r)| r.is_none()) {
        eprintln!("analyze: internal error: an analysis worker panicked");
        return ExitCode::from(2);
    }
    let mut indexed: Vec<(usize, Report)> = indexed
        .drain(..)
        .map(|(i, r)| (i, r.expect("checked above")))
        .collect();
    indexed.sort_by_key(|(i, _)| *i);
    let mut report = Report::new();
    for (_, r) in indexed {
        report.merge(r);
    }

    if opts.json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", report.render_human());
    }

    drop(root_span);
    if let Some((jsonl, trace)) = cta_obs::export_global("analyze") {
        eprintln!(
            "telemetry: wrote {} and {}",
            jsonl.display(),
            trace.display()
        );
    }

    if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The CL2xx soundness gate: drives the exact benchmark matrix that
/// `sim_core` commits as `BENCH_sim_core.json` (every preset × Table 2
/// app × Figure 12 variant, plus the ATA sweep — 885 runs), walks each
/// variant kernel through the abstract interpretation, and checks the
/// simulator's measured L1 hit rate against the static `[lo, hi]`
/// interval. Every escape is a deny-level CL204; exit is nonzero on any.
fn verify_costmodel() -> ExitCode {
    use cta_analyzer::{costmodel, setmodel};
    use locality::AccessSummary;

    let configs = arch::all_presets();
    let mut report = Report::new();
    let mut totals = cluster_bench::MatrixTotals::default();
    let mut checked = 0u64;
    let mut width_sum = 0.0f64;
    let mut mismatches = 0u64;
    let mut mismatched_runs = 0u64;
    let result = cluster_bench::drive_matrix(
        &configs,
        false,
        true,
        &mut totals,
        &mut |plan, req, stats, _metrics, _elapsed| {
            let subject = format!("{}/{}/{}", plan.cfg.name, plan.info.abbr, req.label());
            // The request just simulated, so rebuilding its kernel for
            // the static walk cannot fail.
            let summary = plan
                .with_variant_kernel(req, |k| AccessSummary::collect_on(k, &plan.cfg))
                .expect("variant kernel was just simulated");
            let iv = summary.hit_interval(&plan.cfg);
            costmodel::check_measured(
                &iv,
                stats.l1.reads,
                stats.l1.read_hit_rate(),
                &subject,
                &mut report,
            );
            // The CL3xx machine check: re-run the same request with the
            // per-set profile enabled and hold the decoder-computed
            // per-set model to exact equality against the counters.
            let model = summary.set_conflicts(&plan.cfg);
            let (_, _, profile) = plan
                .run_profiled(req)
                .expect("request was just simulated without the profile");
            let m = setmodel::check_profile(&model, &profile, &subject, &mut report);
            mismatches += m;
            mismatched_runs += (m > 0) as u64;
            checked += 1;
            width_sum += iv.width();
        },
    );
    if let Err(e) = result {
        eprintln!("analyze: costmodel gate: {e}");
        return ExitCode::from(2);
    }
    print!("{}", report.render_human());
    // Every CL304 mismatch run contributes one deny; the rest are CL204
    // interval escapes.
    let escapes = report.deny_count() as u64 - mismatched_runs;
    println!(
        "costmodel gate: {checked} runs checked, {escapes} interval escapes, \
         mean interval width {:.4}, {mismatches} per-set mismatches, \
         {} conservation violations",
        width_sum / checked.max(1) as f64,
        totals.violations,
    );
    if escapes > 0 || mismatches > 0 || totals.violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
