//! MON — Monte Carlo option pricing (CUDA SDK `MonteCarlo`).
//!
//! Pure streaming: every CTA consumes its own slice of pre-generated
//! quasi-random samples, reduces in shared memory and writes one result
//! block. No inter-CTA reuse exists (paper category: streaming); the
//! framework's reshaped-order prefetching is the only applicable
//! optimization.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "MON",
    full_name: "MonteCarlo",
    description: "Option call price via MonteCarlo method",
    category: PaperCategory::Streaming,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [4, 4, 8, 8],
    regs: [28, 28, 28, 28],
    smem: 4096,
    source: "CUDA SDK",
};

const TAG_SAMPLES: u16 = 0;
const TAG_RESULTS: u16 = 1;

/// The Monte Carlo pricing workload model.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// CTAs in the 1D grid (one option batch each).
    pub grid: u32,
    /// Sample batches (of 256 words) per CTA.
    pub batches: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl MonteCarlo {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        MonteCarlo {
            grid: 256,
            batches: 6,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, batches: u32) -> Self {
        MonteCarlo {
            grid,
            batches,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for MonteCarlo {
    fn name(&self) -> String {
        format!("MON(grid={},b{})", self.grid, self.batches)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        for b in 0..self.batches as u64 {
            let word = ((ctx.cta * self.batches as u64 + b) * 8 + warp as u64) * 32;
            prog.push(read_words(TAG_SAMPLES, word, 32));
            prog.push(Op::Compute(20)); // path evaluation
        }
        // Block-wide reduction then one result line.
        prog.push(Op::Barrier);
        if warp == 0 {
            prog.push(write_words(TAG_RESULTS, ctx.cta * 32, 32));
        } else {
            prog.push(Op::Compute(1));
        }
        prog
    }
}

impl Workload for MonteCarlo {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn sample_slices_disjoint_across_ctas() {
        let m = MonteCarlo::new(4, 2);
        let words = |cta| {
            (0..8)
                .flat_map(|w| m.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_SAMPLES)
                .flat_map(|a| a.addrs)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(words(0).intersection(&words(1)).count(), 0);
        assert_eq!(words(1).intersection(&words(3)).count(), 0);
    }

    #[test]
    fn shared_memory_footprint_matches_table2() {
        let m = MonteCarlo::for_arch(ArchGen::Fermi);
        assert_eq!(m.launch().smem_per_cta, 4096);
        assert_eq!(m.info().opt_agents, [4, 4, 8, 8]);
    }
}
