//! Bounded model checking of the agent-binding protocol.
//!
//! The agent transform's binding step (paper Listing 5) is a small
//! concurrent protocol: persistent CTAs on one SM derive an agent id —
//! a hardware slot on Fermi/Kepler, an atomic ticket plus shared-memory
//! broadcast plus barrier on Maxwell/Pascal — and then consume their
//! cluster's task stride. The happens-before pass ([`crate::hb`]) checks
//! the op streams the transform actually emits; this pass checks the
//! *protocol itself*, by exhaustively exploring every interleaving of an
//! abstract state machine on small bounded configurations (≤3 SMs,
//! ≤4 agents, ≤16 tasks) and proving three properties on each:
//!
//! 1. **Deadlock-freedom** — no reachable state where some thread is
//!    stuck and cannot ever step again (`CL110`).
//! 2. **Exactly-once consumption** — in every terminal state, every task
//!    of every cluster is consumed by exactly one agent; a task consumed
//!    twice is a duplication (`CL111`).
//! 3. **Starvation-freedom** — no terminal state leaves a task
//!    unconsumed (`CL112`).
//!
//! # Model
//!
//! Each agent CTA is two threads. The **leader** (thread 0 of Listing 5)
//! bids for a ticket on the SM's global counter word, stores the ticket
//! to shared memory, joins the CTA barrier and finally consumes the
//! strided task list of the bound id. The **follower** (every other
//! warp) joins the barrier and then reads the id out of shared memory.
//! The id the CTA consumes with is the *follower's* view — the path that
//! is vulnerable if the broadcast or barrier is wrong. Static-slot
//! binding has no synchronization at all: agents start pre-bound to
//! their hardware slot and the only reachable behaviour is consumption.
//!
//! SMs never interact — counter words are per-SM
//! ([`cta_clustering::protocol::counter_addr`]), shared memory is
//! per-CTA and clusters are disjoint — so each SM is explored
//! separately. This is itself a (sound, trivial) partial-order
//! reduction.
//!
//! # Partial-order reduction
//!
//! Within one SM, only the three counter transitions (`atomic-bid`, and
//! the injected-bug split `ticket-read`/`ticket-write`) touch state
//! shared between agents. Every other transition is CTA-local, commutes
//! with every co-enabled transition of any other thread (barrier
//! arrivals set disjoint bits; a shared-memory store and the follower
//! read are never co-enabled because the read is barrier-ordered after
//! the store), stays enabled until taken (enabling conditions are
//! monotone), and is invisible to the checked properties (which only
//! inspect end states). The state graph is acyclic — every transition
//! strictly advances a program counter or the counter word. Under those
//! conditions exploring a single enabled local transition as an ample
//! set preserves all deadlocks and all terminal states, so the checker
//! branches only on the counter transitions.
//!
//! # Bug injection and replay
//!
//! [`BugKnobs`] seed two classic protocol bugs: a **non-atomic ticket**
//! (the bid decays into an unlocked read-modify-write, so two agents can
//! bind the same id — duplicating that id's stride and starving the
//! lost one) and a **skipped leader barrier** (the leader never joins,
//! the followers wait forever — a deadlock). Every violation carries the
//! exact interleaving that produced it as a [`Step`] trace, and
//! [`replay`] re-executes a trace step by step — refusing any step the
//! model does not enable — and returns the violation the end state
//! exhibits. A tampered trace fails to replay.

use crate::diag::{Report, PROTOCOL_DEADLOCK, PROTOCOL_EXACTLY_ONCE, PROTOCOL_STARVATION};
use cta_clustering::protocol::{BindingMode, ProtocolSpec};
use gpu_sim::{FxHashSet, GpuConfig};
use std::fmt;

/// SMs in the bounded model configurations.
pub const MODEL_SMS: usize = 3;

/// Largest `MAX_AGENTS` the bounded sweep explores.
pub const MODEL_MAX_AGENTS: u32 = 4;

/// Cluster sizes of the bounded model (deliberately distinct, none a
/// multiple of the agent counts, 15 ≤ 16 tasks total).
pub const MODEL_CLUSTERS: [u64; MODEL_SMS] = [6, 5, 4];

/// Fault-injection switches. All-off checks the protocol as specified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugKnobs {
    /// Replace the atomic ticket bid with an unlocked read + write pair,
    /// letting two agents observe the same counter value.
    pub non_atomic_ticket: bool,
    /// Leaders skip the post-broadcast barrier, leaving followers
    /// waiting on a barrier that can never complete.
    pub skip_leader_barrier: bool,
}

/// Leader-thread program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Lpc {
    Bid,
    BidWrite,
    Store,
    Barrier,
    Wait,
    Consume,
    Done,
}

/// Follower-thread program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Fpc {
    Barrier,
    Wait,
    Read,
    Done,
}

/// One agent CTA: two thread pcs plus its CTA-local storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Agent {
    leader: Lpc,
    follower: Fpc,
    /// Ticket the leader bound (meaningful once past the bid).
    ticket: u32,
    /// Bug path: counter value read but not yet written back.
    reg: u32,
    /// Id the follower read out of shared memory (meaningful at `Done`).
    fid: u32,
    /// Shared-memory broadcast slot.
    shared: Option<u32>,
    /// Barrier arrival bits: 1 = leader, 2 = follower.
    arrived: u8,
}

/// Protocol state of one SM.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    counter: u32,
    agents: Vec<Agent>,
}

impl State {
    fn init(spec: &ProtocolSpec) -> State {
        let agents = (0..spec.max_agents)
            .map(|slot| match spec.binding {
                BindingMode::AtomicTicket => Agent {
                    leader: Lpc::Bid,
                    follower: Fpc::Barrier,
                    ticket: 0,
                    reg: 0,
                    fid: 0,
                    shared: None,
                    arrived: 0,
                },
                // Static binding: the hardware slot is the id, every
                // warp reads it directly — no protocol to run.
                BindingMode::StaticSlot => Agent {
                    leader: Lpc::Consume,
                    follower: Fpc::Done,
                    ticket: slot,
                    reg: 0,
                    fid: slot,
                    shared: Some(slot),
                    arrived: 3,
                },
            })
            .collect();
        State { counter: 0, agents }
    }

    fn terminal(&self) -> bool {
        self.agents
            .iter()
            .all(|a| a.leader == Lpc::Done && a.follower == Fpc::Done)
    }
}

/// One transition of the protocol state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Leader: `ticket = atomicAdd(&counter, 1)`.
    AtomicBid,
    /// Leader (bug): plain load of the counter into a register.
    TicketRead,
    /// Leader (bug): plain store of `reg + 1` back to the counter.
    TicketWrite,
    /// Leader: broadcast the ticket through shared memory.
    StoreShared,
    /// Leader: arrive at the CTA barrier.
    LeaderArrive,
    /// Leader (bug): fall through the barrier without arriving.
    LeaderSkipBarrier,
    /// Leader: pass the completed barrier.
    LeaderRelease,
    /// Follower: arrive at the CTA barrier.
    FollowerArrive,
    /// Follower: pass the completed barrier.
    FollowerRelease,
    /// Follower: read the broadcast id out of shared memory.
    FollowerRead,
    /// CTA: consume the bound id's task stride.
    Consume,
}

impl Action {
    fn name(self) -> &'static str {
        match self {
            Action::AtomicBid => "atomic-bid",
            Action::TicketRead => "ticket-read",
            Action::TicketWrite => "ticket-write",
            Action::StoreShared => "store-shared",
            Action::LeaderArrive => "leader-arrive",
            Action::LeaderSkipBarrier => "leader-skip-barrier",
            Action::LeaderRelease => "leader-release",
            Action::FollowerArrive => "follower-arrive",
            Action::FollowerRelease => "follower-release",
            Action::FollowerRead => "follower-read",
            Action::Consume => "consume",
        }
    }

    /// Whether the transition touches state shared between agents (the
    /// SM counter word). Only these need interleaving exploration.
    fn is_global(self) -> bool {
        matches!(
            self,
            Action::AtomicBid | Action::TicketRead | Action::TicketWrite
        )
    }
}

/// One trace entry: agent index plus the action it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Agent (CTA) index within the SM.
    pub agent: u32,
    /// Transition taken.
    pub action: Action,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}:{}", self.agent, self.action.name())
    }
}

/// Renders a counterexample trace on one line.
pub fn render_trace(trace: &[Step]) -> String {
    let mut out = String::new();
    for (i, s) in trace.iter().enumerate() {
        if i > 0 {
            out.push_str(" \u{2192} ");
        }
        out.push_str(&s.to_string());
    }
    out
}

/// The property a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A reachable state where some thread can never step again.
    Deadlock,
    /// A terminal state where some task is consumed more than once.
    DuplicateConsumption,
    /// A terminal state where some task is never consumed.
    Starvation,
}

impl ViolationKind {
    /// The lint this violation reports under.
    pub fn lint(self) -> &'static crate::diag::Lint {
        match self {
            ViolationKind::Deadlock => &PROTOCOL_DEADLOCK,
            ViolationKind::DuplicateConsumption => &PROTOCOL_EXACTLY_ONCE,
            ViolationKind::Starvation => &PROTOCOL_STARVATION,
        }
    }
}

/// One counterexample: what broke, where, and the interleaving that
/// reaches it (replayable with [`replay`]).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Property violated.
    pub kind: ViolationKind,
    /// SM whose exploration found it.
    pub sm: usize,
    /// Human-readable account of the end state.
    pub detail: String,
    /// The exact interleaving from the initial state to the violation.
    pub trace: Vec<Step>,
}

/// Result of model-checking one spec: every distinct violation kind
/// found (first counterexample each, in deterministic DFS order).
#[derive(Debug, Clone)]
pub struct McResult {
    /// Distinct states explored, summed over SMs.
    pub states: u64,
    /// Violations found (empty = all three properties proven on the
    /// bounded configuration).
    pub violations: Vec<Violation>,
}

/// Enumerates every enabled transition of `st`, in deterministic
/// (agent, thread) order.
fn enabled_steps(st: &State, knobs: &BugKnobs, out: &mut Vec<Step>) {
    out.clear();
    for (i, a) in st.agents.iter().enumerate() {
        let i = i as u32;
        match a.leader {
            Lpc::Bid if knobs.non_atomic_ticket => out.push(Step {
                agent: i,
                action: Action::TicketRead,
            }),
            Lpc::Bid => out.push(Step {
                agent: i,
                action: Action::AtomicBid,
            }),
            Lpc::BidWrite => out.push(Step {
                agent: i,
                action: Action::TicketWrite,
            }),
            Lpc::Store => out.push(Step {
                agent: i,
                action: Action::StoreShared,
            }),
            Lpc::Barrier if knobs.skip_leader_barrier => out.push(Step {
                agent: i,
                action: Action::LeaderSkipBarrier,
            }),
            Lpc::Barrier => out.push(Step {
                agent: i,
                action: Action::LeaderArrive,
            }),
            Lpc::Wait if a.arrived == 3 => out.push(Step {
                agent: i,
                action: Action::LeaderRelease,
            }),
            Lpc::Consume if a.follower == Fpc::Done => out.push(Step {
                agent: i,
                action: Action::Consume,
            }),
            _ => {}
        }
        match a.follower {
            Fpc::Barrier => out.push(Step {
                agent: i,
                action: Action::FollowerArrive,
            }),
            Fpc::Wait if a.arrived == 3 => out.push(Step {
                agent: i,
                action: Action::FollowerRelease,
            }),
            Fpc::Read => out.push(Step {
                agent: i,
                action: Action::FollowerRead,
            }),
            _ => {}
        }
    }
}

/// Applies one enabled step, returning the successor state.
fn apply(st: &State, step: Step) -> State {
    let mut next = st.clone();
    let a = &mut next.agents[step.agent as usize];
    match step.action {
        Action::AtomicBid => {
            a.ticket = next.counter;
            next.counter += 1;
            a.leader = Lpc::Store;
        }
        Action::TicketRead => {
            a.reg = next.counter;
            a.leader = Lpc::BidWrite;
        }
        Action::TicketWrite => {
            a.ticket = a.reg;
            next.counter = a.reg + 1;
            a.leader = Lpc::Store;
        }
        Action::StoreShared => {
            a.shared = Some(a.ticket);
            a.leader = Lpc::Barrier;
        }
        Action::LeaderArrive => {
            a.arrived |= 1;
            a.leader = Lpc::Wait;
        }
        Action::LeaderSkipBarrier => a.leader = Lpc::Consume,
        Action::LeaderRelease => a.leader = Lpc::Consume,
        Action::FollowerArrive => {
            a.arrived |= 2;
            a.follower = Fpc::Wait;
        }
        Action::FollowerRelease => a.follower = Fpc::Read,
        Action::FollowerRead => {
            // A read before the broadcast store observes the cleared
            // shared slot — id 0 — exactly like the real kernel.
            a.fid = a.shared.unwrap_or(0);
            a.follower = Fpc::Done;
        }
        Action::Consume => a.leader = Lpc::Done,
    }
    next
}

/// Evaluates an end state (no enabled transitions): a non-terminal end
/// state is a deadlock; a terminal one has its task-consumption counts
/// checked. One end state can break several properties at once (two
/// agents bound to one id both duplicate that stride and starve the
/// lost one), so every broken property is returned.
fn evaluate_end(spec: &ProtocolSpec, sm: usize, st: &State) -> Vec<(ViolationKind, String)> {
    if !st.terminal() {
        let stuck: Vec<String> = st
            .agents
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                let mut v = Vec::new();
                if a.leader != Lpc::Done {
                    v.push(format!("agent {i} leader at {:?}", a.leader));
                }
                if a.follower != Fpc::Done {
                    v.push(format!("agent {i} follower at {:?}", a.follower));
                }
                v
            })
            .collect();
        return vec![(
            ViolationKind::Deadlock,
            format!("SM {sm}: no thread can step; stuck: {}", stuck.join(", ")),
        )];
    }
    let cluster = spec.cluster_sizes[sm] as usize;
    let mut counts = vec![0u32; cluster];
    for a in &st.agents {
        for w in spec.tasks_of(sm, u64::from(a.fid)) {
            counts[w as usize] += 1;
        }
    }
    let mut out = Vec::new();
    if let Some(w) = counts.iter().position(|&c| c > 1) {
        let ids: Vec<String> = st
            .agents
            .iter()
            .enumerate()
            .filter(|(_, a)| spec.tasks_of(sm, u64::from(a.fid)).contains(&(w as u64)))
            .map(|(i, a)| format!("agent {i} bound id {}", a.fid))
            .collect();
        out.push((
            ViolationKind::DuplicateConsumption,
            format!(
                "SM {sm}: task {w} consumed {} times ({})",
                counts[w],
                ids.join(", ")
            ),
        ));
    }
    if let Some(w) = counts.iter().position(|&c| c == 0) {
        out.push((
            ViolationKind::Starvation,
            format!(
                "SM {sm}: task {w} never consumed (no agent bound id {})",
                w as u64 % u64::from(spec.active_agents)
            ),
        ));
    }
    out
}

struct Explorer<'a> {
    spec: &'a ProtocolSpec,
    knobs: &'a BugKnobs,
    sm: usize,
    visited: FxHashSet<State>,
    trace: Vec<Step>,
    states: u64,
    violations: Vec<Violation>,
}

impl Explorer<'_> {
    fn dfs(&mut self, st: &State) {
        if !self.visited.insert(st.clone()) {
            return;
        }
        self.states += 1;
        let mut steps = Vec::new();
        enabled_steps(st, self.knobs, &mut steps);
        if steps.is_empty() {
            for (kind, detail) in evaluate_end(self.spec, self.sm, st) {
                if !self.violations.iter().any(|v| v.kind == kind) {
                    self.violations.push(Violation {
                        kind,
                        sm: self.sm,
                        detail,
                        trace: self.trace.clone(),
                    });
                }
            }
            return;
        }
        // Ample set: a local transition commutes with everything
        // co-enabled and is invisible — explore it alone.
        if let Some(&local) = steps.iter().find(|s| !s.action.is_global()) {
            steps.clear();
            steps.push(local);
        }
        for step in steps {
            self.trace.push(step);
            let next = apply(st, step);
            self.dfs(&next);
            self.trace.pop();
        }
    }
}

/// Model-checks `spec` under `knobs`, exploring every SM's full
/// (reduced) interleaving space. `Err` on a malformed spec.
pub fn check_spec(spec: &ProtocolSpec, knobs: &BugKnobs) -> Result<McResult, String> {
    spec.validate()?;
    let mut res = McResult {
        states: 0,
        violations: Vec::new(),
    };
    for sm in 0..spec.num_sms {
        let mut ex = Explorer {
            spec,
            knobs,
            sm,
            visited: FxHashSet::default(),
            trace: Vec::new(),
            states: 0,
            violations: Vec::new(),
        };
        ex.dfs(&State::init(spec));
        res.states += ex.states;
        res.violations.extend(ex.violations);
    }
    Ok(res)
}

/// Re-executes a counterexample trace step by step, refusing any step
/// the model does not enable, and returns the violation the end state
/// exhibits. `Err` if the trace is not a faithful execution or its end
/// state shows no violation.
pub fn replay(
    spec: &ProtocolSpec,
    knobs: &BugKnobs,
    violation: &Violation,
) -> Result<ViolationKind, String> {
    spec.validate()?;
    if violation.sm >= spec.num_sms {
        return Err(format!("SM {} out of range", violation.sm));
    }
    let mut st = State::init(spec);
    let mut enabled = Vec::new();
    for (i, &step) in violation.trace.iter().enumerate() {
        enabled_steps(&st, knobs, &mut enabled);
        if !enabled.contains(&step) {
            return Err(format!("step {i} ({step}) is not enabled"));
        }
        st = apply(&st, step);
    }
    enabled_steps(&st, knobs, &mut enabled);
    if !enabled.is_empty() {
        return Err("trace ends in a state with enabled transitions".into());
    }
    let broken = evaluate_end(spec, violation.sm, &st);
    if broken.iter().any(|(k, _)| *k == violation.kind) {
        Ok(violation.kind)
    } else if let Some((k, _)) = broken.first() {
        Ok(*k)
    } else {
        Err("trace end state violates no property".into())
    }
}

/// The bounded spec the preset sweep checks for one (binding,
/// `MAX_AGENTS`, `ACTIVE_AGENTS`) combination.
pub fn model_spec(binding: BindingMode, max_agents: u32, active_agents: u32) -> ProtocolSpec {
    ProtocolSpec {
        binding,
        num_sms: MODEL_SMS,
        max_agents,
        active_agents,
        cluster_sizes: MODEL_CLUSTERS.to_vec(),
    }
}

/// Model-checks every (`MAX_AGENTS`, `ACTIVE_AGENTS`) combination the
/// bounded sweep admits under `cfg`'s binding mode, emitting one finding
/// per violation (with its trace) into `report`.
pub fn check_arch(cfg: &GpuConfig, report: &mut Report) {
    let binding = BindingMode::of(cfg.arch);
    for max_agents in 1..=MODEL_MAX_AGENTS {
        for active in 1..=max_agents {
            let spec = model_spec(binding, max_agents, active);
            let subject = format!("protocol/{}/M{max_agents}A{active}", cfg.name);
            report.note_subject();
            let res =
                check_spec(&spec, &BugKnobs::default()).expect("bounded model spec is well-formed");
            for v in res.violations {
                report.emit(
                    v.kind.lint(),
                    &subject,
                    format!("{}; trace: {}", v.detail, render_trace(&v.trace)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn atomic_spec(max: u32, active: u32) -> ProtocolSpec {
        model_spec(BindingMode::AtomicTicket, max, active)
    }

    #[test]
    fn clean_atomic_protocol_proves_all_three_properties() {
        let res = check_spec(&atomic_spec(4, 3), &BugKnobs::default()).unwrap();
        assert!(res.violations.is_empty(), "{:?}", res.violations);
        assert!(
            res.states > 100,
            "expected real interleaving: {}",
            res.states
        );
    }

    #[test]
    fn clean_static_protocol_proves_all_three_properties() {
        let res = check_spec(
            &model_spec(BindingMode::StaticSlot, 4, 2),
            &BugKnobs::default(),
        )
        .unwrap();
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn throttled_agents_idle_without_starvation() {
        // MAX_AGENTS 4, ACTIVE 1: three agents must bind idle tickets
        // and the whole cluster still drains through agent id 0.
        let res = check_spec(&atomic_spec(4, 1), &BugKnobs::default()).unwrap();
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn every_preset_combination_is_clean() {
        let mut report = Report::new();
        for cfg in arch::all_presets() {
            check_arch(&cfg, &mut report);
        }
        assert_eq!(report.deny_count(), 0, "{}", report.render_human());
        assert_eq!(
            report.subjects_checked(),
            4 * (1 + 2 + 3 + 4),
            "one subject per (arch, MAX_AGENTS, ACTIVE_AGENTS) combination"
        );
    }

    #[test]
    fn non_atomic_ticket_duplicates_and_starves() {
        let knobs = BugKnobs {
            non_atomic_ticket: true,
            ..BugKnobs::default()
        };
        let spec = atomic_spec(2, 2);
        let res = check_spec(&spec, &knobs).unwrap();
        let dup = res
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::DuplicateConsumption)
            .expect("unlocked ticket must duplicate a stride");
        let starve = res
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Starvation)
            .expect("the lost id's stride must starve");
        assert_eq!(dup.kind.lint().code, "CL111");
        assert_eq!(starve.kind.lint().code, "CL112");
        // Both counterexamples replay to the violation they claim.
        assert_eq!(
            replay(&spec, &knobs, dup).unwrap(),
            ViolationKind::DuplicateConsumption
        );
        assert_eq!(
            replay(&spec, &knobs, starve).unwrap(),
            ViolationKind::Starvation
        );
    }

    #[test]
    fn skipped_leader_barrier_deadlocks() {
        let knobs = BugKnobs {
            skip_leader_barrier: true,
            ..BugKnobs::default()
        };
        let spec = atomic_spec(2, 2);
        let res = check_spec(&spec, &knobs).unwrap();
        let dl = res
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Deadlock)
            .expect("unmatched barrier must deadlock the followers");
        assert_eq!(dl.kind.lint().code, "CL110");
        assert!(dl.detail.contains("follower"), "{}", dl.detail);
        assert_eq!(replay(&spec, &knobs, dl).unwrap(), ViolationKind::Deadlock);
    }

    #[test]
    fn tampered_traces_fail_replay() {
        let knobs = BugKnobs {
            skip_leader_barrier: true,
            ..BugKnobs::default()
        };
        let spec = atomic_spec(2, 2);
        let res = check_spec(&spec, &knobs).unwrap();
        let dl = res.violations[0].clone();

        // Truncating the trace leaves live transitions at the end.
        let mut short = dl.clone();
        short.trace.pop();
        assert!(replay(&spec, &knobs, &short).is_err());

        // Splicing in a step the model does not enable is refused.
        let mut forged = dl.clone();
        forged.trace[0] = Step {
            agent: 0,
            action: Action::FollowerRead,
        };
        assert!(replay(&spec, &knobs, &forged).is_err());

        // Replaying under the wrong knobs diverges immediately.
        assert!(replay(&spec, &BugKnobs::default(), &dl).is_err());
    }

    #[test]
    fn counterexamples_are_deterministic() {
        let knobs = BugKnobs {
            non_atomic_ticket: true,
            ..BugKnobs::default()
        };
        let a = check_spec(&atomic_spec(3, 3), &knobs).unwrap();
        let b = check_spec(&atomic_spec(3, 3), &knobs).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.trace, y.trace);
            assert_eq!(x.detail, y.detail);
        }
    }
}
