//! Preset [`GpuConfig`]s for the platforms of the paper's Table 1.
//!
//! Structural parameters (SMs, slots, cache geometry, register file,
//! shared memory) are taken directly from Table 1. Latencies are the
//! values the paper measured with its Listing 3 microbenchmark and reports
//! in Figure 2 (e.g. ~125-cycle L1 and ~374-cycle L2 on Fermi).

use crate::config::{ArchGen, CacheConfig, GpuConfig, IndexFn, MemoryTimings, WritePolicy};

const KB: u32 = 1024;

fn l1_cache(size_kb: u32, line: u32, mshr: u32) -> CacheConfig {
    CacheConfig {
        size_bytes: size_kb * KB,
        line_bytes: line,
        associativity: 4,
        mshr_entries: mshr,
        write_policy: WritePolicy::WriteEvict,
        sector_bytes: 0,
        aggregated_tags: false,
        index_fn: IndexFn::Hashed,
    }
}

fn l2_cache(size_kb: u32) -> CacheConfig {
    CacheConfig {
        size_bytes: size_kb * KB,
        line_bytes: 32,
        associativity: 16,
        mshr_entries: 128,
        write_policy: WritePolicy::WriteBackAllocate,
        sector_bytes: 0,
        aggregated_tags: false,
        index_fn: IndexFn::Hashed,
    }
}

/// The ATA-Cache variant of a preset: identical geometry and timings,
/// but the L1 runs with [`CacheConfig::aggregated_tags`] — a compact
/// ghost-tag array probed on every miss that steers insertion priority
/// (recently-evicted tags re-enter at MRU, cold tags enter LIP-style).
/// This models the aggregated-tag-array L1 of the ATA-Cache proposal as
/// a fifth architecture in the bench matrix; at default configs it is
/// never selected, so baseline figures are unaffected.
pub fn ata_variant(base: GpuConfig) -> GpuConfig {
    let mut cfg = base;
    cfg.name = format!("{}-ATA", cfg.name);
    cfg.l1.aggregated_tags = true;
    cfg
}

/// GTX570 — Fermi, CC 2.0, 15 SMs, 48 warp slots, 8 CTA slots,
/// 16KB default / 48KB configurable L1 with 128B lines, 1536KB L2.
pub fn gtx570() -> GpuConfig {
    GpuConfig {
        name: "GTX570".to_string(),
        arch: ArchGen::Fermi,
        compute_capability: (2, 0),
        num_sms: 15,
        warp_size: 32,
        warp_slots: 48,
        cta_slots: 8,
        regs_per_sm: 32 * 1024,
        smem_per_sm: 48 * KB,
        l1: l1_cache(16, 128, 32),
        l1_sectors: 1,
        l1_enabled: true,
        l2: l2_cache(1536),
        timings: MemoryTimings {
            l1_hit: 125,
            l2_hit: 374,
            dram: 830,
            l2_bank_gap: 1,
            l2_banks: 6,
            dram_channel_gap: 4,
            dram_channels: 5,
        },
    }
}

/// Tesla K40 — Kepler, CC 3.5, 15 SMs, 64 warp slots, 16 CTA slots,
/// 16/32/48KB configurable L1 with 128B lines, 1536KB L2.
pub fn tesla_k40() -> GpuConfig {
    GpuConfig {
        name: "Tesla K40".to_string(),
        arch: ArchGen::Kepler,
        compute_capability: (3, 5),
        num_sms: 15,
        warp_size: 32,
        warp_slots: 64,
        cta_slots: 16,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 48 * KB,
        l1: l1_cache(16, 128, 32),
        l1_sectors: 1,
        l1_enabled: true,
        l2: l2_cache(1536),
        timings: MemoryTimings {
            l1_hit: 91,
            l2_hit: 260,
            dram: 660,
            l2_bank_gap: 1,
            l2_banks: 6,
            dram_channel_gap: 4,
            dram_channels: 6,
        },
    }
}

/// GTX980 — Maxwell, CC 5.2, 16 SMs, 64 warp slots, 32 CTA slots,
/// 48KB L1/Tex unified cache with 32B lines split into two CTA-slot-private
/// sectors, 2048KB L2, 96KB shared memory.
pub fn gtx980() -> GpuConfig {
    GpuConfig {
        name: "GTX980".to_string(),
        arch: ArchGen::Maxwell,
        compute_capability: (5, 2),
        num_sms: 16,
        warp_size: 32,
        warp_slots: 64,
        cta_slots: 32,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 96 * KB,
        l1: l1_cache(48, 32, 64),
        l1_sectors: 2,
        l1_enabled: true,
        l2: l2_cache(2048),
        timings: MemoryTimings {
            l1_hit: 131,
            l2_hit: 254,
            dram: 700,
            // GTX980: four 64-bit memory controllers -> four L2 slices.
            // The 32B-line unified cache generates a quarter of the
            // per-miss traffic of Fermi/Kepler, so slice occupancy is
            // higher per transaction.
            l2_bank_gap: 2,
            l2_banks: 4,
            dram_channel_gap: 5,
            dram_channels: 4,
        },
    }
}

/// GTX1080 — Pascal, CC 6.1, 20 SMs, 64 warp slots, 32 CTA slots,
/// 48KB sectored L1/Tex unified cache with 32B lines, 2048KB L2.
pub fn gtx1080() -> GpuConfig {
    GpuConfig {
        name: "GTX1080".to_string(),
        arch: ArchGen::Pascal,
        compute_capability: (6, 1),
        num_sms: 20,
        warp_size: 32,
        warp_slots: 64,
        cta_slots: 32,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 64 * KB,
        l1: l1_cache(48, 32, 64),
        l1_sectors: 2,
        l1_enabled: true,
        l2: l2_cache(2048),
        timings: MemoryTimings {
            l1_hit: 132,
            l2_hit: 260,
            dram: 750,
            l2_bank_gap: 2,
            l2_banks: 8,
            dram_channel_gap: 5,
            dram_channels: 8,
        },
    }
}

/// GTX750Ti — first-generation Maxwell (CC 5.0), the fifth platform the
/// paper probed in §3.1-(3); its GigaThread engine assigns CTAs randomly
/// within each turnaround.
pub fn gtx750ti() -> GpuConfig {
    GpuConfig {
        name: "GTX750Ti".to_string(),
        arch: ArchGen::Maxwell,
        compute_capability: (5, 0),
        num_sms: 5,
        warp_size: 32,
        warp_slots: 64,
        cta_slots: 32,
        regs_per_sm: 64 * 1024,
        smem_per_sm: 64 * KB,
        l1: l1_cache(24, 32, 64),
        l1_sectors: 2,
        l1_enabled: true,
        l2: l2_cache(2048),
        timings: MemoryTimings {
            l1_hit: 108,
            l2_hit: 230,
            dram: 640,
            l2_bank_gap: 1,
            l2_banks: 2,
            dram_channel_gap: 4,
            dram_channels: 2,
        },
    }
}

/// The four Table 1 evaluation platforms, in the paper's order.
pub fn all_presets() -> Vec<GpuConfig> {
    vec![gtx570(), tesla_k40(), gtx980(), gtx1080()]
}

/// Look up a Table 1 preset by its architecture generation.
pub fn preset_for(arch: ArchGen) -> GpuConfig {
    match arch {
        ArchGen::Fermi => gtx570(),
        ArchGen::Kepler => tesla_k40(),
        ArchGen::Maxwell => gtx980(),
        ArchGen::Pascal => gtx1080(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_structural_parameters() {
        let f = gtx570();
        assert_eq!((f.num_sms, f.warp_slots, f.cta_slots), (15, 48, 8));
        assert_eq!(f.l1.line_bytes, 128);
        assert_eq!(f.l2.size_bytes, 1536 * 1024);

        let k = tesla_k40();
        assert_eq!((k.num_sms, k.warp_slots, k.cta_slots), (15, 64, 16));
        assert_eq!(k.regs_per_sm, 64 * 1024);

        let m = gtx980();
        assert_eq!((m.num_sms, m.warp_slots, m.cta_slots), (16, 64, 32));
        assert_eq!(m.l1.line_bytes, 32);
        assert_eq!(m.l1_sectors, 2);
        assert_eq!(m.smem_per_sm, 96 * 1024);

        let p = gtx1080();
        assert_eq!((p.num_sms, p.warp_slots, p.cta_slots), (20, 64, 32));
        assert_eq!(p.l2.size_bytes, 2048 * 1024);
    }

    #[test]
    fn preset_for_round_trips() {
        for arch in ArchGen::ALL {
            assert_eq!(preset_for(arch).arch, arch);
        }
    }

    #[test]
    fn ata_variant_only_flips_the_l1_tag_array() {
        let base = gtx980();
        let ata = ata_variant(gtx980());
        assert_eq!(ata.name, "GTX980-ATA");
        assert!(ata.l1.aggregated_tags);
        assert!(!ata.l2.aggregated_tags);
        ata.validate().expect("ATA variant must validate");
        let mut back = ata.clone();
        back.name = base.name.clone();
        back.l1.aggregated_tags = false;
        assert_eq!(back, base, "everything but name and the L1 flag matches");
    }

    #[test]
    fn latencies_match_figure2() {
        assert_eq!(gtx570().timings.l1_hit, 125);
        assert_eq!(gtx570().timings.l2_hit, 374);
        assert_eq!(tesla_k40().timings.l1_hit, 91);
        assert_eq!(tesla_k40().timings.l2_hit, 260);
        assert_eq!(gtx980().timings.l1_hit, 131);
        assert_eq!(gtx1080().timings.l2_hit, 260);
    }
}
