//! The discrete-event simulation engine.
//!
//! Each SM issues at most one warp instruction per cycle, picking the
//! ready warp with the earliest readiness (a greedy loose-round-robin
//! scheduler). Memory instructions walk the L1-sector → L2-bank → DRAM
//! hierarchy, mutating cache state at issue time and blocking the warp
//! until the slowest transaction returns, so latency hiding across warps
//! emerges naturally. SMs advance in global time order through a binary
//! heap, which keeps the shared L2/DRAM state causally consistent.
//!
//! The engine is event-driven end to end: SMs expose their earliest wake
//! time through per-SM lazily-cleaned heaps ([`SmState`]), the runner's
//! global heap orders SMs by that time, and each step jumps the SM's
//! issue clock straight to the event instead of polling idle cycles.
//! [`EngineMetrics`] counts the events, issues and skipped cycles so the
//! bench harness can assert the engine's conservation laws (every
//! dispatched warp retires; every retired CTA is polled for exactly one
//! replacement; issues equal retired instructions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cache::{Cache, CacheStats, ReadOutcome, SetProfile, WriteOutcome};
use crate::coalesce::coalesce_lines_into;
use crate::config::GpuConfig;
use crate::error::SimError;
use crate::kernel::{CacheOp, CtaContext, KernelSpec, MemAccess, Op};
use crate::memory::{Level, MemorySystem};
use crate::occupancy::occupancy;
use crate::program::{Cursor, ProgramBuilder};
use crate::sched::{CtaScheduler, HardwareLike};
use crate::sm::{ResidentCta, SmState, WarpState};
use crate::stats::{CtaPlacement, RunStats};
use crate::trace::{AccessEvent, TraceSink};
use crate::work::WorkModel;

/// Cycles between a CTA retiring and the GigaThread engine dispatching a
/// replacement into the freed slot.
const DISPATCH_LATENCY: u64 = 25;
/// Default deterministic seed for the hardware-like scheduler.
const DEFAULT_SEED: u64 = 0xC1A0_0017;

/// Engine-internal event accounting for one run. Purely observational:
/// the counters never feed back into simulated behavior, so metered and
/// unmetered runs produce identical [`RunStats`].
///
/// The fields obey conservation laws the harness checks in CI:
/// `issues == RunStats::instructions`, `warp_retires ==
/// warps_dispatched`, and `dispatch_polls == cta_retires ==
/// placements.len()` (every freed CTA slot is polled exactly once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// SM wake events processed (one per engine step).
    pub events: u64,
    /// Warp instructions issued.
    pub issues: u64,
    /// Idle cycles the issue clocks jumped over instead of polling:
    /// `Σ (event_time - sm_clock)` at issue, the cycles a cycle-stepped
    /// engine would have spun through.
    pub cycles_skipped: u64,
    /// Warps that entered an SM with a non-empty program.
    pub warps_dispatched: u64,
    /// Warps that ran their program to completion.
    pub warp_retires: u64,
    /// CTAs retired (equals the number of placements reported).
    pub cta_retires: u64,
    /// GigaThread dispatch polls consumed from freed CTA slots.
    pub dispatch_polls: u64,
    /// Deterministic work-model counters: the algorithmic work behind the
    /// wall time (coalescer paths, tag-scan chunks, victim scans, heap
    /// ops). See [`WorkModel`].
    pub work: WorkModel,
}

impl EngineMetrics {
    /// Emits the event counters onto a recorder under `{scope}` keys,
    /// mirroring [`RunStats::record_obs`].
    pub fn record_obs(&self, obs: &cta_obs::Obs, scope: &str) {
        obs.counter("engine/events", scope, self.events);
        obs.counter("engine/issues", scope, self.issues);
        obs.counter("engine/cycles_skipped", scope, self.cycles_skipped);
        obs.counter("engine/warps_dispatched", scope, self.warps_dispatched);
        obs.counter("engine/warp_retires", scope, self.warp_retires);
        obs.counter("engine/cta_retires", scope, self.cta_retires);
        obs.counter("engine/dispatch_polls", scope, self.dispatch_polls);
        self.work.record_obs(obs, scope);
    }

    /// Merge another run's accounting into this one, field by field
    /// (the shape `bench`'s matrix totals accumulate).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.events += other.events;
        self.issues += other.issues;
        self.cycles_skipped += other.cycles_skipped;
        self.warps_dispatched += other.warps_dispatched;
        self.warp_retires += other.warp_retires;
        self.cta_retires += other.cta_retires;
        self.dispatch_polls += other.dispatch_polls;
        self.work.absorb(&other.work);
    }

    /// Checks the engine's conservation laws against the finished run,
    /// returning the first violated law as `Err(description)`.
    ///
    /// # Errors
    ///
    /// A static description of the violated law — which would indicate an
    /// engine bug (lost warp, double-counted issue, leaked CTA slot).
    pub fn check_conservation(&self, stats: &RunStats) -> Result<(), &'static str> {
        if self.issues != stats.instructions {
            return Err("issues != instructions");
        }
        if self.warp_retires != self.warps_dispatched {
            return Err("warp_retires != warps_dispatched");
        }
        if self.cta_retires != stats.placements.len() as u64 {
            return Err("cta_retires != placements");
        }
        if self.dispatch_polls != self.cta_retires {
            return Err("dispatch_polls != cta_retires");
        }
        self.work.check_conservation()
    }
}

/// Configures and runs one kernel launch on one simulated GPU.
///
/// # Examples
///
/// ```
/// use gpu_sim::{arch, Simulation, LaunchConfig, KernelSpec, CtaContext, Program, Op, MemAccess};
///
/// struct Stream;
/// impl KernelSpec for Stream {
///     fn name(&self) -> String { "stream".into() }
///     fn launch(&self) -> LaunchConfig { LaunchConfig::new(64u32, 64u32) }
///     fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
///         let base = (ctx.cta * 2 + warp as u64) * 128;
///         vec![Op::Load(MemAccess::coalesced(0, base, 32, 4))]
///     }
/// }
///
/// let stats = Simulation::new(arch::gtx980(), &Stream).run()?;
/// assert!(stats.cycles > 0);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
pub struct Simulation<'k> {
    cfg: GpuConfig,
    kernel: &'k dyn KernelSpec,
    scheduler: Box<dyn CtaScheduler + 'k>,
    /// Enable per-set L1 profiling for the next run (set transiently by
    /// [`Simulation::run_profiled`]).
    profile_l1: bool,
}

impl<'k> std::fmt::Debug for Simulation<'k> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("gpu", &self.cfg.name)
            .field("kernel", &self.kernel.name())
            .field("scheduler", &self.scheduler.label())
            .finish()
    }
}

impl<'k> Simulation<'k> {
    /// Creates a simulation of `kernel` on `cfg` with the default
    /// hardware-like CTA scheduler.
    pub fn new(cfg: GpuConfig, kernel: &'k dyn KernelSpec) -> Self {
        Simulation {
            cfg,
            kernel,
            scheduler: Box::new(HardwareLike::new(DEFAULT_SEED)),
            profile_l1: false,
        }
    }

    /// Replaces the CTA-scheduler model (builder style).
    pub fn with_scheduler(mut self, scheduler: Box<dyn CtaScheduler + 'k>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Runs the kernel to completion.
    ///
    /// # Errors
    ///
    /// Propagates configuration/launch validation failures and runtime
    /// [`SimError`]s (barrier deadlock, scheduler starvation).
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        self.run_impl(None).map(|(stats, _, _)| stats)
    }

    /// Runs the kernel, forwarding every global-memory access to `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced(&mut self, sink: &mut dyn TraceSink) -> Result<RunStats, SimError> {
        self.run_impl(Some(sink)).map(|(stats, _, _)| stats)
    }

    /// Runs the kernel and additionally returns the engine's event
    /// accounting. The stats are identical to [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_metered(&mut self) -> Result<(RunStats, EngineMetrics), SimError> {
        self.run_impl(None)
            .map(|(stats, metrics, _)| (stats, metrics))
    }

    /// [`run_traced`](Self::run_traced) plus engine event accounting.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced_metered(
        &mut self,
        sink: &mut dyn TraceSink,
    ) -> Result<(RunStats, EngineMetrics), SimError> {
        self.run_impl(Some(sink))
            .map(|(stats, metrics, _)| (stats, metrics))
    }

    /// [`run_metered`](Self::run_metered) with per-set L1 profiling
    /// enabled, additionally returning the device-wide [`SetProfile`]
    /// (counters summed, installed-tag footprints unioned across every
    /// SM's sector arrays). The [`RunStats`] are identical to an
    /// unprofiled run — profiling observes, it never steers.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_profiled(&mut self) -> Result<(RunStats, EngineMetrics, SetProfile), SimError> {
        self.profile_l1 = true;
        let out = self.run_impl(None);
        self.profile_l1 = false;
        out.map(|(stats, metrics, profile)| {
            (
                stats,
                metrics,
                profile.expect("profiled run yields a profile"),
            )
        })
    }

    fn run_impl<'s>(
        &'s mut self,
        sink: Option<&'s mut dyn TraceSink>,
    ) -> Result<(RunStats, EngineMetrics, Option<SetProfile>), SimError> {
        self.cfg.validate()?;
        let launch = self.kernel.launch();
        launch.validate()?;
        let occ = occupancy(&self.cfg, &launch)?;
        let mut runner = Runner {
            cfg: &self.cfg,
            kernel: self.kernel,
            scheduler: &mut *self.scheduler,
            warps_per_cta: launch.warps_per_cta(self.cfg.warp_size),
            max_ctas: occ.ctas_per_sm,
            sms: Vec::new(),
            mem: MemorySystem::new(&self.cfg),
            sink,
            instructions: 0,
            horizon: 0,
            placements: Vec::new(),
            line_buf: Vec::with_capacity(64),
            program_pool: Vec::new(),
            metrics: EngineMetrics::default(),
            profile_l1: self.profile_l1,
        };
        runner.run(launch.num_ctas())
    }
}

/// What a memory op does, after cache-operator resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Atomic,
}

struct Runner<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a dyn KernelSpec,
    scheduler: &'a mut (dyn CtaScheduler + 'a),
    warps_per_cta: u32,
    max_ctas: u32,
    sms: Vec<SmState>,
    mem: MemorySystem,
    sink: Option<&'a mut dyn TraceSink>,
    instructions: u64,
    horizon: u64,
    placements: Vec<CtaPlacement>,
    /// Scratch for the coalescer: one buffer reused by every memory
    /// instruction of the run instead of a fresh `Vec` per access.
    line_buf: Vec<u64>,
    /// Retired warps' inline program buffers, recycled into the next
    /// dispatch via [`ProgramBuilder::with_buffer`].
    program_pool: Vec<Vec<Op>>,
    metrics: EngineMetrics,
    /// Enable per-set profiling on every L1 sector array at construction.
    profile_l1: bool,
}

impl<'a> Runner<'a> {
    fn run(
        &mut self,
        total_ctas: u64,
    ) -> Result<(RunStats, EngineMetrics, Option<SetProfile>), SimError> {
        self.scheduler.reset(total_ctas);
        self.sms = (0..self.cfg.num_sms)
            .map(|i| SmState::new(i, self.cfg, self.max_ctas, self.warps_per_cta))
            .collect();
        if self.profile_l1 {
            for sm in &mut self.sms {
                sm.enable_l1_set_profile();
            }
        }

        // Initial fill: one CTA per SM per round, like the GigaThread
        // engine's first-turnaround round-robin sweep.
        loop {
            let mut dispatched_any = false;
            for sm in 0..self.cfg.num_sms {
                if self.try_dispatch(sm, 0) {
                    dispatched_any = true;
                }
            }
            if !dispatched_any {
                break;
            }
        }

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for sm in &mut self.sms {
            if let Some(t) = sm.next_event() {
                let id = sm.id;
                heap.push(Reverse((t, id)));
                self.metrics.work.sm_heap_pushes += 1;
            }
        }

        while let Some(Reverse((t, sm_id))) = heap.pop() {
            let mut t_event = match self.sms[sm_id].next_event() {
                None => continue, // stale entry; SM went idle
                Some(actual) if actual > t => {
                    heap.push(Reverse((actual, sm_id)));
                    self.metrics.work.sm_heap_pushes += 1;
                    continue;
                }
                Some(actual) => actual,
            };
            // Step the popped SM for as long as it stays strictly ahead
            // of every queued SM in the heap's `(time, sm)` order — a
            // run of back-to-back events on one SM (the common case at
            // high occupancy) costs one heap pop, not one per event.
            loop {
                self.metrics.events += 1;
                self.step(sm_id, t_event)?;
                let Some(next) = self.sms[sm_id].next_event() else {
                    break;
                };
                if let Some(&Reverse(top)) = heap.peek() {
                    if (next, sm_id) >= top {
                        heap.push(Reverse((next, sm_id)));
                        self.metrics.work.sm_heap_pushes += 1;
                        break;
                    }
                }
                t_event = next;
            }
        }

        if self.scheduler.remaining() > 0 {
            return Err(SimError::SchedulerStarved {
                remaining: self.scheduler.remaining(),
            });
        }

        let stats = self.finish();
        for sm in &self.sms {
            self.metrics.work.ready_heap_pushes += sm.heap_pushes;
            for c in &sm.l1_sectors {
                self.metrics.work.l1.absorb(&c.work());
            }
        }
        self.metrics.work.l2.absorb(&self.mem.l2_work());
        let profile = if self.profile_l1 {
            let mut merged: Option<SetProfile> = None;
            for sm in &self.sms {
                if let Some(p) = sm.l1_set_profile() {
                    match &mut merged {
                        Some(m) => m.absorb(&p),
                        None => merged = Some(p),
                    }
                }
            }
            merged
        } else {
            None
        };
        Ok((stats, self.metrics, profile))
    }

    /// Attempts to dispatch one CTA into the lowest free slot of `sm_id`.
    fn try_dispatch(&mut self, sm_id: usize, now: u64) -> bool {
        let Some(slot) = self.sms[sm_id].free_slot() else {
            return false;
        };
        let Some(cta) = self.scheduler.next_for_sm(sm_id, now) else {
            return false;
        };
        let ctx = CtaContext {
            cta,
            sm_id,
            slot,
            arrival: self.sms[sm_id].dispatch_count,
            num_sms: self.cfg.num_sms,
        };
        let wpc = self.warps_per_cta;
        let mut live = 0u32;
        for w in 0..wpc {
            let buf = self.program_pool.pop().unwrap_or_default();
            let mut builder = ProgramBuilder::with_buffer(buf);
            self.kernel.warp_program_build(&ctx, w, &mut builder);
            let (program, spare) = builder.finish();
            if let Some(buf) = spare {
                self.program_pool.push(buf);
            }
            if program.is_empty() {
                program.recycle(&mut self.program_pool);
                continue;
            }
            live += 1;
            let idx = (slot * wpc + w) as usize;
            self.sms[sm_id].warps[idx] = Some(WarpState {
                cta_slot: slot,
                warp: w,
                program,
                pc: 0,
                cursor: Cursor::default(),
                ready_at: now,
                at_barrier: false,
            });
            self.sms[sm_id].wake(now, idx as u32);
        }
        self.metrics.warps_dispatched += live as u64;
        let sm = &mut self.sms[sm_id];
        sm.dispatch_count += 1;
        sm.ctas[slot as usize] = Some(ResidentCta {
            cta,
            warps_total: wpc,
            warps_done: wpc - live,
            barrier_count: 0,
            dispatched: now,
        });
        sm.account_warps(now, live as i64);
        if live == 0 {
            // Fully-throttled agent: retires immediately.
            self.retire_cta(sm_id, slot, now);
        }
        true
    }

    fn retire_cta(&mut self, sm_id: usize, slot: u32, now: u64) {
        let sm = &mut self.sms[sm_id];
        let resident = sm.ctas[slot as usize]
            .take()
            .expect("retiring a resident CTA");
        self.placements.push(CtaPlacement {
            cta: resident.cta,
            sm_id,
            slot,
            dispatched: resident.dispatched,
            retired: now,
        });
        self.horizon = self.horizon.max(now);
        self.metrics.cta_retires += 1;
        sm.heap_pushes += 1;
        sm.pending_dispatch.push(Reverse(now + DISPATCH_LATENCY));
    }

    /// Releases the barrier of the CTA in `slot` if every live warp has
    /// arrived.
    fn maybe_release_barrier(&mut self, sm_id: usize, slot: u32, now: u64) {
        let wpc = self.warps_per_cta;
        let sm = &mut self.sms[sm_id];
        let Some(cta) = sm.ctas[slot as usize].as_mut() else {
            return;
        };
        if cta.barrier_count == 0 || cta.barrier_count + cta.warps_done < cta.warps_total {
            return;
        }
        cta.barrier_count = 0;
        let mut finished: Vec<usize> = Vec::new();
        for w in 0..wpc {
            let idx = (slot * wpc + w) as usize;
            let Some(ws) = sm.warps[idx].as_mut() else {
                continue;
            };
            if !ws.at_barrier {
                continue;
            }
            ws.at_barrier = false;
            ws.ready_at = now + 1;
            if ws.pc >= ws.program.len() {
                finished.push(idx);
            } else {
                sm.heap_pushes += 1;
                sm.ready.push(Reverse((now + 1, idx as u32)));
            }
        }
        for idx in finished {
            self.retire_warp(sm_id, idx, now + 1);
        }
    }

    fn retire_warp(&mut self, sm_id: usize, warp_idx: usize, now: u64) {
        let sm = &mut self.sms[sm_id];
        let ws = sm.warps[warp_idx].take().expect("retiring a live warp");
        sm.account_warps(now, -1);
        self.horizon = self.horizon.max(now);
        self.metrics.warp_retires += 1;
        let slot = ws.cta_slot;
        ws.program.recycle(&mut self.program_pool);
        let done = {
            let cta = sm.ctas[slot as usize]
                .as_mut()
                .expect("warp belongs to a resident CTA");
            cta.warps_done += 1;
            cta.warps_done == cta.warps_total
        };
        if done {
            self.retire_cta(sm_id, slot, now);
        } else {
            self.maybe_release_barrier(sm_id, slot, now);
        }
    }

    /// One engine step for `sm_id` at its next event time `t_event`
    /// (the caller just computed it via [`SmState::next_event`]; passing
    /// it in avoids recomputing the heap minimum).
    fn step(&mut self, sm_id: usize, t_event: u64) -> Result<(), SimError> {
        // Dispatch polls that have come due. Drain order within one event
        // cannot matter: every due poll dispatches at the same clamped
        // time, and the scheduler hands out CTAs per-SM in sequence.
        while let Some(&Reverse(due)) = self.sms[sm_id].pending_dispatch.peek() {
            if due > t_event {
                break;
            }
            self.sms[sm_id].pending_dispatch.pop();
            self.metrics.dispatch_polls += 1;
            self.try_dispatch(sm_id, due.max(t_event));
        }

        let next = self.sms[sm_id].next_issuable();
        // Every path below invalidates the peeked wake entry — the warp
        // issues (new `ready_at`), parks at a barrier, or retires — so
        // popping it now saves the stale-entry check it would otherwise
        // cost on the next heap cleaning.
        if next.is_some() {
            self.sms[sm_id].ready.pop();
        }
        let Some((ready, warp_idx)) = next else {
            // Only barrier-parked warps remain: with uniform per-CTA
            // programs this cannot happen, so it indicates a malformed
            // kernel.
            if let Some(slot) = self.sms[sm_id]
                .ctas
                .iter()
                .position(|c| c.as_ref().is_some_and(|c| c.barrier_count > 0))
            {
                let cta = self.sms[sm_id].ctas[slot]
                    .as_ref()
                    .expect("checked above")
                    .cta;
                return Err(SimError::BarrierDeadlock { cta, sm_id });
            }
            return Ok(());
        };

        // A warp whose program is exhausted retires at its readiness time
        // (covers loads still in flight) without consuming an issue slot.
        {
            let ws = self.sms[sm_id].warps[warp_idx]
                .as_ref()
                .expect("issuable warp");
            if ws.pc >= ws.program.len() {
                self.retire_warp(sm_id, warp_idx, ready);
                return Ok(());
            }
        }

        let t = ready.max(self.sms[sm_id].clock);
        self.metrics.cycles_skipped += t - self.sms[sm_id].clock;
        self.sms[sm_id].clock = t + 1;
        self.instructions += 1;
        self.metrics.issues += 1;
        self.horizon = self.horizon.max(t + 1);

        // Split-borrow the SM so the warp, the L1 sectors and the shared
        // memory system can be used together.
        let sm = &mut self.sms[sm_id];
        let SmState {
            warps,
            l1_sectors,
            lsu_free,
            bypassed_reads,
            ..
        } = sm;
        let ws = warps[warp_idx].as_mut().expect("issuable warp");
        let slot = ws.cta_slot;
        let sector = (slot as usize) % l1_sectors.len();
        let op = ws.program.op_at(ws.cursor);
        ws.cursor = ws.program.advance(ws.cursor);
        ws.pc += 1;

        enum Outcome {
            Ready(u64),
            Barrier,
        }
        let outcome = match op {
            Op::Compute(c) => Outcome::Ready(t + 1 + *c as u64),
            Op::Barrier => Outcome::Barrier,
            Op::Load(a) | Op::Store(a) | Op::Atomic(a) => {
                let kind = match op {
                    Op::Load(_) => AccessKind::Load,
                    Op::Store(_) => AccessKind::Store,
                    _ => AccessKind::Atomic,
                };
                let (latency, served) = resolve_access(
                    self.cfg,
                    l1_sectors,
                    &mut self.mem,
                    lsu_free,
                    bypassed_reads,
                    a,
                    kind,
                    sector,
                    t,
                    &mut self.line_buf,
                    &mut self.metrics.work,
                );
                if let Some(sink) = self.sink.as_deref_mut() {
                    let cta = sm.ctas[slot as usize].as_ref().expect("resident").cta;
                    sink.record(&AccessEvent {
                        time: t,
                        sm_id,
                        slot,
                        cta,
                        warp: ws.warp,
                        tag: a.tag,
                        is_write: kind == AccessKind::Store,
                        is_atomic: kind == AccessKind::Atomic,
                        bytes_per_lane: a.bytes_per_lane,
                        addrs: &a.addrs,
                        latency,
                        served_by: served,
                    });
                }
                Outcome::Ready(t + latency)
            }
        };

        match outcome {
            Outcome::Ready(ready_at) => {
                ws.ready_at = ready_at;
                self.horizon = self.horizon.max(ready_at);
                sm.heap_pushes += 1;
                sm.ready.push(Reverse((ready_at, warp_idx as u32)));
            }
            Outcome::Barrier => {
                ws.at_barrier = true;
                ws.ready_at = t + 1;
                let cta = sm.ctas[slot as usize].as_mut().expect("resident");
                cta.barrier_count += 1;
                self.maybe_release_barrier(sm_id, slot, t);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> RunStats {
        let cycles = self.horizon.max(1);
        let mut l1 = CacheStats::default();
        let mut occ_integral = 0u64;
        let mut ctas_per_sm = Vec::with_capacity(self.sms.len());
        let mut per_sm_l1 = Vec::with_capacity(self.sms.len());
        let mut l1_bypass_per_sm = Vec::with_capacity(self.sms.len());
        for sm in &mut self.sms {
            sm.account_warps(cycles, 0);
            occ_integral += sm.occ_integral;
            let sm_l1 = sm.l1_stats();
            l1.absorb(&sm_l1);
            per_sm_l1.push(sm_l1);
            l1_bypass_per_sm.push(sm.bypassed_reads);
            ctas_per_sm.push(sm.dispatch_count);
        }
        let achieved_occupancy = occ_integral as f64
            / (cycles as f64 * self.cfg.warp_slots as f64 * self.cfg.num_sms as f64);
        self.placements
            .sort_by_key(|p| (p.dispatched, p.sm_id, p.slot));
        RunStats {
            kernel: self.kernel.name(),
            gpu: self.cfg.name.clone(),
            cycles,
            instructions: self.instructions,
            l1,
            per_sm_l1,
            l1_bypass_per_sm,
            l2: self.mem.l2_cache_stats(),
            memory: self.mem.stats,
            achieved_occupancy,
            ctas_per_sm,
            max_ctas_per_sm: self.max_ctas,
            placements: std::mem::take(&mut self.placements),
        }
    }
}

/// Claims the next load/store-unit slot at or after `t`: the LSU replays
/// the transactions of one warp access at one line per cycle.
fn lsu_slot(lsu_free: &mut u64, t: u64) -> u64 {
    let slot = t.max(*lsu_free);
    *lsu_free = slot + 1;
    slot
}

/// Resolves one warp-wide memory access against the hierarchy, returning
/// `(warp-visible latency, deepest serving level)`.
///
/// `line_buf` is caller-owned coalescer scratch, reused across every
/// access of the run.
#[allow(clippy::too_many_arguments)]
fn resolve_access(
    cfg: &GpuConfig,
    l1_sectors: &mut [Cache],
    mem: &mut MemorySystem,
    lsu_free: &mut u64,
    bypassed_reads: &mut u64,
    access: &MemAccess,
    kind: AccessKind,
    sector: usize,
    t: u64,
    line_buf: &mut Vec<u64>,
    work: &mut WorkModel,
) -> (u64, Level) {
    match kind {
        AccessKind::Store => {
            // Write-evict at L1 (when cached there), then forward the
            // touched L2 lines down. Stores retire through the write
            // buffer without blocking the warp.
            if cfg.l1_enabled && access.cache_op == CacheOp::CacheAll {
                work.note_shape(coalesce_lines_into(access, cfg.l1.line_bytes, line_buf));
                let l1 = &mut l1_sectors[sector];
                for &line in line_buf.iter() {
                    match l1.write(line, t) {
                        WriteOutcome::AllocateMiss { .. } => {
                            // Write-allocate fetch-on-write: the claimed
                            // way is in flight (`fill_done == u64::MAX`)
                            // until this fill lands, exactly like a load
                            // miss; without it a later read of the line
                            // would wait forever on the reservation.
                            let chunks = cfg.l2_txns_per_l1_miss() as u64;
                            let slot = lsu_slot(lsu_free, t);
                            let mut fill = slot;
                            for c in 0..chunks {
                                let chunk = line + c * cfg.l2.line_bytes as u64;
                                let (d, _) = mem.read_line(chunk, slot);
                                fill = fill.max(d);
                            }
                            l1.fill(line, fill);
                        }
                        WriteOutcome::Absorbed | WriteOutcome::Forwarded { .. } => {}
                    }
                }
            }
            work.note_shape(coalesce_lines_into(access, cfg.l2.line_bytes, line_buf));
            for &line in line_buf.iter() {
                let slot = lsu_slot(lsu_free, t);
                mem.write_line(line, slot);
            }
            (1, Level::L2)
        }
        AccessKind::Atomic => {
            work.note_shape(coalesce_lines_into(access, cfg.l2.line_bytes, line_buf));
            let mut done = t + 1;
            let mut level = Level::L2;
            for &line in line_buf.iter() {
                let slot = lsu_slot(lsu_free, t);
                let (d, l) = mem.atomic_line(line, slot);
                done = done.max(d);
                level = level.max(l);
            }
            (done - t, level)
        }
        AccessKind::Load => {
            let bypass = access.cache_op == CacheOp::BypassL1 || !cfg.l1_enabled;
            let (latency, level) = if bypass {
                work.note_shape(coalesce_lines_into(access, cfg.l2.line_bytes, line_buf));
                *bypassed_reads += line_buf.len() as u64;
                let mut done = t;
                let mut level = Level::L2;
                for &line in line_buf.iter() {
                    let slot = lsu_slot(lsu_free, t);
                    let (d, l) = mem.read_line(line, slot);
                    done = done.max(d);
                    level = level.max(l);
                }
                (done - t, level)
            } else {
                work.note_shape(coalesce_lines_into(access, cfg.l1.line_bytes, line_buf));
                let l1 = &mut l1_sectors[sector];
                let mut done = t + cfg.timings.l1_hit as u64;
                let mut level = Level::L1;
                let mut stall = 0u64;
                for &line in line_buf.iter() {
                    let slot = lsu_slot(lsu_free, t);
                    match l1.read(line, slot) {
                        ReadOutcome::Hit => {
                            done = done.max(slot + cfg.timings.l1_hit as u64);
                        }
                        ReadOutcome::HitReserved { ready_at } => {
                            done = done.max(ready_at);
                            level = level.max(Level::L2);
                        }
                        ReadOutcome::Miss { mshr_wait, .. } => {
                            // Fetch the whole L1 line in L2-line chunks
                            // (one 128B L1 miss = four 32B L2 transactions).
                            // Requests enter the L2 at their LSU slot time;
                            // an MSHR structural stall delays the warp's
                            // data return instead (replay model).
                            let chunks = cfg.l2_txns_per_l1_miss() as u64;
                            let mut fill = slot;
                            for c in 0..chunks {
                                let chunk = line + c * cfg.l2.line_bytes as u64;
                                let (d, l) = mem.read_line(chunk, slot);
                                fill = fill.max(d);
                                level = level.max(l);
                            }
                            stall = stall.max(mshr_wait);
                            l1.fill(line, fill);
                            done = done.max(fill);
                        }
                    }
                }
                (done - t + stall, level)
            };
            if access.cache_op == CacheOp::PrefetchL1 {
                // Fire-and-forget: the fill proceeds, the warp does not wait.
                (1, level)
            } else {
                (latency, level)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::dim::Dim3;
    use crate::kernel::{LaunchConfig, Program};
    use crate::sched::StrictRoundRobin;
    use crate::trace::VecSink;

    /// Every CTA's single warp loads the same shared line, then its own.
    struct SharedLine;
    impl KernelSpec for SharedLine {
        fn name(&self) -> String {
            "shared-line".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(60u32, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(1, 0x10_0000 + ctx.cta * 128, 32, 4)),
            ]
        }
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let mut sim = Simulation::new(arch::gtx570(), &SharedLine);
        let stats = sim.run().unwrap();
        assert_eq!(stats.placements.len(), 60);
        assert_eq!(stats.instructions, 120);
        assert!(stats.cycles > arch::gtx570().timings.dram as u64);
        // Every CTA dispatched exactly once across SMs.
        let total: u64 = stats.ctas_per_sm.iter().sum();
        assert_eq!(total, 60);
        // The shared line gives L1 or L2 reuse: far fewer DRAM reads than
        // total line touches.
        assert!(stats.memory.dram_reads < 4 * 60 + 8);
    }

    #[test]
    fn metered_run_obeys_conservation_laws() {
        let mut sim = Simulation::new(arch::gtx570(), &SharedLine);
        let (stats, metrics) = sim.run_metered().unwrap();
        metrics.check_conservation(&stats).unwrap();
        assert_eq!(metrics.issues, stats.instructions);
        assert_eq!(metrics.warps_dispatched, 60);
        assert_eq!(metrics.cta_retires, 60);
        // Memory-bound single-warp CTAs leave long idle gaps the engine
        // must jump over rather than poll through.
        assert!(metrics.cycles_skipped > 0);
        assert!(metrics.events >= metrics.issues + metrics.warp_retires);
        // Metered and plain runs simulate identically.
        let plain = Simulation::new(arch::gtx570(), &SharedLine).run().unwrap();
        assert_eq!(plain, stats);
    }

    #[test]
    fn strict_rr_places_cta_modulo_sm() {
        let cfg = arch::gtx570();
        let mut sim = Simulation::new(cfg.clone(), &SharedLine)
            .with_scheduler(Box::new(StrictRoundRobin::new()));
        let stats = sim.run().unwrap();
        for cta in 0..15u64 {
            assert_eq!(stats.sm_of(cta), Some(cta as usize % cfg.num_sms));
        }
    }

    #[test]
    fn trace_sink_sees_all_accesses() {
        let mut sink = VecSink::new();
        let mut sim = Simulation::new(arch::gtx980(), &SharedLine);
        let stats = sim.run_traced(&mut sink).unwrap();
        assert_eq!(sink.events.len() as u64, stats.instructions);
        assert!(sink.events.iter().all(|e| !e.is_write));
        assert!(sink.events.iter().any(|e| e.tag == 1));
    }

    /// A two-warp CTA with a barrier between two loads.
    struct WithBarrier;
    impl KernelSpec for WithBarrier {
        fn name(&self) -> String {
            "with-barrier".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(8u32, 64u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::coalesced(
                    0,
                    (ctx.cta * 2 + warp as u64) * 128,
                    32,
                    4,
                )),
                Op::Barrier,
                Op::Compute(10),
                Op::Barrier,
                Op::Store(MemAccess::coalesced(
                    1,
                    0x20_0000 + (ctx.cta * 2 + warp as u64) * 128,
                    32,
                    4,
                )),
            ]
        }
    }

    #[test]
    fn barriers_release_and_kernel_finishes() {
        let stats = Simulation::new(arch::tesla_k40(), &WithBarrier)
            .run()
            .unwrap();
        assert_eq!(stats.placements.len(), 8);
        assert!(stats.memory.l2_write_txns > 0);
    }

    /// Warps disagree on barrier count. Real hardware releases a barrier
    /// once all *live* (non-exited) threads arrive, so this still
    /// completes; the engine follows that semantics.
    struct UnevenBarriers;
    impl KernelSpec for UnevenBarriers {
        fn name(&self) -> String {
            "uneven-barriers".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(1u32, 64u32)
        }
        fn warp_program(&self, _ctx: &CtaContext, warp: u32) -> Program {
            if warp == 0 {
                vec![Op::Barrier, Op::Compute(1), Op::Barrier]
            } else {
                vec![Op::Barrier]
            }
        }
    }

    #[test]
    fn uneven_barriers_release_after_warp_exit() {
        let stats = Simulation::new(arch::gtx570(), &UnevenBarriers)
            .run()
            .unwrap();
        assert_eq!(stats.placements.len(), 1);
    }

    /// Temporal reuse: the second turnaround of CTAs on an SM hits in L1.
    struct TwoTurnarounds;
    impl KernelSpec for TwoTurnarounds {
        fn name(&self) -> String {
            "two-turnarounds".into()
        }
        fn launch(&self) -> LaunchConfig {
            // Fermi: 8 CTA slots/SM, 15 SMs -> 240 CTAs = 2 turnarounds.
            LaunchConfig::new(240u32, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            // Every CTA on the same SM reads the same per-SM line.
            vec![Op::Load(MemAccess::scalar(0, ctx.sm_id as u64 * 4096, 4))]
        }
    }

    #[test]
    fn temporal_inter_cta_reuse_hits_l1() {
        let stats = Simulation::new(arch::gtx570(), &TwoTurnarounds)
            .run()
            .unwrap();
        // 240 loads; at most ~15 compulsory misses (one per SM) plus a few
        // hit-reserved. Everything else must be an L1 hit.
        assert!(stats.l1.read_hits + stats.l1.read_reserved >= 240 - 16);
        assert!(stats.l1_hit_rate() > 0.9);
    }

    #[test]
    fn bypass_loads_skip_l1() {
        struct Bypass;
        impl KernelSpec for Bypass {
            fn name(&self) -> String {
                "bypass".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(4u32, 32u32)
            }
            fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
                vec![Op::Load(
                    MemAccess::coalesced(0, ctx.cta * 128, 32, 4).with_cache_op(CacheOp::BypassL1),
                )]
            }
        }
        let stats = Simulation::new(arch::gtx570(), &Bypass).run().unwrap();
        assert_eq!(stats.l1.reads, 0);
        assert!(stats.memory.l2_read_txns > 0);
    }

    #[test]
    fn disabled_l1_serves_from_l2() {
        let cfg = arch::gtx570().with_l1_disabled();
        let stats = Simulation::new(cfg, &SharedLine).run().unwrap();
        assert_eq!(stats.l1.reads, 0);
        assert!(stats.memory.l2_read_txns >= 120);
    }

    #[test]
    fn empty_programs_retire_immediately() {
        struct Empty;
        impl KernelSpec for Empty {
            fn name(&self) -> String {
                "empty".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(32u32, 32u32)
            }
            fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
                Vec::new()
            }
        }
        let stats = Simulation::new(arch::gtx570(), &Empty).run().unwrap();
        assert_eq!(stats.placements.len(), 32);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn achieved_occupancy_in_unit_range() {
        let stats = Simulation::new(arch::gtx1080(), &WithBarrier)
            .run()
            .unwrap();
        assert!(stats.achieved_occupancy > 0.0);
        assert!(stats.achieved_occupancy <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || Simulation::new(arch::gtx980(), &SharedLine).run().unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.placements, b.placements);
    }

    /// All CTAs read one shared line; on a sectored L1 the two CTA-slot
    /// sectors each take their own miss (no cross-sector reuse,
    /// paper §5.2-(6)-(2)).
    struct OneLine;
    impl KernelSpec for OneLine {
        fn name(&self) -> String {
            "one-line".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(32u32, 32u32)
        }
        fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
            vec![Op::Load(MemAccess::scalar(0, 0, 4)), Op::Compute(500)]
        }
    }

    #[test]
    fn sectored_l1_blocks_cross_sector_reuse() {
        // Maxwell: 2 sectors. Per SM, both sectors must miss once, so
        // misses ~= 2 per SM; on single-sector Fermi, ~1 per SM.
        let m = Simulation::new(arch::gtx980(), &OneLine).run().unwrap();
        let f = Simulation::new(arch::gtx570(), &OneLine).run().unwrap();
        let m_sms = m
            .placements
            .iter()
            .map(|p| p.sm_id)
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u64;
        let f_sms = f
            .placements
            .iter()
            .map(|p| p.sm_id)
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u64;
        assert!(
            m.l1.read_misses >= 2 * m_sms,
            "Maxwell misses {} for {} SMs",
            m.l1.read_misses,
            m_sms
        );
        assert!(
            f.l1.read_misses <= f_sms + 2,
            "Fermi misses {} for {} SMs",
            f.l1.read_misses,
            f_sms
        );
    }

    #[test]
    fn prefetch_is_nonblocking_and_fills_l1() {
        struct PrefetchThenLoad;
        impl KernelSpec for PrefetchThenLoad {
            fn name(&self) -> String {
                "prefetch-then-load".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(1u32, 32u32)
            }
            fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
                vec![
                    Op::Load(MemAccess::coalesced(0, 0, 32, 4).with_cache_op(CacheOp::PrefetchL1)),
                    Op::Compute(2000), // plenty of time for the fill
                    Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                ]
            }
        }
        let cfg = arch::gtx570();
        let mut sink = VecSink::new();
        let stats = Simulation::new(cfg.clone(), &PrefetchThenLoad)
            .run_traced(&mut sink)
            .unwrap();
        // The prefetch itself reports latency 1 (fire-and-forget).
        assert_eq!(sink.events[0].latency, 1);
        // The demand load afterwards hits in L1.
        assert!(
            sink.events[1].latency <= cfg.timings.l1_hit as u64 + 2,
            "demand load latency {}",
            sink.events[1].latency
        );
        assert!(stats.l1.read_hits >= 1);
    }

    #[test]
    fn grid_smaller_than_gpu() {
        struct Tiny;
        impl KernelSpec for Tiny {
            fn name(&self) -> String {
                "tiny".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(Dim3::linear(2), 32u32)
            }
            fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
                vec![Op::Load(MemAccess::scalar(0, ctx.cta * 64, 4))]
            }
        }
        let stats = Simulation::new(arch::gtx1080(), &Tiny).run().unwrap();
        assert_eq!(stats.placements.len(), 2);
    }

    /// Segment-delivered programs execute identically to owned ones: a
    /// kernel that hands the engine a shared `Arc<[Op]>` must produce the
    /// same stats as one generating the same ops per warp.
    struct SharedProgram(std::sync::Arc<[Op]>);
    impl KernelSpec for SharedProgram {
        fn name(&self) -> String {
            "shared-line".into() // same name: stats must be identical
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(60u32, 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
            SharedLine.warp_program(ctx, warp)
        }
        fn warp_program_arc(&self, ctx: &CtaContext, _warp: u32) -> Option<std::sync::Arc<[Op]>> {
            // Only CTA 0's program is position-independent here; deliver
            // it shared and let every other CTA fall back to generation.
            (ctx.cta == 0).then(|| self.0.clone())
        }
    }

    #[test]
    fn shared_segments_match_owned_programs() {
        let cta0: std::sync::Arc<[Op]> = vec![
            Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
            Op::Load(MemAccess::coalesced(1, 0x10_0000, 32, 4)),
        ]
        .into();
        let owned = Simulation::new(arch::gtx570(), &SharedLine).run().unwrap();
        let shared = Simulation::new(arch::gtx570(), &SharedProgram(cta0))
            .run()
            .unwrap();
        assert_eq!(owned, shared);
    }
}
