//! SGM — dense single-precision matrix multiply (Parboil `sgemm`).
//!
//! Parboil's register-blocked formulation: 128-thread CTAs (4 warps)
//! where each thread accumulates a 16x1 strip of C. In global-memory
//! terms the CTA walks B tiles indexed by `blockIdx.x` — shared down each
//! grid column (X-partitioning) — while its A strips stream.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "SGM",
    full_name: "sgemm",
    description: "Dense matrix-matrix multiplication",
    category: PaperCategory::Algorithm,
    warps_per_cta: 4,
    partition: PartitionHint::X,
    opt_agents: [7, 9, 8, 8],
    regs: [33, 53, 41, 46],
    smem: 512,
    source: "Parboil",
};

const TAG_A: u16 = 0;
const TAG_B: u16 = 1;
const TAG_C: u16 = 2;

/// The Parboil sgemm workload model.
#[derive(Debug, Clone)]
pub struct Sgemm {
    /// Grid tiles along X (B panels).
    pub grid_x: u32,
    /// Grid tiles along Y (A panels).
    pub grid_y: u32,
    /// Tiles along the contraction dimension.
    pub tiles_k: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Sgemm {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Sgemm {
            grid_x: 8,
            grid_y: 24,
            tiles_k: 12,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, tiles_k: u32) -> Self {
        Sgemm {
            grid_x,
            grid_y,
            tiles_k,
            regs: INFO.regs[0],
        }
    }

    fn b_row_words(&self) -> u64 {
        self.grid_x as u64 * 32
    }

    fn a_row_words(&self) -> u64 {
        self.tiles_k as u64 * 16
    }
}

impl KernelSpec for Sgemm {
    fn name(&self) -> String {
        format!("SGM({}x{}x{})", self.grid_y, self.tiles_k, self.grid_x)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 128u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        for kt in 0..self.tiles_k as u64 {
            // B panel tile (16 rows x 32 cols), indexed by bx and kt only:
            // shared by every CTA in the grid column. Warp w stages 4 rows.
            for r in 0..4u64 {
                let row = kt * 16 + warp as u64 * 4 + r;
                prog.push(read_words(
                    TAG_B,
                    row * self.b_row_words() + bx as u64 * 32,
                    32,
                ));
            }
            // A strip for this CTA's 128 output rows (streaming): warp w
            // reads its 32 rows' k-column strip, divergence folded into a
            // coalesced panel read of the pre-transposed A (Parboil stores
            // A column-major for exactly this reason).
            let a_row = by as u64 * 128 + warp as u64 * 32;
            prog.push(read_words(
                TAG_A,
                a_row * self.a_row_words() / 16 + kt * 32,
                32,
            ));
            prog.push(Op::Barrier);
            prog.push(Op::Compute(20));
            prog.push(Op::Barrier);
        }
        // C strip store.
        let c_row = by as u64 * 128 + warp as u64 * 32;
        prog.push(write_words(
            TAG_C,
            c_row * self.b_row_words() / 4 + bx as u64 * 32,
            32,
        ));
        prog
    }
}

impl Workload for Sgemm {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn occupancy_close_to_table2() {
        // Table 2 "CTAs": 7/9/12/8. Fermi: 32K/(33*128)=7 CTAs.
        let cfg = arch::gtx570();
        let s = Sgemm::for_arch(ArchGen::Fermi);
        assert_eq!(
            gpu_sim::occupancy(&cfg, &s.launch()).unwrap().ctas_per_sm,
            7
        );
        let cfg = arch::tesla_k40();
        let s = Sgemm::for_arch(ArchGen::Kepler);
        assert_eq!(
            gpu_sim::occupancy(&cfg, &s.launch()).unwrap().ctas_per_sm,
            9
        );
    }

    #[test]
    fn b_panels_shared_down_columns() {
        let s = Sgemm::new(4, 4, 2);
        let b = |cta| {
            s.warp_program(&ctx(cta), 1)
                .iter()
                .filter_map(|op| op.access())
                .filter(|a| a.tag == TAG_B)
                .flat_map(|a| a.addrs.clone())
                .collect::<Vec<_>>()
        };
        // (bx=2,by=0) is cta 2; (bx=2,by=3) is cta 14.
        assert_eq!(b(2), b(14));
        assert_ne!(b(2), b(3));
    }

    #[test]
    fn barrier_counts_uniform() {
        let s = Sgemm::new(2, 2, 5);
        for w in 0..4 {
            let n = s
                .warp_program(&ctx(0), w)
                .iter()
                .filter(|o| o.is_barrier())
                .count();
            assert_eq!(n, 10);
        }
    }
}
