//! L1 cache bypassing (paper §4.3-(II)).
//!
//! A complementary optimization to CTA-Clustering: streaming accesses are
//! rewritten to `ld.global.cg` (L2-only) so they stop contending for L1
//! capacity and MSHRs with the accesses that carry inter-CTA reuse.

use gpu_sim::{ArrayTag, CacheOp, CtaContext, KernelSpec, LaunchConfig, Program};

/// A kernel whose loads to selected arrays bypass the L1.
///
/// # Examples
///
/// ```
/// use cta_clustering::BypassKernel;
/// use gpu_kernels::Kmeans;
/// use gpu_sim::{arch, KernelSpec, Simulation};
///
/// // Bypass the streamed point array (tag 0), keep centroids in L1.
/// let kmn = BypassKernel::new(Kmeans::new(64, 16, 4), vec![0]);
/// let stats = Simulation::new(arch::gtx570(), &kmn).run()?;
/// assert!(stats.l1_hit_rate() > 0.0);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BypassKernel<K> {
    inner: K,
    tags: Vec<ArrayTag>,
}

impl<K: KernelSpec> BypassKernel<K> {
    /// Wraps `inner`, bypassing L1 for loads whose array tag is in
    /// `tags`.
    pub fn new(inner: K, tags: Vec<ArrayTag>) -> Self {
        BypassKernel { inner, tags }
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// Tags being bypassed.
    pub fn tags(&self) -> &[ArrayTag] {
        &self.tags
    }

    /// Rewrites cache-all loads of bypassed arrays to `ld.global.cg`.
    fn apply_bypass(&self, prog: &mut Program) {
        for op in prog {
            if let gpu_sim::Op::Load(access) = op {
                if access.cache_op == CacheOp::CacheAll && self.tags.contains(&access.tag) {
                    access.cache_op = CacheOp::BypassL1;
                }
            }
        }
    }
}

impl<K: KernelSpec> KernelSpec for BypassKernel<K> {
    fn name(&self) -> String {
        format!("BPS[{}]", self.inner.name())
    }

    fn launch(&self) -> LaunchConfig {
        self.inner.launch()
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = self.inner.warp_program(ctx, warp);
        self.apply_bypass(&mut prog);
        prog
    }

    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        self.inner.warp_program_into(ctx, warp, out);
        self.apply_bypass(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, MemAccess, Op};

    #[derive(Debug, Clone)]
    struct TwoArrays;

    impl KernelSpec for TwoArrays {
        fn name(&self) -> String {
            "two-arrays".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(4), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Load(MemAccess::scalar(0, ctx.cta * 4, 4)),
                Op::Load(MemAccess::scalar(1, ctx.cta * 4, 4)),
                Op::Store(MemAccess::scalar(0, ctx.cta * 4, 4)),
            ]
        }
    }

    fn ctx() -> CtaContext {
        CtaContext {
            cta: 0,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 1,
        }
    }

    #[test]
    fn only_selected_tags_bypass() {
        let k = BypassKernel::new(TwoArrays, vec![0]);
        let prog = k.warp_program(&ctx(), 0);
        match &prog[0] {
            Op::Load(a) => assert_eq!(a.cache_op, CacheOp::BypassL1),
            other => panic!("unexpected {other:?}"),
        }
        match &prog[1] {
            Op::Load(a) => assert_eq!(a.cache_op, CacheOp::CacheAll),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stores_are_untouched() {
        let k = BypassKernel::new(TwoArrays, vec![0]);
        let prog = k.warp_program(&ctx(), 0);
        match &prog[2] {
            Op::Store(a) => assert_eq!(a.cache_op, CacheOp::CacheAll),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_tag_list_is_identity() {
        let k = BypassKernel::new(TwoArrays, vec![]);
        assert_eq!(k.warp_program(&ctx(), 0), TwoArrays.warp_program(&ctx(), 0));
        assert_eq!(k.launch(), TwoArrays.launch());
    }
}
