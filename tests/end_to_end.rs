//! Cross-crate integration tests: the transforms preserve the kernel's
//! work exactly, place clusters where they promise, and behave
//! deterministically through the full simulator.

use cta_clustering::{AgentKernel, BypassKernel, Partition, RedirectionKernel};
use gpu_kernels::{suite, Workload};
use gpu_sim::{arch, ArchGen, KernelSpec, Simulation, VecSink};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Cloneable adapter over a boxed workload.
#[derive(Clone)]
struct Shared(Rc<Box<dyn Workload>>);

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({})", self.0.name())
    }
}

impl KernelSpec for Shared {
    fn name(&self) -> String {
        self.0.name()
    }
    fn launch(&self) -> gpu_sim::LaunchConfig {
        self.0.launch()
    }
    fn warp_program(&self, ctx: &gpu_sim::CtaContext, warp: u32) -> gpu_sim::Program {
        self.0.warp_program(ctx, warp)
    }
}

fn shared(abbr: &str, arch: ArchGen) -> Shared {
    Shared(Rc::new(suite::by_abbr(abbr, arch).expect("known workload")))
}

/// Multiset of (tag, address, is_write) touched during a run.
fn footprint(cfg: &gpu_sim::GpuConfig, kernel: &dyn KernelSpec) -> BTreeMap<(u16, u64, bool), u64> {
    let mut sink = VecSink::new();
    Simulation::new(cfg.clone(), &kernel)
        .run_traced(&mut sink)
        .expect("run");
    let mut map = BTreeMap::new();
    for e in &sink.events {
        for &a in &e.addrs {
            *map.entry((e.tag, a, e.is_write)).or_insert(0) += 1;
        }
    }
    map
}

#[test]
fn redirection_preserves_the_memory_footprint() {
    let cfg = arch::gtx570();
    let k = shared("DCT", ArchGen::Fermi);
    let rd = RedirectionKernel::new(k.clone(), Partition::x(k.launch().grid, 15).unwrap());
    assert_eq!(footprint(&cfg, &k), footprint(&cfg, &rd));
}

#[test]
fn agent_clustering_preserves_the_memory_footprint() {
    for (cfg, arch) in [
        (arch::gtx570(), ArchGen::Fermi),
        (arch::gtx980(), ArchGen::Maxwell),
    ] {
        let k = shared("HS", arch);
        let agents = AgentKernel::build(k.clone(), &cfg).unwrap();
        let base = footprint(&cfg, &k);
        let mut clustered = footprint(&cfg, &agents);
        // Remove the agent-id ticket traffic (dynamic binding only).
        clustered.retain(|(tag, _, _), _| *tag != u16::MAX);
        assert_eq!(base, clustered, "footprint must match on {}", cfg.name);
    }
}

#[test]
fn throttled_agents_still_execute_everything() {
    let cfg = arch::tesla_k40();
    let k = shared("SYK", ArchGen::Kepler);
    let agents = AgentKernel::build(k.clone(), &cfg)
        .unwrap()
        .with_active_agents(1)
        .unwrap();
    assert_eq!(footprint(&cfg, &k), footprint(&cfg, &agents));
}

#[test]
fn bypass_changes_routing_not_addresses() {
    let cfg = arch::gtx570();
    let k = shared("KMN", ArchGen::Fermi);
    let bypassed = BypassKernel::new(k.clone(), vec![0]);
    assert_eq!(footprint(&cfg, &k), footprint(&cfg, &bypassed));
    // But the L1 sees fewer reads.
    let base = Simulation::new(cfg.clone(), &k).run().unwrap();
    let byp = Simulation::new(cfg.clone(), &bypassed).run().unwrap();
    assert!(byp.l1.reads < base.l1.reads);
}

#[test]
fn agents_bind_every_cluster_to_its_own_sm() {
    let cfg = arch::gtx570();
    let k = shared("NN", ArchGen::Fermi);
    let agents = AgentKernel::build(k.clone(), &cfg).unwrap();
    let stats = Simulation::new(cfg.clone(), &agents).run().unwrap();
    // Every SM executed exactly MAX_AGENTS CTAs of the new kernel.
    for (sm, &count) in stats.ctas_per_sm.iter().enumerate() {
        assert_eq!(count, agents.max_agents() as u64, "SM {sm}");
    }
}

#[test]
fn transforms_are_deterministic_end_to_end() {
    let cfg = arch::gtx1080();
    let k = shared("IMD", ArchGen::Pascal);
    let run = || {
        let agents = AgentKernel::build(k.clone(), &cfg).unwrap();
        let stats = Simulation::new(cfg.clone(), &agents).run().unwrap();
        stats
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.l1, b.l1);
}

#[test]
fn simulations_are_byte_stable_across_worker_thread_counts() {
    // Flake-surface audit: nothing in the engine may depend on
    // wall-clock time or on which OS thread runs a simulation. Render
    // the full stats of a mixed batch under 1 and 8 `par_map` workers;
    // any hidden global or timing dependence shows up as a diff. (The
    // `Shared` Rc adapter is deliberately absent here — workloads are
    // built inside each worker, as a parallel harness would.)
    let presets = arch::all_presets();
    let jobs: Vec<(String, usize)> = ["MM", "NW", "BS", "KMN", "HS", "SYK", "DCT", "BFS"]
        .iter()
        .enumerate()
        .map(|(i, abbr)| (abbr.to_string(), i % presets.len()))
        .collect();
    let run_all = |threads: usize| -> Vec<String> {
        cluster_bench::par::par_map(&jobs, threads, |(abbr, pi)| {
            let cfg = presets[*pi].clone();
            let k = suite::by_abbr(abbr, cfg.arch).expect("known workload");
            let stats = Simulation::new(cfg, &k).run().unwrap();
            format!("{abbr}: {stats:?}")
        })
    };
    let serial = run_all(1);
    assert_eq!(serial, run_all(8), "stats must not depend on thread count");
    assert_eq!(serial, run_all(2));
}

#[test]
fn whole_table2_suite_runs_transformed_on_every_arch() {
    // Smoke coverage: every workload survives the agent transform on
    // every architecture (small instances for test speed).
    for cfg in arch::all_presets() {
        for abbr in ["KMN", "MM", "SYK", "NW", "BS", "BFS"] {
            let k = shared(abbr, cfg.arch);
            let cfg_k = cfg.prefer_l1(k.launch().smem_per_cta);
            let agents = AgentKernel::build(k, &cfg_k).unwrap();
            let stats = Simulation::new(cfg_k, &agents).run().unwrap();
            assert!(stats.cycles > 0, "{abbr} on {}", cfg.name);
        }
    }
}
