//! A fast, deterministic, non-cryptographic hasher for the analysis and
//! profiling hot paths.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which none of our internal maps need: keys are word addresses, array
//! tags and CTA ids derived from deterministic walks. Profiling the
//! `cta-analyzer` sweep showed the per-word `HashMap` traffic of the
//! locality profilers dominating wall-clock, most of it SipHash. This
//! module provides the rustc-style multiply-rotate hash (the `FxHash`
//! algorithm) as a drop-in replacement: one rotate, one xor and one
//! multiply per 8-byte chunk, with a fixed (unkeyed) initial state so
//! iteration-independent consumers stay deterministic across runs.
//!
//! Not suitable for untrusted input — every use site feeds
//! analyzer-generated keys only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash algorithm (`0x51_7c_c1_b7_27_22_0a_95` is
/// `2^64 / phi` rounded to odd, the classic Fibonacci-hashing constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: multiply-rotate over 8-byte chunks.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (fixed initial state, fully
/// deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(1u64), hash_of(2u64));
        // Consecutive keys must not collide (the map use case: word
        // addresses are consecutive).
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_tail_handling() {
        assert_ne!(hash_of("abc"), hash_of("abd"));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 3, 0]));
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(u16, u64), u32> = FxHashMap::default();
        m.insert((3, 17), 1);
        *m.entry((3, 17)).or_insert(0) += 1;
        assert_eq!(m[&(3, 17)], 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
