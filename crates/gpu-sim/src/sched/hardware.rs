//! The default, hardware-like scheduler model.

use super::CtaScheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GigaThread model matching the paper's empirical observations
/// (§3.1-(3)): mostly round-robin in the first wave but with occasional
/// out-of-order picks, and purely demand-driven afterwards (whichever SM
/// retires a CTA first gets the next one). The perturbation makes the
/// `cta % num_sms` assumption of redirection-based clustering *mostly but
/// not always* true — which is exactly why the paper's redirection scheme
/// underperforms its agent scheme on real silicon.
#[derive(Debug, Clone)]
pub struct HardwareLike {
    seed: u64,
    rng: StdRng,
    pending: Vec<u64>,
    cursor: usize,
    /// How far ahead of the queue head a perturbed pick may reach.
    window: usize,
    /// Probability that a dispatch picks inside the window instead of the
    /// head.
    swap_prob: f64,
}

impl HardwareLike {
    /// Creates the model with the paper-calibrated defaults
    /// (window 4, 25% perturbation).
    pub fn new(seed: u64) -> Self {
        Self::with_perturbation(seed, 4, 0.25)
    }

    /// Creates the model with explicit perturbation parameters.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `swap_prob` is outside `[0, 1]`.
    pub fn with_perturbation(seed: u64, window: usize, swap_prob: f64) -> Self {
        assert!(window > 0, "window must be at least 1");
        assert!(
            (0.0..=1.0).contains(&swap_prob),
            "swap_prob must be in [0, 1]"
        );
        HardwareLike {
            seed,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            cursor: 0,
            window,
            swap_prob,
        }
    }
}

impl CtaScheduler for HardwareLike {
    fn reset(&mut self, total_ctas: u64) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.pending = (0..total_ctas).collect();
        self.cursor = 0;
    }

    fn next_for_sm(&mut self, _sm_id: usize, _now: u64) -> Option<u64> {
        if self.cursor >= self.pending.len() {
            return None;
        }
        let left = self.pending.len() - self.cursor;
        let pick = if left > 1 && self.rng.gen_bool(self.swap_prob) {
            self.cursor + self.rng.gen_range(0..self.window.min(left))
        } else {
            self.cursor
        };
        self.pending.swap(self.cursor, pick);
        let c = self.pending[self.cursor];
        self.cursor += 1;
        Some(c)
    }

    fn remaining(&self) -> u64 {
        (self.pending.len() - self.cursor) as u64
    }

    fn label(&self) -> &'static str {
        "hardware-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mostly_but_not_exactly_in_order() {
        let mut s = HardwareLike::new(1);
        s.reset(1000);
        let got: Vec<_> = std::iter::from_fn(|| s.next_for_sm(0, 0)).collect();
        let in_place = got
            .iter()
            .enumerate()
            .filter(|(i, &c)| *i as u64 == c)
            .count();
        assert!(
            in_place > 500,
            "should be mostly RR, got {in_place}/1000 in place"
        );
        assert!(in_place < 1000, "must not be strict RR");
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut s = HardwareLike::new(seed);
            s.reset(64);
            std::iter::from_fn(|| s.next_for_sm(0, 0)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = HardwareLike::with_perturbation(0, 0, 0.5);
    }
}
