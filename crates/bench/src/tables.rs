//! Table 1 and Table 2 reproductions.

use crate::report::Table;
use gpu_sim::{occupancy, ArchGen};

/// Renders the paper's Table 1: experiment platforms.
pub fn table1() -> String {
    let mut t = Table::new(&[
        "GPUs",
        "Architecture",
        "CC.",
        "SMs",
        "Warp slots",
        "CTA slots",
        "L1(KB)",
        "L1 line",
        "L2(KB)",
        "L2 line",
        "Regs(K)",
        "SMem(KB)",
    ]);
    for cfg in gpu_sim::arch::all_presets() {
        t.row(vec![
            cfg.name.clone(),
            cfg.arch.to_string(),
            format!("{}.{}", cfg.compute_capability.0, cfg.compute_capability.1),
            cfg.num_sms.to_string(),
            cfg.warp_slots.to_string(),
            cfg.cta_slots.to_string(),
            (cfg.l1.size_bytes / 1024).to_string(),
            format!("{}B", cfg.l1.line_bytes),
            (cfg.l2.size_bytes / 1024).to_string(),
            format!("{}B", cfg.l2.line_bytes),
            (cfg.regs_per_sm / 1024).to_string(),
            (cfg.smem_per_sm / 1024).to_string(),
        ]);
    }
    t.render()
}

/// Renders the paper's Table 2: benchmark characteristics, with the
/// per-architecture baseline CTAs/SM computed by the occupancy model.
pub fn table2() -> String {
    let mut t = Table::new(&[
        "abbr",
        "Application",
        "Category",
        "WP",
        "CTAs(F/K/M/P)",
        "Regs(F/K/M/P)",
        "SMem",
        "Partition",
        "OptAgents(F/K/M/P)",
        "Ref",
    ]);
    let archs = ArchGen::ALL;
    for w in gpu_kernels::suite::table2_suite(ArchGen::Fermi) {
        let info = w.info();
        let ctas: Vec<String> = archs
            .iter()
            .map(|&a| {
                let cfg = gpu_sim::arch::preset_for(a);
                let wa = gpu_kernels::suite::by_abbr(info.abbr, a).expect("known");
                occupancy(&cfg, &wa.launch())
                    .map(|o| o.ctas_per_sm.to_string())
                    .unwrap_or_else(|_| "-".into())
            })
            .collect();
        t.row(vec![
            info.abbr.to_string(),
            info.full_name.to_string(),
            info.category.to_string(),
            info.warps_per_cta.to_string(),
            ctas.join("/"),
            info.regs.map(|r| r.to_string()).join("/"),
            format!("{}B", info.smem),
            info.partition.to_string(),
            info.opt_agents.map(|a| a.to_string()).join("/"),
            info.source.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_platforms() {
        let s = table1();
        for name in ["GTX570", "Tesla K40", "GTX980", "GTX1080"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("128B"));
        assert!(s.contains("32B"));
    }

    #[test]
    fn table2_has_23_rows() {
        let s = table2();
        assert_eq!(s.lines().count(), 2 + 23);
        assert!(s.contains("KMN"));
        assert!(s.contains("BlackScholes"));
        assert!(s.contains("PolyBench"));
    }
}
