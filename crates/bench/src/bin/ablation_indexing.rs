//! Ablation of the CTA indexing method (paper Figure 7 / §5.2-(6)-(1)):
//! row-major, column-major and tile-wise partitioning applied to matrix
//! multiplication and syrk on Fermi.
//!
//! The paper observes that tile-wise indexing shrinks MM's reuse distance
//! (better hit rate, fewer L2 transactions) but its "complex indexing
//! calculation leads to significant overhead, bringing little performance
//! benefit".

use cluster_bench::par::{self, par_map};
use cluster_bench::report::{ratio, Table};
use cluster_bench::{configured_threads, RunClock};
use cta_clustering::{AgentKernel, ClusterError, Indexing, Partition};
use gpu_kernels::{MatrixMul, Syrk};
use gpu_sim::{arch, KernelSpec, Simulation};

const INDEXINGS: [(&str, Indexing); 4] = [
    ("row-major (Y-P)", Indexing::RowMajor),
    ("col-major (X-P)", Indexing::ColMajor),
    (
        "tile 2x2",
        Indexing::Tile {
            tile_x: 2,
            tile_y: 2,
        },
    ),
    (
        "tile 4x4",
        Indexing::Tile {
            tile_x: 4,
            tile_y: 4,
        },
    ),
];

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("ablation_indexing", run)
}

fn run() -> Result<(), ClusterError> {
    let cfg = arch::gtx570().prefer_l1(8192);
    let threads = configured_threads();
    let clock = RunClock::start(threads);
    println!(
        "CTA indexing ablation on {} (agent-based clustering)",
        cfg.name
    );
    println!();

    let kernels: Vec<(&str, Box<dyn KernelClone>)> = vec![
        ("MM(10x10x10)", Box::new(MatrixMul::new(10, 10, 10))),
        ("SYK(4x32)", Box::new(Syrk::new(4, 32))),
    ];

    // Every (kernel, indexing) cell plus each kernel's baseline is an
    // independent simulation: fan all of them across the worker pool.
    let jobs: Vec<(usize, Option<Indexing>)> = kernels
        .iter()
        .enumerate()
        .flat_map(|(k, _)| {
            std::iter::once((k, None))
                .chain(INDEXINGS.iter().map(move |(_, ix)| (k, Some(ix.clone()))))
        })
        .collect();
    let stats: Vec<gpu_sim::RunStats> = par_map(&jobs, threads, |(k, indexing)| {
        let t0 = std::time::Instant::now();
        let s = match indexing {
            None => kernels[*k].1.run_baseline(&cfg),
            Some(ix) => kernels[*k].1.run_clustered(&cfg, ix.clone()),
        };
        par::record_busy(t0.elapsed());
        s.map_err(|e| {
            ClusterError::harness(format!(
                "{} with indexing {:?}: {e}",
                kernels[*k].0, indexing
            ))
        })
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let per_kernel = 1 + INDEXINGS.len();
    for (k, (name, _)) in kernels.iter().enumerate() {
        let base = &stats[k * per_kernel];
        println!("--- {name} (baseline: {} cycles) ---", base.cycles);
        let mut t = Table::new(&["indexing", "speedup", "L2 txns", "L1 hit rate"]);
        for (i, (label, _)) in INDEXINGS.iter().enumerate() {
            let s = &stats[k * per_kernel + 1 + i];
            t.row(vec![
                (*label).into(),
                ratio(s.speedup_vs(base)),
                format!("{:.2}", s.l2_txns_vs(base)),
                format!("{:.0}%", 100.0 * s.l1_hit_rate()),
            ]);
        }
        print!("{t}");
        println!();
    }
    println!("{}", clock.footer());
    Ok(())
}

/// Object-safe helper so the two differently-typed kernels share the loop
/// (`Sync` so the worker pool can share the table of kernels).
trait KernelClone: Sync {
    fn run_baseline(&self, cfg: &gpu_sim::GpuConfig) -> Result<gpu_sim::RunStats, ClusterError>;
    fn run_clustered(
        &self,
        cfg: &gpu_sim::GpuConfig,
        indexing: Indexing,
    ) -> Result<gpu_sim::RunStats, ClusterError>;
}

impl<K: KernelSpec + Clone + Sync> KernelClone for K {
    fn run_baseline(&self, cfg: &gpu_sim::GpuConfig) -> Result<gpu_sim::RunStats, ClusterError> {
        Ok(Simulation::new(cfg.clone(), self).run()?)
    }
    fn run_clustered(
        &self,
        cfg: &gpu_sim::GpuConfig,
        indexing: Indexing,
    ) -> Result<gpu_sim::RunStats, ClusterError> {
        let partition = Partition::new(self.launch().grid, cfg.num_sms as u64, indexing)?;
        let agents = AgentKernel::with_partition(self.clone(), cfg, partition)?;
        let stats = Simulation::new(cfg.clone(), &agents).run()?;
        Ok(stats)
    }
}
