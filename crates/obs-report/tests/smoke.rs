//! End-to-end tests for the `obs-report` binary: the smoke export is
//! byte-identical across worker-thread counts, the validator accepts
//! what the smoke run emits and rejects tampered documents, and the
//! documented exit codes hold.

use std::process::{Command, Output};

fn obs_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs-report"))
        .args(args)
        .output()
        .expect("spawn obs-report")
}

#[test]
fn smoke_jsonl_is_byte_identical_across_thread_counts() {
    let golden = obs_report(&["--smoke", "--jsonl-stdout", "--threads", "1"]);
    assert!(
        golden.status.success(),
        "single-threaded smoke failed:\n{}",
        String::from_utf8_lossy(&golden.stderr)
    );
    let text = String::from_utf8(golden.stdout.clone()).expect("UTF-8");
    cta_obs::validate(&text).expect("smoke export validates");
    assert!(
        text.contains("\"name\":\"sim/l1_reads\""),
        "per-SM cache counters present"
    );
    assert!(
        text.contains("\"name\":\"locality/reuse_distance\""),
        "reuse-distance histograms present"
    );
    assert!(!text.contains("time/"), "wall-clock stays out of the JSONL");

    for threads in ["2", "8"] {
        let out = obs_report(&["--smoke", "--jsonl-stdout", "--threads", threads]);
        assert!(out.status.success(), "smoke failed with {threads} threads");
        assert_eq!(
            out.stdout, golden.stdout,
            "JSONL differs between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn check_accepts_valid_and_rejects_tampered_documents() {
    let dir = std::env::temp_dir().join(format!("obs-report-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let run = obs_report(&["--smoke", "--out", dir.to_str().unwrap()]);
    assert!(
        run.status.success(),
        "smoke run failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let report = String::from_utf8_lossy(&run.stdout).to_string();
    assert!(report.contains("## counters"), "report renders tables");
    assert!(report.contains("sim/l1_reads"), "cache metrics in report");

    let jsonl_path = dir.join("obs-report.jsonl");
    let trace_path = dir.join("obs-report.trace.json");
    let check = obs_report(&["--check", jsonl_path.to_str().unwrap()]);
    assert!(check.status.success(), "written export must validate");

    // The Chrome trace is a single well-formed JSON document.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let doc = cta_obs::parse_json(&trace).expect("trace parses");
    assert!(doc.get("traceEvents").is_some(), "trace_event envelope");

    // Tamper with a counter: the declared header counts no longer match.
    let text = std::fs::read_to_string(&jsonl_path).expect("read export");
    let tampered = text.replacen("\"t\":\"counter\"", "\"t\":\"bogus\"", 1);
    let bad_path = dir.join("tampered.jsonl");
    std::fs::write(&bad_path, tampered).expect("write tampered");
    let bad = obs_report(&["--check", bad_path.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1), "tampered export must fail");

    // --input renders the same report from the file as --smoke printed.
    let input = obs_report(&["--input", jsonl_path.to_str().unwrap()]);
    assert!(input.status.success());
    assert_eq!(String::from_utf8_lossy(&input.stdout), report);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_code_two() {
    assert_eq!(obs_report(&[]).status.code(), Some(2));
    assert_eq!(obs_report(&["--bogus"]).status.code(), Some(2));
    assert_eq!(
        obs_report(&["--smoke", "--threads", "0"]).status.code(),
        Some(2)
    );
    assert_eq!(
        obs_report(&["--check", "/no/such/file.jsonl"])
            .status
            .code(),
        Some(2)
    );
}
