//! # cta-clustering
//!
//! The core contribution of *"Locality-Aware CTA Clustering for Modern
//! GPUs"* (ASPLOS 2017): software-only transforms that reshape the
//! default CTA scheduling so that CTAs with mutual inter-CTA locality
//! execute concurrently or consecutively on the same SM, where the L1 (or
//! L1/Tex unified) cache can serve their shared data.
//!
//! CTA-Clustering finds the mapping `N → O` (new kernel to original
//! kernel) in three steps:
//!
//! 1. **Partitioning** `f : O → C` ([`Partition`], Eqs. 3–5) — split the
//!    original CTAs into `M` balanced clusters under a locality-preserving
//!    CTA indexing ([`Indexing`]: row-major/Y-P, column-major/X-P,
//!    tile-wise, or custom).
//! 2. **Inverting** `f⁻¹ : C → O` ([`Partition::invert`], Eqs. 6–7) —
//!    recover the original CTA id from a cluster coordinate `(w, i)`.
//! 3. **Binding** `g : N → C` — either assume round-robin hardware
//!    dispatch ([`rr_binding`], used by [`RedirectionKernel`]) or read the
//!    physical SM id at run time ([`AgentKernel`], which circumvents the
//!    GigaThread engine entirely with persistent agent CTAs).
//!
//! Complementary optimizations: CTA throttling
//! ([`AgentKernel::with_active_agents`]), L1 bypassing of streaming
//! arrays ([`BypassKernel`]), and cross-CTA prefetching over the reshaped
//! order ([`AgentKernel::with_prefetch`]). The [`Framework`] automates
//! the whole pipeline of the paper's Figure 11.
//!
//! ## Quick start
//!
//! ```
//! use cta_clustering::{AgentKernel, Partition};
//! use gpu_kernels::MatrixMul;
//! use gpu_sim::{arch, KernelSpec, Simulation};
//!
//! let cfg = arch::tesla_k40();
//! let mm = MatrixMul::new(6, 6, 6);
//!
//! // Baseline.
//! let base = Simulation::new(cfg.clone(), &mm).run()?;
//!
//! // Cluster CTAs sharing matrix-A rows (Y-partitioning) onto one SM.
//! let partition = Partition::y(mm.launch().grid, cfg.num_sms as u64)?;
//! let clustered = AgentKernel::with_partition(mm, &cfg, partition)?;
//! let opt = Simulation::new(cfg, &clustered).run()?;
//!
//! println!(
//!     "speedup {:.2}x, L2 transactions {:.0}%",
//!     opt.speedup_vs(&base),
//!     100.0 * opt.l2_txns_vs(&base),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent;
mod bind;
mod bypass;
mod error;
mod framework;
mod partition;
pub mod protocol;
mod redirect;

pub use agent::AgentKernel;
pub use bind::{rr_binding, rr_unbinding, BindingScheme};
pub use bypass::BypassKernel;
pub use error::ClusterError;
pub use framework::{clamp_active_agents, Analysis, Axis, Framework, Plan};
pub use partition::{Indexing, Partition};
pub use protocol::{BindingMode, ProtocolSpec};
pub use redirect::RedirectionKernel;
