//! The recorder: per-thread sinks behind a shared registry.
//!
//! Each thread records into its own sink — a counter map, a histogram
//! map, and a bounded ring buffer of span events — so the hot path never
//! contends on a shared lock (the same "each worker owns its slot"
//! pattern as `cluster_bench::par`). A sink *is* mutex-protected, but the
//! mutex is only ever contended at snapshot time, when the merging thread
//! walks the registry; during recording the owning thread takes an
//! uncontended lock.
//!
//! Wall-clock timestamps are captured for the Chrome exporter only; the
//! deterministic JSONL exporter works purely off logical content
//! (counter sums, histogram buckets, span structure), which is why
//! snapshots merge byte-identically regardless of thread count.

use crate::hist::Hist;
use crate::snapshot::Snapshot;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread span-event ring capacity. Spans are recorded per
/// job, not per access, so even the full figure matrix stays far below
/// this; overflow drops the *oldest* events and is surfaced as a
/// structured [`crate::ObsError::DroppedEvents`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Whether a span event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One raw span event as recorded by a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span label (unique per unit of work by convention, e.g.
    /// `GTX570/MM/CLU`).
    pub name: String,
    /// Begin or end.
    pub kind: SpanKind,
    /// Nanoseconds since the recorder's epoch (monotonic).
    pub ts_ns: u64,
    /// Per-thread sequence number (strictly increasing).
    pub seq: u64,
}

/// Everything one thread has recorded.
#[derive(Debug, Default)]
pub(crate) struct ThreadState {
    pub counters: HashMap<(String, String), u64>,
    pub hists: HashMap<(String, String), Hist>,
    pub ring: VecDeque<SpanEvent>,
    pub dropped: u64,
    pub seq: u64,
}

/// One thread's sink: an index (registration order) plus its state.
#[derive(Debug)]
pub(crate) struct ThreadSink {
    pub index: u32,
    pub state: Mutex<ThreadState>,
}

#[derive(Debug)]
struct Shared {
    id: u64,
    capacity: usize,
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadSink>>>,
    next_thread: AtomicU32,
}

static NEXT_OBS_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's sinks, keyed by recorder id. A thread typically
    /// talks to one recorder (the global one); tests may hold a few.
    static SINKS: RefCell<Vec<(u64, Arc<ThreadSink>)>> = const { RefCell::new(Vec::new()) };
}

/// A telemetry recorder. Cheap to clone (shared handle); all methods are
/// `&self` and callable from any thread.
#[derive(Debug, Clone)]
pub struct Obs {
    shared: Arc<Shared>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A recorder with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose per-thread span rings hold `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Obs {
            shared: Arc::new(Shared {
                id: NEXT_OBS_ID.fetch_add(1, Ordering::Relaxed),
                capacity: capacity.max(2),
                epoch: Instant::now(),
                threads: Mutex::new(Vec::new()),
                next_thread: AtomicU32::new(0),
            }),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut ThreadState, u64) -> R) -> R {
        let sink = SINKS.with(|sinks| {
            let mut sinks = sinks.borrow_mut();
            if let Some((_, s)) = sinks.iter().find(|(id, _)| *id == self.shared.id) {
                return Arc::clone(s);
            }
            let sink = Arc::new(ThreadSink {
                index: self.shared.next_thread.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(ThreadState::default()),
            });
            self.shared
                .threads
                .lock()
                .expect("thread registry")
                .push(Arc::clone(&sink));
            sinks.push((self.shared.id, Arc::clone(&sink)));
            sink
        });
        let ts_ns = self.shared.epoch.elapsed().as_nanos() as u64;
        let mut state = sink.state.lock().expect("own sink");
        f(&mut state, ts_ns)
    }

    /// Adds `delta` to the counter `(name, key)`.
    ///
    /// Counters are summed across threads at snapshot time, so any
    /// attribution (scope, SM id, cluster id) belongs in `key`. Metric
    /// names starting with `time/` hold wall-clock quantities and are
    /// excluded from the deterministic JSONL export.
    pub fn counter(&self, name: &str, key: &str, delta: u64) {
        self.with_state(|state, _| {
            *state
                .counters
                .entry((name.to_string(), key.to_string()))
                .or_insert(0) += delta;
        });
    }

    /// Records `sample` into the histogram `(name, key)`.
    pub fn hist(&self, name: &str, key: &str, sample: u64) {
        self.with_state(|state, _| {
            state
                .hists
                .entry((name.to_string(), key.to_string()))
                .or_default()
                .record(sample);
        });
    }

    /// Merges a pre-accumulated histogram into `(name, key)` — one call
    /// per flush instead of one per sample, for sinks that aggregate
    /// locally during a hot loop.
    pub fn hist_absorb(&self, name: &str, key: &str, h: &Hist) {
        self.with_state(|state, _| {
            state
                .hists
                .entry((name.to_string(), key.to_string()))
                .or_default()
                .absorb(h);
        });
    }

    /// Opens a span explicitly. Prefer [`Obs::span`]; use the explicit
    /// form only where the region does not match a lexical scope.
    pub fn span_begin(&self, name: &str) {
        self.push_span(name, SpanKind::Begin);
    }

    /// Closes a span opened with [`Obs::span_begin`]. Mismatched or
    /// missing ends are *not* panics: the merge reports them as
    /// structured [`crate::ObsError`]s in the snapshot.
    pub fn span_end(&self, name: &str) {
        self.push_span(name, SpanKind::End);
    }

    fn push_span(&self, name: &str, kind: SpanKind) {
        let capacity = self.shared.capacity;
        self.with_state(|state, ts_ns| {
            if state.ring.len() >= capacity {
                state.ring.pop_front();
                state.dropped += 1;
            }
            let seq = state.seq;
            state.seq += 1;
            state.ring.push_back(SpanEvent {
                name: name.to_string(),
                kind,
                ts_ns,
                seq,
            });
        });
    }

    /// Opens a span closed automatically when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let name = name.into();
        self.span_begin(&name);
        SpanGuard {
            obs: Some(self.clone()),
            name,
        }
    }

    /// Merges every thread's sink into a [`Snapshot`]. Non-destructive:
    /// recording may continue afterwards (events recorded concurrently
    /// with the merge land in later snapshots).
    pub fn snapshot(&self) -> Snapshot {
        let threads = self.shared.threads.lock().expect("thread registry");
        let mut per_thread: Vec<(u32, ThreadState)> = threads
            .iter()
            .map(|sink| {
                let s = sink.state.lock().expect("sink state");
                (
                    sink.index,
                    ThreadState {
                        counters: s.counters.clone(),
                        hists: s.hists.clone(),
                        ring: s.ring.clone(),
                        dropped: s.dropped,
                        seq: s.seq,
                    },
                )
            })
            .collect();
        per_thread.sort_by_key(|(i, _)| *i);
        Snapshot::merge(per_thread)
    }
}

/// RAII guard for a span: ends it on drop. A disabled (no-op) guard is
/// what the crate-level [`crate::span`] helper returns when telemetry is
/// off.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Option<Obs>,
    name: String,
}

impl SpanGuard {
    /// A guard that records nothing (telemetry disabled).
    pub fn noop() -> Self {
        SpanGuard {
            obs: None,
            name: String::new(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(obs) = &self.obs {
            obs.span_end(&self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let obs = Obs::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        obs.counter("sim/reads", "sm0", 1);
                    }
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter("sim/reads", "sm0"), 400);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let obs = Obs::with_capacity(4);
        for i in 0..6 {
            obs.span_begin(&format!("s{i}"));
            obs.span_end(&format!("s{i}"));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.dropped, 8); // 12 events into a 4-slot ring
        assert!(snap
            .errors
            .iter()
            .any(|e| matches!(e, crate::ObsError::DroppedEvents { .. })));
    }

    #[test]
    fn guard_closes_span() {
        let obs = Obs::new();
        {
            let _g = obs.span("job");
            obs.counter("inside", "", 1);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.span_count("job"), 1);
        assert!(snap.errors.is_empty());
    }

    #[test]
    fn noop_guard_is_inert() {
        let _g = SpanGuard::noop();
    }
}
