//! Regenerates every table and figure in sequence (the full artifact
//! run). Expect a few minutes in release mode.

use std::process::Command;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in [
        "table1_platforms",
        "table2_benchmarks",
        "fig2_microbench",
        "fig3_reuse",
        "fig12_speedup",
        "fig13_cache",
    ] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    // Each child bin reports its own busy-time speedup; the children all
    // read CLUSTER_BENCH_THREADS from this process's environment.
    println!(
        "\ntotal elapsed {:.2}s wall across all bins ({} worker thread{} per bin)",
        t0.elapsed().as_secs_f64(),
        cluster_bench::configured_threads(),
        if cluster_bench::configured_threads() == 1 { "" } else { "s" },
    );
}
