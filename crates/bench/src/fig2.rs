//! Figure 2 reproduction: the Listing 3 microbenchmark demonstrating
//! temporal and spatial inter-CTA locality on L1.

use cta_clustering::ClusterError;
use gpu_kernels::Microbench;
use gpu_sim::{GpuConfig, Simulation, TraceSink, VecSink};

/// One plotted point: a CTA that ran on the observed SM and its measured
/// access delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaLatency {
    /// CTA id (the x-axis of Figure 2).
    pub cta: u64,
    /// Measured global-load delay in cycles (the y-axis).
    pub cycles: u64,
}

/// The data behind one Figure 2 panel.
#[derive(Debug, Clone)]
pub struct MicrobenchPanel {
    /// GPU name.
    pub gpu: String,
    /// Whether this is the staggered (spatial) variant.
    pub staggered: bool,
    /// CTAs launched.
    pub ctas: u32,
    /// The SM that executed CTA 0 (the paper's "SM 0").
    pub observed_sm: usize,
    /// Latency of every CTA dispatched to that SM, in dispatch order.
    pub series: Vec<CtaLatency>,
    /// Configured L1 hit latency (plateau annotation).
    pub l1_latency: u32,
    /// Configured L2 hit latency (plateau annotation).
    pub l2_latency: u32,
}

impl MicrobenchPanel {
    /// CTAs whose delay is within 20% of the L1 plateau.
    pub fn l1_class(&self) -> usize {
        self.series
            .iter()
            .filter(|p| p.cycles <= (self.l1_latency as u64 * 6) / 5)
            .count()
    }

    /// CTAs slower than the L2 plateau (off-chip or hit-reserved).
    pub fn slow_class(&self) -> usize {
        self.series
            .iter()
            .filter(|p| p.cycles > self.l2_latency as u64)
            .count()
    }
}

/// Runs the microbenchmark on `cfg` and extracts the per-CTA latency
/// series of the SM that held CTA 0, as the paper's Figure 2 plots it.
pub fn run_panel(
    cfg: &GpuConfig,
    turnarounds: u32,
    staggered: bool,
) -> Result<MicrobenchPanel, ClusterError> {
    let mb = Microbench::for_gpu(cfg, turnarounds, staggered);
    let mut sink = VecSink::new();
    let stats = Simulation::new(cfg.clone(), &mb)
        .run_traced(&mut sink)
        .map_err(|e| {
            ClusterError::harness(format!(
                "microbenchmark run on {} (turnarounds {turnarounds}, staggered {staggered}): {e}",
                cfg.name
            ))
        })?;
    let observed_sm = stats
        .sm_of(0)
        .ok_or_else(|| ClusterError::harness(format!("CTA 0 never ran on {}", cfg.name)))?;
    let mut series: Vec<CtaLatency> = sink
        .events
        .iter()
        .filter(|e| e.sm_id == observed_sm)
        .map(|e| CtaLatency {
            cta: e.cta,
            cycles: e.latency,
        })
        .collect();
    series.sort_by_key(|p| p.cta);
    Ok(MicrobenchPanel {
        gpu: cfg.name.clone(),
        staggered,
        ctas: mb.ctas,
        observed_sm,
        series,
        l1_latency: cfg.timings.l1_hit,
        l2_latency: cfg.timings.l2_hit,
    })
}

/// Convenience: both panels (default + staggered) for one GPU with the
/// paper's turnaround counts (4 on Fermi/Kepler, 2 on Maxwell/Pascal).
pub fn run_gpu(cfg: &GpuConfig) -> Result<(MicrobenchPanel, MicrobenchPanel), ClusterError> {
    let turnarounds = match cfg.arch {
        gpu_sim::ArchGen::Fermi | gpu_sim::ArchGen::Kepler => 4,
        _ => 2,
    };
    Ok((
        run_panel(cfg, turnarounds, false)?,
        run_panel(cfg, turnarounds, true)?,
    ))
}

/// A profiling sink counting L1-level vs L2-level read transactions, for
/// the `L1 Read Trans` / `L1_L2 Read Trans` annotations of Figure 2.
#[derive(Debug, Default)]
pub struct TransactionCounter {
    /// Warp-level read accesses observed.
    pub l1_reads: u64,
}

impl TraceSink for TransactionCounter {
    fn record(&mut self, e: &gpu_sim::AccessEvent<'_>) {
        if !e.is_write {
            self.l1_reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn temporal_panel_shape_on_fermi() {
        let p = run_panel(&arch::gtx570(), 4, false).unwrap();
        // The observed SM runs about CTA_slots * turnarounds CTAs.
        assert!(p.series.len() >= 24, "got {}", p.series.len());
        // Figure 2-(A): most CTAs are at the L1 plateau; only (part of)
        // the first turnaround is slow.
        assert!(
            p.l1_class() * 2 > p.series.len(),
            "l1={} of {}",
            p.l1_class(),
            p.series.len()
        );
        assert!(p.slow_class() <= p.series.len() / 3);
    }

    #[test]
    fn staggered_panel_still_reuses_spatially() {
        let p = run_panel(&arch::gtx980(), 2, true).unwrap();
        // Figure 2-(B): only the first CTA misses; the de-aligned rest of
        // the first turnaround reuses its line.
        assert!(p.slow_class() <= p.series.len() / 4);
    }

    #[test]
    fn cta_zero_always_observed() {
        let p = run_panel(&arch::tesla_k40(), 4, false).unwrap();
        assert_eq!(p.series.first().map(|s| s.cta), Some(0));
    }
}
