//! Step 1 & 2 of CTA-Clustering: **Partitioning** `f : O → C` and
//! **Inverting** `f⁻¹ : C → O` (paper §4.2.1–§4.2.2, Eqs. 3–7).
//!
//! A [`Partition`] splits the `|V|` CTAs of the original kernel into `M`
//! balanced clusters, preserving locality by choosing the *CTA indexing*
//! (Figure 7) that orders mutually-sharing CTAs consecutively:
//!
//! * row-major indexing ⇒ **Y-partitioning** (clusters CTAs of equal
//!   `blockIdx.y`, i.e. locality across X),
//! * column-major indexing ⇒ **X-partitioning** (locality across Y),
//! * tile-wise indexing ⇒ partitioning along both axes,
//! * arbitrary indexing via a custom permutation.

use crate::error::ClusterError;
use gpu_sim::Dim3;

/// The CTA indexing method (Figure 7) that defines the order in which
/// CTAs are chunked into clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Indexing {
    /// `v = by * nx + bx` — the CUDA default. Chunking this order is the
    /// paper's **Y-partitioning**.
    RowMajor,
    /// `v = bx * ny + by` — the paper's **X-partitioning**.
    ColMajor,
    /// Tile-wise: the grid is covered by `tile_x x tile_y` tiles,
    /// enumerated row-major, with CTAs row-major within each tile.
    /// Partitions along both dimensions at the cost of more complex index
    /// arithmetic (the overhead the paper measures in §5.2-(6)).
    Tile {
        /// Tile width in CTAs.
        tile_x: u32,
        /// Tile height in CTAs.
        tile_y: u32,
    },
    /// An arbitrary permutation: `order[k]` is the row-major CTA id placed
    /// at position `k`.
    Custom(Vec<u64>),
}

impl Indexing {
    /// Position of row-major CTA id `v` in this ordering.
    fn position(&self, grid: Dim3, v: u64) -> u64 {
        match self {
            Indexing::RowMajor => v,
            Indexing::ColMajor => {
                let (x, y, _) = grid.coords_row_major(v);
                grid.linear_col_major(x, y)
            }
            Indexing::Tile { tile_x, tile_y } => {
                let (x, y, _) = grid.coords_row_major(v);
                let (tx, ty) = (*tile_x as u64, *tile_y as u64);
                let tiles_x = (grid.x as u64).div_ceil(tx);
                let (tile_col, tile_row) = (x as u64 / tx, y as u64 / ty);
                // CTAs in full rows of tiles above, plus full tiles to the
                // left in this tile row (accounting for clipped tiles).
                let row0 = tile_row * ty;
                let rows_here = ty.min(grid.y as u64 - row0);
                let above = row0 * grid.x as u64;
                let left = tile_col * tx * rows_here;
                let in_tile_x = x as u64 - tile_col * tx;
                let in_tile_y = y as u64 - row0;
                let width_here = tx.min(grid.x as u64 - tile_col * tx);
                let _ = tiles_x;
                above + left + in_tile_y * width_here + in_tile_x
            }
            Indexing::Custom(order) => order
                .iter()
                .position(|&o| o == v)
                .expect("custom order covers the grid")
                as u64,
        }
    }

    /// Row-major CTA id at position `k` of this ordering.
    fn cta_at(&self, grid: Dim3, k: u64) -> u64 {
        match self {
            Indexing::RowMajor => k,
            Indexing::ColMajor => {
                let (x, y) = grid.coords_col_major(k);
                grid.linear_row_major(x, y, 0)
            }
            Indexing::Tile { tile_x, tile_y } => {
                let (tx, ty) = (*tile_x as u64, *tile_y as u64);
                // Walk tile rows, subtracting their populations.
                let mut remaining = k;
                let mut row0 = 0u64;
                loop {
                    let rows_here = ty.min(grid.y as u64 - row0);
                    let band = rows_here * grid.x as u64;
                    if remaining < band {
                        // Within this tile row: walk tiles left to right.
                        let mut col0 = 0u64;
                        loop {
                            let width_here = tx.min(grid.x as u64 - col0);
                            let tile_pop = width_here * rows_here;
                            if remaining < tile_pop {
                                let in_y = remaining / width_here;
                                let in_x = remaining % width_here;
                                return grid.linear_row_major(
                                    (col0 + in_x) as u32,
                                    (row0 + in_y) as u32,
                                    0,
                                );
                            }
                            remaining -= tile_pop;
                            col0 += width_here;
                        }
                    }
                    remaining -= band;
                    row0 += rows_here;
                }
            }
            Indexing::Custom(order) => order[k as usize],
        }
    }
}

/// A balanced partition of a kernel grid into `M` clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    grid: Dim3,
    clusters: u64,
    indexing: Indexing,
    total: u64,
}

impl Partition {
    /// Creates a partition of `grid` into `clusters` clusters under the
    /// given indexing.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidPartition`] for an empty grid, zero
    /// clusters, zero-sized tiles, or a custom order that does not cover
    /// the grid exactly.
    pub fn new(grid: Dim3, clusters: u64, indexing: Indexing) -> Result<Self, ClusterError> {
        let total = grid.count();
        if total == 0 {
            return Err(ClusterError::InvalidPartition("empty grid".into()));
        }
        if clusters == 0 {
            return Err(ClusterError::InvalidPartition("zero clusters".into()));
        }
        if grid.z != 1 {
            return Err(ClusterError::InvalidPartition(
                "3D grids are not supported; flatten Z first".into(),
            ));
        }
        match &indexing {
            Indexing::Tile { tile_x, tile_y } if *tile_x == 0 || *tile_y == 0 => {
                return Err(ClusterError::InvalidPartition("zero-sized tiles".into()));
            }
            Indexing::Custom(order) => {
                if order.len() as u64 != total {
                    return Err(ClusterError::InvalidPartition(format!(
                        "custom order has {} entries for a {total}-CTA grid",
                        order.len()
                    )));
                }
                let mut seen = vec![false; total as usize];
                for &v in order {
                    if v >= total || seen[v as usize] {
                        return Err(ClusterError::InvalidPartition(
                            "custom order is not a permutation of the grid".into(),
                        ));
                    }
                    seen[v as usize] = true;
                }
            }
            _ => {}
        }
        Ok(Partition {
            grid,
            clusters,
            indexing,
            total,
        })
    }

    /// X-partitioning: column-major indexing (paper Table 2 "X-P").
    pub fn x(grid: Dim3, clusters: u64) -> Result<Self, ClusterError> {
        Partition::new(grid, clusters, Indexing::ColMajor)
    }

    /// Y-partitioning: row-major indexing (paper Table 2 "Y-P").
    pub fn y(grid: Dim3, clusters: u64) -> Result<Self, ClusterError> {
        Partition::new(grid, clusters, Indexing::RowMajor)
    }

    /// The grid being partitioned.
    pub fn grid(&self) -> Dim3 {
        self.grid
    }

    /// Number of clusters `M`.
    pub fn num_clusters(&self) -> u64 {
        self.clusters
    }

    /// Total CTAs `|V|`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The indexing in use.
    pub fn indexing(&self) -> &Indexing {
        &self.indexing
    }

    /// Number of CTAs in cluster `i` (balanced: `|V|/M` or `|V|/M + 1`).
    pub fn cluster_size(&self, i: u64) -> u64 {
        debug_assert!(i < self.clusters);
        let base = self.total / self.clusters;
        let extra = self.total % self.clusters;
        base + u64::from(i < extra)
    }

    /// **Partitioning** `f(v) = (w, i)` (Eqs. 4–5): maps the row-major CTA
    /// id `v` of the original kernel to its position `w` within cluster
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is outside the grid.
    pub fn assign(&self, v: u64) -> (u64, u64) {
        debug_assert!(v < self.total);
        let o = self.indexing.position(self.grid, v);
        let big = self.total / self.clusters + 1;
        let small = self.total / self.clusters;
        let extra = self.total % self.clusters;
        // extra * big = extra + extra * small <= extra + M * small = |V|,
        // so the boundary actually fits u64 (the symbolic proof in
        // cta_analyzer::absint::branch_c establishes this); the u128
        // comparison keeps that bound out of the trusted base. Whenever
        // the else-branches run, `o >= boundary` bounds the cast.
        let boundary = u128::from(extra) * u128::from(big);
        if u128::from(o) < boundary {
            (o % big, o / big)
        } else if small == 0 {
            // More clusters than CTAs: the tail clusters are empty.
            (0, extra + (o - boundary as u64))
        } else {
            let off = o - boundary as u64;
            (off % small, extra + off / small)
        }
    }

    /// **Inverting** `f⁻¹(w, i) = v` (Eq. 7): recovers the row-major CTA
    /// id of the original kernel from a cluster coordinate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(w, i)` is outside the partition.
    pub fn invert(&self, w: u64, i: u64) -> u64 {
        debug_assert!(i < self.clusters);
        debug_assert!(w < self.cluster_size(i), "w={w} i={i}");
        let small = self.total / self.clusters;
        let extra = self.total % self.clusters;
        // Eq. 7: v = i*(|V|/M + 1) + w + min(|V|%M - i, 0). The product
        // `i*(small+1)` overflows u64 for |V| near u64::MAX (e.g. M =
        // |V|/2 makes it ~1.5|V|), so the whole expression is evaluated
        // in u128; the final value is a valid position `o < |V|`.
        let o = u128::from(i) * (u128::from(small) + 1) + u128::from(w)
            - u128::from(i.saturating_sub(extra));
        debug_assert!(o < u128::from(self.total));
        self.indexing.cta_at(self.grid, o as u64)
    }

    /// All CTAs of cluster `i`, in execution order.
    pub fn cluster(&self, i: u64) -> Vec<u64> {
        (0..self.cluster_size(i))
            .map(|w| self.invert(w, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example() {
        // §4.2.1: MM with M=2, grid 3x2 (nx=3, ny=2), Y-partitioning
        // (row-major). f(CTA-(0,1)) = f(v=3) = (0, 1).
        let p = Partition::y(Dim3::plane(3, 2), 2).unwrap();
        assert_eq!(p.assign(3), (0, 1));
        // §4.2.2: f^-1((2,1)) = 5.
        assert_eq!(p.invert(2, 1), 5);
        assert_eq!(p.cluster(0), vec![0, 1, 2]);
        assert_eq!(p.cluster(1), vec![3, 4, 5]);
    }

    #[test]
    fn col_major_clusters_same_bx() {
        // X-partitioning of a 3x2 grid into 3 clusters: each cluster is a
        // grid column {(bx,0),(bx,1)}.
        let p = Partition::x(Dim3::plane(3, 2), 3).unwrap();
        assert_eq!(p.cluster(0), vec![0, 3]); // bx=0: v=0 and v=3
        assert_eq!(p.cluster(1), vec![1, 4]);
        assert_eq!(p.cluster(2), vec![2, 5]);
    }

    #[test]
    fn assign_invert_round_trip_all_indexings() {
        let grid = Dim3::plane(7, 5);
        for indexing in [
            Indexing::RowMajor,
            Indexing::ColMajor,
            Indexing::Tile {
                tile_x: 3,
                tile_y: 2,
            },
            Indexing::Custom((0..35).rev().collect()),
        ] {
            for m in [1u64, 2, 3, 5, 8, 35, 40] {
                let p = Partition::new(grid, m, indexing.clone()).unwrap();
                for v in 0..35 {
                    let (w, i) = p.assign(v);
                    assert_eq!(p.invert(w, i), v, "{indexing:?} M={m} v={v}");
                }
            }
        }
    }

    #[test]
    fn clusters_are_balanced() {
        let p = Partition::y(Dim3::plane(10, 3), 4).unwrap(); // 30 CTAs / 4
        let sizes: Vec<u64> = (0..4).map(|i| p.cluster_size(i)).collect();
        assert_eq!(sizes, vec![8, 8, 7, 7]);
        assert_eq!(sizes.iter().sum::<u64>(), 30);
    }

    #[test]
    fn more_clusters_than_ctas() {
        let p = Partition::y(Dim3::plane(2, 1), 5).unwrap();
        assert_eq!(p.cluster_size(0), 1);
        assert_eq!(p.cluster_size(1), 1);
        assert_eq!(p.cluster_size(2), 0);
        let (w, i) = p.assign(1);
        assert_eq!(p.invert(w, i), 1);
    }

    #[test]
    fn tile_indexing_orders_tiles_first() {
        // 4x4 grid, 2x2 tiles: first tile is {0,1,4,5}.
        let p = Partition::new(
            Dim3::plane(4, 4),
            4,
            Indexing::Tile {
                tile_x: 2,
                tile_y: 2,
            },
        )
        .unwrap();
        assert_eq!(p.cluster(0), vec![0, 1, 4, 5]);
        assert_eq!(p.cluster(1), vec![2, 3, 6, 7]);
        assert_eq!(p.cluster(2), vec![8, 9, 12, 13]);
    }

    #[test]
    fn tile_indexing_handles_clipped_edges() {
        // 5x3 grid with 2x2 tiles: ragged right column and bottom row.
        let p = Partition::new(
            Dim3::plane(5, 3),
            1,
            Indexing::Tile {
                tile_x: 2,
                tile_y: 2,
            },
        )
        .unwrap();
        let order = p.cluster(0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..15).collect::<Vec<_>>());
        // First tile covers (0,0),(1,0),(0,1),(1,1).
        assert_eq!(&order[..4], &[0, 1, 5, 6]);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(Partition::y(Dim3::plane(0, 2), 2).is_err());
        assert!(Partition::y(Dim3::plane(2, 2), 0).is_err());
        assert!(Partition::new(Dim3::new(2, 2, 2), 2, Indexing::RowMajor).is_err());
        assert!(Partition::new(
            Dim3::plane(2, 2),
            2,
            Indexing::Tile {
                tile_x: 0,
                tile_y: 1
            }
        )
        .is_err());
        assert!(Partition::new(Dim3::plane(2, 2), 2, Indexing::Custom(vec![0, 1, 2])).is_err());
        assert!(Partition::new(Dim3::plane(2, 2), 2, Indexing::Custom(vec![0, 1, 2, 2])).is_err());
    }
}
