//! MM — tiled dense matrix multiplication (CUDA SDK), the paper's running
//! example (Figure 8).
//!
//! CTA `(bx, by)` computes the C tile at `(bx, by)`. Over the k-loop it
//! loads A tiles `(k, by)` — shared with every CTA of the same `by` (the
//! "S region" of Figure 8-(A)) — and B tiles `(bx, k)` — shared with every
//! CTA of the same `bx` (the "T region"). Intra-CTA reuse is handled by
//! shared memory in the real kernel, so the global traffic is exactly
//! these tile loads.
//!
//! The paper's §5.2-(6) explains why MM gains little from clustering
//! despite the reuse: the inter-CTA reuse distance (one full A row band,
//! `32 * N` words) exceeds the L1, and 32 warps per CTA leave only one or
//! two agents per SM.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "MM",
    full_name: "matrixMul",
    description: "Matrix multiplication",
    category: PaperCategory::Algorithm,
    warps_per_cta: 32,
    partition: PartitionHint::Y,
    opt_agents: [1, 2, 2, 2],
    regs: [22, 29, 32, 27],
    smem: 8192,
    source: "CUDA SDK",
};

const TAG_A: u16 = 0;
const TAG_B: u16 = 1;
const TAG_C: u16 = 2;
const TILE: u64 = 32;

/// The tiled matrix-multiplication workload model.
#[derive(Debug, Clone)]
pub struct MatrixMul {
    /// C tiles along X (`gridDim.x`).
    pub tiles_x: u32,
    /// C tiles along Y (`gridDim.y`).
    pub tiles_y: u32,
    /// Tiles along the contraction dimension.
    pub tiles_k: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl MatrixMul {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        MatrixMul {
            tiles_x: 10,
            tiles_y: 10,
            tiles_k: 10,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(tiles_x: u32, tiles_y: u32, tiles_k: u32) -> Self {
        MatrixMul {
            tiles_x,
            tiles_y,
            tiles_k,
            regs: INFO.regs[0],
        }
    }

    /// Row length of A in words (the contraction dimension).
    fn a_row_words(&self) -> u64 {
        self.tiles_k as u64 * TILE
    }

    /// Row length of B and C in words.
    fn b_row_words(&self) -> u64 {
        self.tiles_x as u64 * TILE
    }
}

impl KernelSpec for MatrixMul {
    fn name(&self) -> String {
        format!("MM({}x{}x{})", self.tiles_y, self.tiles_k, self.tiles_x)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.tiles_x, self.tiles_y), Dim3::plane(32, 32))
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        for kt in 0..self.tiles_k as u64 {
            // Warp `w` stages row `w` of the A and B tiles into shared
            // memory (each a coalesced 32-word line).
            let a_row = by as u64 * TILE + warp as u64;
            prog.push(read_words(
                TAG_A,
                a_row * self.a_row_words() + kt * TILE,
                32,
            ));
            let b_row = kt * TILE + warp as u64;
            prog.push(read_words(
                TAG_B,
                b_row * self.b_row_words() + bx as u64 * TILE,
                32,
            ));
            prog.push(Op::Barrier);
            prog.push(Op::Compute(24)); // 2*TILE FMAs per thread per tile
            prog.push(Op::Barrier);
        }
        let c_row = by as u64 * TILE + warp as u64;
        prog.push(write_words(
            TAG_C,
            c_row * self.b_row_words() + bx as u64 * TILE,
            32,
        ));
        prog
    }
}

impl Workload for MatrixMul {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    fn addrs_of(p: &Program, tag: u16) -> Vec<u64> {
        p.iter()
            .filter_map(|op| op.access())
            .filter(|a| a.tag == tag)
            .flat_map(|a| a.addrs.clone())
            .collect()
    }

    #[test]
    fn table2_row_and_occupancy() {
        // Table 2 "CTAs": 1/2/2/2 (32 warps per CTA, warp-slot bound).
        let expect = [1u32, 2, 2, 2];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let mm = MatrixMul::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &mm.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn same_by_ctas_share_a_tiles() {
        let mm = MatrixMul::new(4, 4, 4);
        // CTA (0,1) is cta id 4; CTA (1,1) is cta id 5 (row-major).
        let a0 = addrs_of(&mm.warp_program(&ctx(4), 0), TAG_A);
        let a1 = addrs_of(&mm.warp_program(&ctx(5), 0), TAG_A);
        assert_eq!(a0, a1, "A loads shared along a row of CTAs");
        // B loads differ between those CTAs...
        let b0 = addrs_of(&mm.warp_program(&ctx(4), 0), TAG_B);
        let b1 = addrs_of(&mm.warp_program(&ctx(5), 0), TAG_B);
        assert_ne!(b0, b1);
        // ...but are shared along a column: CTA (1,0) id 1 and (1,1) id 5.
        let b_col = addrs_of(&mm.warp_program(&ctx(1), 0), TAG_B);
        assert_eq!(b_col, b1);
    }

    #[test]
    fn c_stores_are_disjoint_across_ctas() {
        let mm = MatrixMul::new(3, 3, 2);
        let mut all: Vec<u64> = Vec::new();
        for cta in 0..9 {
            for w in 0..32 {
                all.extend(addrs_of(&mm.warp_program(&ctx(cta), w), TAG_C));
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "every C word written exactly once");
    }

    #[test]
    fn barrier_structure_is_uniform_across_warps() {
        let mm = MatrixMul::new(2, 2, 3);
        let count = |w| {
            mm.warp_program(&ctx(0), w)
                .iter()
                .filter(|op| op.is_barrier())
                .count()
        };
        assert_eq!(count(0), count(31));
        assert_eq!(count(0), 6);
    }
}
