//! # cta-serve
//!
//! A persistent clustering-plan server over the reproduction's analysis
//! stack: clients describe a kernel (by suite abbreviation or
//! structurally, with grid geometry and an access-pattern summary) over
//! line-delimited JSON — stdin or TCP — and receive a `plan/v1`
//! response carrying the locality category, the CTA-clustering plan,
//! and the sound static L1 hit-rate interval.
//!
//! The moving parts, one module each:
//!
//! * [`proto`] — the `serve/v1` wire protocol and the canonical content
//!   digest of a request's semantic fields.
//! * [`planner`] — static classification, plan assembly (Figure 5),
//!   cost-model hit bounds, and the CL401 served-plan audit gate.
//! * [`cache`] — the sharded content-addressed plan cache with exact
//!   hit/miss conservation accounting.
//! * [`server`] — the worker pool: bounded queue, overload shedding,
//!   per-request deadlines, ordered writer, graceful shutdown.
//! * [`bench`] — the `serve-bench/v1` throughput benchmark behind the
//!   committed `BENCH_serve.json` artifact.
//!
//! Responses are **byte-identical across worker counts**: planning is a
//! pure function of the request's semantic fields, the cache fills once
//! per digest, and the writer restores input order. The serve test
//! suite (golden, soak, proptest) pins all three properties.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod planner;
pub mod proto;
pub mod server;

pub use cache::{CacheStats, PlanCache};
pub use planner::{plan_request, DescribedKernel, PlanBody};
pub use proto::{parse_request, Mode, ProtoError, Request};
pub use server::{ServeSummary, Server, ServerConfig};
