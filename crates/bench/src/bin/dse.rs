//! Design-space exploration harness: sweeps cache geometry × scheduler
//! policy × clustering degree over a declarative grid, prunes points the
//! CL2xx cost model proves redundant, and emits the per-app Pareto front
//! over `(cycles, L2 transactions)` as JSON (`dse-sweep/v1`) on stdout.
//!
//! Usage:
//!   dse [--reduced | --config <path>] [--no-prune] [--out <path>]
//!       [--out-front <path>]
//!
//! `--reduced` runs the built-in CI smoke grid (Fermi, NW + BS, 3 L1
//! sizes × 2 way counts × 2 index functions, 2 `MAX_AGENTS` caps,
//! 2 schedulers, baseline + opt clustering).
//! `--config` reads a `key = v1, v2` grid file instead (see
//! [`cluster_bench::sweep::SweepSpec::parse`]).
//! `--no-prune` simulates every point, bypassing the cost model — CI
//! byte-compares the two fronts to keep the pruning proof honest.
//! `--out` additionally writes the full JSON to a file; `--out-front`
//! writes a front-only document (`dse-front/v1`) that is byte-identical
//! between pruned and unpruned runs of the same grid.
//!
//! With `CLUSTER_OBS` set, per-point counters (`dse/cycles`,
//! `dse/l2_txns`, `dse/pruned`) export to `dse.jsonl` on exit.

use cluster_bench::sweep::{run_sweep, SweepOutcome, SweepPoint, SweepSpec};
use cta_clustering::ClusterError;
use std::time::Instant;

fn main() -> Result<(), ClusterError> {
    let mut reduced = false;
    let mut config_path: Option<String> = None;
    let mut prune = true;
    let mut out_path: Option<String> = None;
    let mut front_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--no-prune" => prune = false,
            "--config" => {
                config_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--config needs a path"))?,
                );
            }
            "--out" => {
                out_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--out needs a path"))?,
                );
            }
            "--out-front" => {
                front_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--out-front needs a path"))?,
                );
            }
            other => {
                return Err(ClusterError::harness(format!(
                    "unknown argument {other:?}; usage: \
                     dse [--reduced | --config <path>] [--no-prune] \
                     [--out <path>] [--out-front <path>]"
                )))
            }
        }
    }
    let spec = match (&config_path, reduced) {
        (Some(path), false) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ClusterError::harness(format!("reading {path}: {e}")))?;
            SweepSpec::parse(&text)?
        }
        (None, _) => SweepSpec::reduced(),
        (Some(_), true) => {
            return Err(ClusterError::harness(
                "--reduced and --config are mutually exclusive",
            ))
        }
    };

    cluster_bench::with_obs("dse", || {
        let t0 = Instant::now();
        let outcome = run_sweep(&spec, prune)?;
        let wall_s = t0.elapsed().as_secs_f64();
        let json = render_sweep(&spec, &outcome, prune, wall_s);
        println!("{json}");
        if let Some(path) = &out_path {
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| ClusterError::harness(format!("writing {path}: {e}")))?;
        }
        if let Some(path) = &front_path {
            let front_json = render_front(&spec, &outcome);
            std::fs::write(path, format!("{front_json}\n"))
                .map_err(|e| ClusterError::harness(format!("writing {path}: {e}")))?;
        }
        eprintln!(
            "dse: {} points, {} simulated, {} pruned ({:.1}%: geometry-dead {}, \
             indexing-dead {}), {wall_s:.2}s",
            outcome.points.len(),
            outcome.simulated,
            outcome.pruned(),
            outcome.prune_rate() * 100.0,
            outcome.pruned_geometry,
            outcome.pruned_indexing,
        );
        Ok(())
    })
}

/// One point's configuration + objectives, shared by both documents so
/// the front entries of `dse-sweep/v1` and `dse-front/v1` match exactly.
fn point_core(p: &SweepPoint) -> String {
    format!(
        "\"l1_size_kb\": {}, \"l1_assoc\": {}, \"l1_index\": \"{}\", \"max_agents\": \"{}\", \
         \"sched\": \"{}\", \"agents\": \"{}\", \
         \"request\": \"{}\", \"cycles\": {}, \"l2_txns\": {}",
        p.l1_size_kb,
        p.l1_assoc,
        p.l1_index,
        p.max_agents,
        p.sched,
        p.agents,
        p.request,
        p.metrics.cycles,
        p.metrics.l2_txns,
    )
}

fn render_fronts(outcome: &SweepOutcome, indent: &str) -> String {
    let fronts: Vec<String> = outcome
        .fronts()
        .into_iter()
        .map(|(app, front)| {
            let entries: Vec<String> = front
                .iter()
                .map(|p| format!("{{{}}}", point_core(p)))
                .collect();
            format!(
                "{indent}{{\"app\": \"{app}\", \"front\": [\n{indent}  {}\n{indent}]}}",
                entries.join(&format!(",\n{indent}  ")),
            )
        })
        .collect();
    fronts.join(",\n")
}

fn render_sweep(spec: &SweepSpec, outcome: &SweepOutcome, prune: bool, wall_s: f64) -> String {
    let points: Vec<String> = outcome
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"app\": \"{}\", {}, \"l1_hit_rate\": {:.6}, \"occupancy\": {:.4}, \
                 \"model_lo\": {:.6}, \"model_hi\": {:.6}, \"pruned\": {}}}",
                p.app,
                point_core(p),
                p.metrics.l1_hit_rate,
                p.metrics.occupancy,
                p.model_lo,
                p.model_hi,
                p.pruned,
            )
        })
        .collect();
    format!(
        "{{\n  \"format\": \"dse-sweep/v1\",\n  \"arch\": \"{arch}\",\n  \"prune\": {prune},\n  \
         \"points_total\": {total},\n  \"simulated\": {sim},\n  \"pruned\": {pruned},\n  \
         \"pruned_geometry\": {geom},\n  \"pruned_indexing\": {index},\n  \
         \"prune_rate\": {rate:.4},\n  \"wall_s\": {wall_s:.2},\n  \"points\": [\n{points}\n  ],\n  \
         \"fronts\": [\n{fronts}\n  ]\n}}",
        arch = spec.arch,
        total = outcome.points.len(),
        sim = outcome.simulated,
        pruned = outcome.pruned(),
        geom = outcome.pruned_geometry,
        index = outcome.pruned_indexing,
        rate = outcome.prune_rate(),
        points = points.join(",\n"),
        fronts = render_fronts(outcome, "    "),
    )
}

/// The front-only document: everything in it is a deterministic function
/// of the grid and the simulated metrics, so pruned and unpruned runs of
/// the same grid must produce byte-identical files (`cmp` gates this in
/// CI).
fn render_front(spec: &SweepSpec, outcome: &SweepOutcome) -> String {
    format!(
        "{{\n  \"format\": \"dse-front/v1\",\n  \"arch\": \"{}\",\n  \"apps\": [\n{}\n  ]\n}}",
        spec.arch,
        render_fronts(outcome, "    "),
    )
}
