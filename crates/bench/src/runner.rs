//! Shared harness machinery: the optimization variants of Figure 12/13
//! and the code that runs a workload under each of them.
//!
//! The evaluation of one app decomposes into independent simulations
//! described by [`SimRequest`]s. [`AppPlan`] owns everything a request
//! needs (kernel handle, configured GPU, hinted partition, agent
//! template), so requests can execute in any order — or concurrently on
//! worker threads ([`crate::par`]) — and still assemble into exactly the
//! [`AppEvaluation`] the serial path produces.

use cta_clustering::{AgentKernel, BypassKernel, Framework, Partition, RedirectionKernel};
use gpu_kernels::{PartitionHint, Workload};
use gpu_sim::{
    ArrayTag, CtaContext, GpuConfig, KernelSpec, LaunchConfig, Program, RunStats, Simulation,
};
use std::sync::Arc;

/// A cloneable handle to a boxed workload, so the clustering transforms
/// (which need `Clone`) can wrap suite entries. Backed by `Arc` so the
/// handle can cross thread boundaries in the parallel harness.
#[derive(Clone)]
pub struct SharedKernel(Arc<dyn Workload>);

impl SharedKernel {
    /// Wraps a suite workload.
    pub fn new(w: Box<dyn Workload>) -> Self {
        SharedKernel(Arc::from(w))
    }

    /// The workload's Table 2 metadata.
    pub fn info(&self) -> gpu_kernels::WorkloadInfo {
        self.0.info()
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedKernel({})", self.0.name())
    }
}

impl KernelSpec for SharedKernel {
    fn name(&self) -> String {
        self.0.name()
    }
    fn launch(&self) -> LaunchConfig {
        self.0.launch()
    }
    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        self.0.warp_program(ctx, warp)
    }
    fn warp_program_into(&self, ctx: &CtaContext, warp: u32, out: &mut Program) {
        self.0.warp_program_into(ctx, warp, out)
    }
}

/// The evaluated configurations, matching the series of Figures 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `BSL` — unmodified kernel under the default scheduler.
    Baseline,
    /// `RD` — redirection-based clustering.
    Redirection,
    /// `CLU` — agent-based clustering, all agents active.
    Clustering,
    /// `CLU+TOT` — agent-based clustering at the optimal throttling
    /// degree (selected by sweep, as the paper's dynamic voting does).
    ClusteringThrottled,
    /// `CLU+TOT+BPS` — adds L1 bypassing of streaming arrays.
    ClusteringThrottledBypass,
    /// `PFH+TOT` — clustering used only to reshape the CTA order,
    /// plus cross-CTA prefetching (the path for apps without
    /// exploitable inter-CTA locality).
    PrefetchThrottled,
}

impl Variant {
    /// The paper's series label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "BSL",
            Variant::Redirection => "RD",
            Variant::Clustering => "CLU",
            Variant::ClusteringThrottled => "CLU+TOT",
            Variant::ClusteringThrottledBypass => "CLU+TOT+BPS",
            Variant::PrefetchThrottled => "PFH+TOT",
        }
    }

    /// All variants in figure order.
    pub const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::Redirection,
        Variant::Clustering,
        Variant::ClusteringThrottled,
        Variant::ClusteringThrottledBypass,
        Variant::PrefetchThrottled,
    ];
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The partition the workload's Table 2 hint selects.
pub fn hinted_partition(kernel: &SharedKernel, cfg: &GpuConfig) -> Partition {
    let grid = kernel.launch().grid;
    let m = cfg.num_sms as u64;
    match kernel.info().partition {
        PartitionHint::X => Partition::x(grid, m),
        PartitionHint::Y => Partition::y(grid, m),
    }
    .expect("suite grids are partitionable")
}

/// One independent simulation of the evaluation matrix.
///
/// Requests carry no references into their plan, so a `(plan, request)`
/// pair is a self-contained unit of work for a thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimRequest {
    /// The unmodified kernel.
    Baseline,
    /// Redirection-based clustering.
    Redirection,
    /// Agent-based clustering, all agents active.
    Clustering,
    /// Agent-based clustering throttled to `n` active agents.
    Throttled(u32),
    /// Throttled clustering plus L1 bypassing, at `n` active agents.
    Bypass(u32),
    /// Throttled clustering plus cross-CTA prefetching, at `n` agents.
    Prefetch(u32),
}

impl SimRequest {
    /// Short telemetry label: `BSL`, `RD`, `CLU`, `TOT{n}`, `BPS{n}`,
    /// `PFH{n}`. Throttle degrees are part of the label so every job of
    /// a sweep gets its own span and metric scope.
    pub fn label(&self) -> String {
        match self {
            SimRequest::Baseline => "BSL".into(),
            SimRequest::Redirection => "RD".into(),
            SimRequest::Clustering => "CLU".into(),
            SimRequest::Throttled(n) => format!("TOT{n}"),
            SimRequest::Bypass(n) => format!("BPS{n}"),
            SimRequest::Prefetch(n) => format!("PFH{n}"),
        }
    }
}

/// One workload's prepared evaluation: the configured GPU, the hinted
/// partition (computed once), the agent-kernel template, and the
/// throttling candidate set. Every [`SimRequest`] runs off this shared,
/// immutable state.
#[derive(Debug, Clone)]
pub struct AppPlan {
    /// Table 2 metadata of the workload.
    pub info: gpu_kernels::WorkloadInfo,
    /// The GPU configuration (already `prefer_l1`-adjusted).
    pub cfg: GpuConfig,
    kernel: SharedKernel,
    partition: Partition,
    agents: AgentKernel<SharedKernel>,
    /// Upper bound on concurrently resident agents per SM.
    pub max_agents: u32,
    /// Deduplicated, sorted throttling degrees the sweep will try.
    pub candidates: Vec<u32>,
}

impl AppPlan {
    /// Prepares `workload` for evaluation on `base_cfg`.
    ///
    /// The GPU is configured `cudaFuncCachePreferL1`-style on the
    /// configurable architectures (uniformly, including the baseline).
    /// The Table 2 partition hint is resolved exactly once here; every
    /// transform reuses it.
    pub fn new(base_cfg: &GpuConfig, workload: Box<dyn Workload>) -> AppPlan {
        let kernel = SharedKernel::new(workload);
        let info = kernel.info();
        let cfg = base_cfg.prefer_l1(kernel.launch().smem_per_cta);
        let partition = hinted_partition(&kernel, &cfg);
        let agents = AgentKernel::with_partition(kernel.clone(), &cfg, partition.clone())
            .expect("agent transform");
        let max_agents = agents.max_agents();
        // Sweep candidates: a small set always containing Table 2's
        // published optimum, mirroring how the paper selected "Opt
        // Agents" empirically.
        let mut candidates = vec![1u32, 2, 4, info.opt_agents_for(cfg.arch), max_agents];
        candidates.retain(|&c| c >= 1 && c <= max_agents);
        candidates.sort_unstable();
        candidates.dedup();
        AppPlan {
            info,
            cfg,
            kernel,
            partition,
            agents,
            max_agents,
            candidates,
        }
    }

    /// The requests whose inputs are known up front: everything except
    /// the two variants that depend on the sweep's winner.
    pub fn phase_a(&self) -> Vec<SimRequest> {
        let mut reqs = vec![
            SimRequest::Baseline,
            SimRequest::Redirection,
            SimRequest::Clustering,
        ];
        reqs.extend(self.candidates.iter().map(|&c| SimRequest::Throttled(c)));
        reqs
    }

    /// The requests that need the sweep-selected throttling degree.
    pub fn phase_b(&self, chosen_agents: u32) -> Vec<SimRequest> {
        vec![
            SimRequest::Bypass(chosen_agents),
            SimRequest::Prefetch(chosen_agents),
        ]
    }

    /// Runs one request to completion. Pure with respect to the plan:
    /// the same request always yields the same [`RunStats`].
    ///
    /// The whole job runs inside a telemetry span named by its scope
    /// (`{gpu}/{app}/{label}`, e.g. `GTX570/MM/CLU`), on whichever
    /// thread executes it.
    pub fn run(&self, req: SimRequest) -> RunStats {
        let t0 = std::time::Instant::now();
        let scope = format!("{}/{}/{}", self.cfg.name, self.info.abbr, req.label());
        let _job = cta_obs::span(scope.clone());
        let stats = match req {
            SimRequest::Baseline => self
                .simulate(&self.kernel, req, &scope)
                .expect("baseline run"),
            SimRequest::Redirection => {
                let rd = RedirectionKernel::new(self.kernel.clone(), self.partition.clone());
                self.simulate(&rd, req, &scope).expect("RD run")
            }
            SimRequest::Clustering => self.simulate(&self.agents, req, &scope).expect("CLU run"),
            SimRequest::Throttled(active) => {
                let throttled = self
                    .agents
                    .clone()
                    .with_active_agents(active)
                    .expect("valid throttle");
                self.simulate(&throttled, req, &scope).expect("TOT run")
            }
            SimRequest::Bypass(active) => {
                // Bypassing: streaming tags from the framework's probe.
                let fw = Framework::new(self.cfg.clone());
                let tags: Vec<ArrayTag> = fw
                    .analyze(&self.kernel)
                    .map(|a| a.streaming_tags)
                    .unwrap_or_default();
                let bypassed = AgentKernel::with_partition(
                    BypassKernel::new(self.kernel.clone(), tags),
                    &self.cfg,
                    self.partition.clone(),
                )
                .expect("bypass transform")
                .with_active_agents(active)
                .expect("valid throttle");
                self.simulate(&bypassed, req, &scope).expect("BPS run")
            }
            SimRequest::Prefetch(active) => {
                let prefetching = self
                    .agents
                    .clone()
                    .with_active_agents(active)
                    .expect("valid throttle")
                    .with_prefetch(2);
                self.simulate(&prefetching, req, &scope).expect("PFH run")
            }
        };
        crate::par::record_busy(t0.elapsed());
        stats
    }

    /// Runs one simulation, telemetry-aware. With `CLUSTER_OBS` off this
    /// is exactly `Simulation::run` — the differential test pins that
    /// figures are byte-identical either way. With it on, the run is
    /// traced through a [`locality::ObsSink`] (trace sinks observe the
    /// access stream, they cannot steer the simulation) and the
    /// resulting [`RunStats`] counters are recorded under `scope`.
    fn simulate<K: KernelSpec>(
        &self,
        kernel: &K,
        req: SimRequest,
        scope: &str,
    ) -> Result<RunStats, gpu_sim::SimError> {
        let mut sim = Simulation::new(self.cfg.clone(), kernel);
        let Some(obs) = cta_obs::maybe_global() else {
            return sim.run();
        };
        // Cluster attribution: the baseline knows which cluster a CTA's
        // data *would* belong to from the hinted partition; clustered
        // variants bind one cluster per SM (agents adopt the cluster of
        // the SM they land on), so there the SM id is the cluster id.
        let stats = if matches!(req, SimRequest::Baseline) {
            let partition = self.partition.clone();
            let mut sink =
                locality::ObsSink::new(scope, move |cta, _sm| partition.assign(cta).0 as u32);
            let stats = sim.run_traced(&mut sink)?;
            sink.finish(obs);
            stats
        } else {
            let mut sink = locality::ObsSink::new(scope, |_cta, sm| sm as u32);
            let stats = sim.run_traced(&mut sink)?;
            sink.finish(obs);
            stats
        };
        stats.record_obs(obs, scope);
        Ok(stats)
    }

    /// Picks the winning throttling degree from phase-A results
    /// (`stats` must be in [`AppPlan::phase_a`] order). Returns the
    /// degree and its index into `stats`. Strict `<` keeps the earliest
    /// candidate on ties, matching the original serial sweep.
    pub fn select_throttle(&self, stats: &[RunStats]) -> (u32, usize) {
        let sweep_base = 3; // Baseline, Redirection, Clustering precede the sweep.
        let mut best: Option<(u32, usize)> = None;
        for (i, &active) in self.candidates.iter().enumerate() {
            let idx = sweep_base + i;
            if best
                .as_ref()
                .is_none_or(|&(_, b)| stats[idx].cycles < stats[b].cycles)
            {
                best = Some((active, idx));
            }
        }
        best.expect("nonempty sweep")
    }

    /// Combines phase-A and phase-B results into the final evaluation.
    pub fn assemble(
        &self,
        phase_a: Vec<RunStats>,
        chosen: (u32, usize),
        phase_b: Vec<RunStats>,
    ) -> AppEvaluation {
        let (chosen_agents, best_idx) = chosen;
        let tot_stats = phase_a[best_idx].clone();
        let mut a = phase_a.into_iter();
        let mut b = phase_b.into_iter();
        let runs = vec![
            (Variant::Baseline, a.next().expect("baseline stats")),
            (Variant::Redirection, a.next().expect("RD stats")),
            (Variant::Clustering, a.next().expect("CLU stats")),
            (Variant::ClusteringThrottled, tot_stats),
            (
                Variant::ClusteringThrottledBypass,
                b.next().expect("BPS stats"),
            ),
            (Variant::PrefetchThrottled, b.next().expect("PFH stats")),
        ];
        AppEvaluation {
            info: self.info,
            runs,
            chosen_agents,
        }
    }
}

/// Results of one workload under every variant on one GPU.
#[derive(Debug, Clone)]
pub struct AppEvaluation {
    /// Table 2 metadata of the workload.
    pub info: gpu_kernels::WorkloadInfo,
    /// Per-variant stats, in [`Variant::ALL`] order.
    pub runs: Vec<(Variant, RunStats)>,
    /// The throttling degree the sweep selected.
    pub chosen_agents: u32,
}

impl AppEvaluation {
    /// Stats of one variant.
    pub fn stats(&self, v: Variant) -> &RunStats {
        &self
            .runs
            .iter()
            .find(|(rv, _)| *rv == v)
            .expect("variant present")
            .1
    }

    /// Speedup of `v` over baseline.
    pub fn speedup(&self, v: Variant) -> f64 {
        self.stats(v).speedup_vs(self.stats(Variant::Baseline))
    }

    /// Normalized L2 transactions of `v` (baseline = 1.0).
    pub fn l2_norm(&self, v: Variant) -> f64 {
        self.stats(v).l2_txns_vs(self.stats(Variant::Baseline))
    }
}

/// Evaluates one workload under all six variants on `base_cfg`,
/// serially on the calling thread.
///
/// This is the legacy single-threaded path; [`crate::par`] runs the same
/// [`SimRequest`]s across worker threads and produces identical results.
pub fn evaluate_app(base_cfg: &GpuConfig, workload: Box<dyn Workload>) -> AppEvaluation {
    let plan = AppPlan::new(base_cfg, workload);
    let phase_a: Vec<RunStats> = plan.phase_a().into_iter().map(|r| plan.run(r)).collect();
    let chosen = plan.select_throttle(&phase_a);
    let phase_b: Vec<RunStats> = plan
        .phase_b(chosen.0)
        .into_iter()
        .map(|r| plan.run(r))
        .collect();
    plan.assemble(phase_a, chosen, phase_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn evaluate_small_app_produces_all_variants() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let eval = evaluate_app(&arch::gtx570(), w);
        assert_eq!(eval.runs.len(), 6);
        assert!(eval.speedup(Variant::Baseline) == 1.0);
        assert!(eval.chosen_agents >= 1);
        for v in Variant::ALL {
            assert!(eval.stats(v).cycles > 0, "{v}");
        }
    }

    #[test]
    fn variant_labels_match_paper() {
        let labels: Vec<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec!["BSL", "RD", "CLU", "CLU+TOT", "CLU+TOT+BPS", "PFH+TOT"]
        );
    }

    #[test]
    fn shared_kernel_handle_is_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedKernel>();
        assert_send_sync::<AppPlan>();
        assert_send_sync::<SimRequest>();
    }

    #[test]
    fn plan_decomposition_matches_monolithic_order() {
        let w = gpu_kernels::suite::by_abbr("NW", gpu_sim::ArchGen::Fermi).unwrap();
        let plan = AppPlan::new(&arch::gtx570(), w);
        let phase_a = plan.phase_a();
        assert_eq!(
            &phase_a[..3],
            &[
                SimRequest::Baseline,
                SimRequest::Redirection,
                SimRequest::Clustering
            ]
        );
        assert_eq!(phase_a.len(), 3 + plan.candidates.len());
        // Candidates stay sorted and in range, including Table 2's optimum.
        assert!(plan.candidates.windows(2).all(|w| w[0] < w[1]));
        assert!(plan
            .candidates
            .iter()
            .all(|&c| c >= 1 && c <= plan.max_agents));
        let opt = plan.info.opt_agents_for(plan.cfg.arch).min(plan.max_agents);
        assert!(plan.candidates.contains(&opt));
        assert_eq!(
            plan.phase_b(2),
            vec![SimRequest::Bypass(2), SimRequest::Prefetch(2)]
        );
    }
}
