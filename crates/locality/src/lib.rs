//! # locality
//!
//! Inter-CTA reuse quantification and locality-source classification — the
//! analysis layer behind §3.2 and Figure 3/4 of *"Locality-Aware CTA
//! Clustering for Modern GPUs"* (ASPLOS 2017).
//!
//! Three tools, all driven by the pre-L1 access stream a
//! [`gpu_sim::Simulation`] emits through its trace hook:
//!
//! * [`ReuseProfiler`] — classifies every word reuse as intra-warp,
//!   intra-CTA or inter-CTA and summarizes their shares (Figure 3; the
//!   paper finds inter-CTA reuse is on average 45% of all reuse).
//! * [`CategoryProfiler`] / [`Category`] — detects which of the five
//!   locality-source categories (algorithm, cache-line, data, write,
//!   streaming — Figure 4) a kernel belongs to, and whether that locality
//!   is *exploitable* by CTA-Clustering.
//! * [`ReuseDistance`] — exact LRU stack-distance analysis, the
//!   measurement behind the paper's "reuse distance greatly surpasses the
//!   cache capacity" explanation of MM's behaviour (§5.2-(6)).
//!
//! All analyses are data-driven and independent of cache configuration or
//! CTA-scheduling policy, exactly as the paper requires of its
//! quantification methodology.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
mod category;
pub mod costsum;
mod distance;
mod feed;
mod obs_sink;
mod profiler;
mod tags;
mod wordmap;

pub use canon::{CanonHasher, Digest};
pub use category::{classify, Category, CategoryProfiler, Signature};
pub use costsum::{AccessSummary, HitInterval, SetConflictModel};
pub use distance::ReuseDistance;
pub use feed::StaticFeed;
pub use obs_sink::ObsSink;
pub use profiler::{ReuseProfiler, ReuseScope, ReuseSummary};
pub use tags::{TagReuseProfiler, TagSummary};
