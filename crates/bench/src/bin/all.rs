//! Regenerates every table and figure in sequence (the full artifact
//! run). Expect a few minutes in release mode.

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in [
        "table1_platforms",
        "table2_benchmarks",
        "fig2_microbench",
        "fig3_reuse",
        "fig12_speedup",
        "fig13_cache",
    ] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
