//! The address decoder: splits a byte address into the fields the banked,
//! sectored memory hierarchy indexes on — line tag, set, sector, L2 bank
//! and DRAM channel.
//!
//! Real GPUs do not index caches or L2 slices with plain modulo
//! arithmetic: the power-of-two strides that dense-matrix kernels produce
//! would camp on a handful of sets or a single bank. The hardware hashes
//! higher address bits into every index (`romnn/gpucachesim` models the
//! same structure as an `addrdec` unit). This module centralizes that
//! swizzling so every consumer — the set-associative arrays in
//! [`crate::cache`], the banked L2 and DRAM channels in
//! [`crate::memory`] — decodes addresses through one audited path.
//!
//! Each dimension is a [`HashedIndex`]: a multiplicative (Fibonacci)
//! hash followed by a reduction to the dimension size. Power-of-two
//! sizes reduce with a mask (`h & (n-1)`), which is bit-identical to the
//! generic `h % n` they replace — the property tests pin that — so the
//! fast path is purely an implementation detail. The decode is a
//! bijection at line granularity: the tag *is* the full line number, so
//! `encode(decode(a).tag) == a & !(line_bytes-1)` and two distinct lines
//! can never alias within a `(bank, set)` pair.

use crate::config::IndexFn;

/// Multiplier of the set/bank hash (the 64-bit Fibonacci constant).
pub const LINE_HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
/// Multiplier of the DRAM-channel hash, chosen distinct from
/// [`LINE_HASH_MUL`] so bank and channel conflicts decorrelate.
pub const CHAN_HASH_MUL: u64 = 0xD1B5_4A32_D192_ED03;

/// One hashed index dimension: `n` targets selected by a multiplicative
/// hash of a key, with a mask fast path when `n` is a power of two.
///
/// The multiplier and shift are const generics, not fields: the hash
/// runs on the simulator's hottest path (every cache access computes a
/// set index), and keeping them as compile-time immediates lets the
/// multiply and shift fold into the same constant-operand instructions
/// the pre-decoder code emitted, instead of loads from the decoder
/// struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedIndex<const MUL: u64, const SHIFT: u32> {
    n: u64,
    /// `n - 1`, meaningful only when `pow2`.
    mask: u64,
    pow2: bool,
}

impl<const MUL: u64, const SHIFT: u32> HashedIndex<MUL, SHIFT> {
    /// A dimension of `n` targets hashed as `key * MUL >> SHIFT`, then
    /// reduced modulo `n` (masked when `n` is a power of two).
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "hashed index needs at least one target");
        HashedIndex {
            n,
            mask: n - 1,
            pow2: n.is_power_of_two(),
        }
    }

    /// Number of targets.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the dimension is trivial (a single target).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The target index for `key`, always `< len()`.
    #[inline(always)]
    pub fn index(&self, key: u64) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let h = key.wrapping_mul(MUL) >> SHIFT;
        if self.pow2 {
            h & self.mask
        } else {
            h % self.n
        }
    }
}

/// A fully decoded address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Line number (`addr >> log2(line_bytes)`) — the line's full
    /// identity. Set, bank and channel are functions of the tag alone.
    pub tag: u64,
    /// Set within a cache array.
    pub set: u64,
    /// Sector within the line.
    pub sector: u32,
    /// L2 bank (slice).
    pub bank: u64,
    /// DRAM channel.
    pub channel: u64,
}

/// Decoder for one point of the hierarchy. Dimensions that do not apply
/// (e.g. banks for an L1 sector array) are trivial single-target
/// dimensions and decode to 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrDec {
    line_shift: u32,
    sector_shift: u32,
    /// `sectors_per_line - 1`; sectors per line is a validated power of
    /// two, so the sector field is a shift-and-mask.
    sector_mask: u32,
    sets: HashedIndex<LINE_HASH_MUL, 32>,
    banks: HashedIndex<LINE_HASH_MUL, 24>,
    channels: HashedIndex<CHAN_HASH_MUL, 24>,
    /// Set-index function. [`IndexFn::Modulo`] bypasses the set hash and
    /// indexes with `tag % num_sets` — the DSE axis; [`IndexFn::Hashed`]
    /// (every preset) keeps the path above bit-identical to the
    /// pre-axis decoder.
    set_index_fn: IndexFn,
}

impl AddrDec {
    /// Decoder for a cache array: `num_sets` hashed sets over lines of
    /// `line_bytes` split into sectors of `sector_bytes`.
    ///
    /// The set hash consumes the *high* 32 bits of the product
    /// (`>> 32`), which spreads power-of-two strides over every set.
    pub fn for_cache(line_bytes: u32, sector_bytes: u32, num_sets: u64) -> Self {
        AddrDec::for_cache_indexed(line_bytes, sector_bytes, num_sets, IndexFn::Hashed)
    }

    /// [`AddrDec::for_cache`] with an explicit set-index function — the
    /// DSE sweep's indexing axis. `Hashed` is exactly `for_cache`.
    pub fn for_cache_indexed(
        line_bytes: u32,
        sector_bytes: u32,
        num_sets: u64,
        index_fn: IndexFn,
    ) -> Self {
        assert!(line_bytes.is_power_of_two());
        assert!(sector_bytes.is_power_of_two() && sector_bytes <= line_bytes);
        AddrDec {
            line_shift: line_bytes.trailing_zeros(),
            sector_shift: sector_bytes.trailing_zeros(),
            sector_mask: line_bytes / sector_bytes - 1,
            sets: HashedIndex::new(num_sets),
            banks: HashedIndex::new(1),
            channels: HashedIndex::new(1),
            set_index_fn: index_fn,
        }
    }

    /// Decoder for the device memory system: L2 bank and DRAM channel
    /// interleaving at `line_bytes` (L2-line) granularity.
    ///
    /// Bank and channel hashes consume bits `24..` of their products:
    /// lower than the set hash, so bank conflicts and set conflicts
    /// decorrelate.
    pub fn for_device(line_bytes: u32, banks: u32, channels: u32) -> Self {
        assert!(line_bytes.is_power_of_two());
        AddrDec {
            line_shift: line_bytes.trailing_zeros(),
            sector_shift: line_bytes.trailing_zeros(),
            sector_mask: 0,
            sets: HashedIndex::new(1),
            banks: HashedIndex::new(banks as u64),
            channels: HashedIndex::new(channels as u64),
            set_index_fn: IndexFn::Hashed,
        }
    }

    /// Line size this decoder was built for.
    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Sectors per line (1 for unsectored geometries).
    pub fn sectors_per_line(&self) -> u32 {
        self.sector_mask + 1
    }

    /// The line tag (line number) of a byte address.
    #[inline]
    pub fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Set index for an already-extracted tag.
    #[inline]
    pub fn set_of_tag(&self, tag: u64) -> u64 {
        match self.set_index_fn {
            IndexFn::Hashed => self.sets.index(tag),
            IndexFn::Modulo => tag % self.sets.len(),
        }
    }

    /// Tag and set of a (line-aligned) byte address in one call — the
    /// shape every cache access path wants, so the two field extractions
    /// fuse at the head of the probe instead of being re-derived per use.
    #[inline]
    pub fn tag_and_set(&self, line_addr: u64) -> (u64, usize) {
        let tag = self.tag(line_addr);
        (tag, self.set_of_tag(tag) as usize)
    }

    /// Number of sets this decoder indexes into.
    pub fn num_sets(&self) -> u64 {
        self.sets.len()
    }

    /// The set-index function this decoder was built with.
    pub fn set_index_fn(&self) -> IndexFn {
        self.set_index_fn
    }

    /// Sector index of a byte address within its line.
    #[inline]
    pub fn sector(&self, addr: u64) -> u32 {
        (addr >> self.sector_shift) as u32 & self.sector_mask
    }

    /// L2 bank serving a (line-aligned) address.
    #[inline]
    pub fn bank(&self, line_addr: u64) -> usize {
        self.banks.index(self.tag(line_addr)) as usize
    }

    /// DRAM channel serving a (line-aligned) address.
    #[inline]
    pub fn channel(&self, line_addr: u64) -> usize {
        self.channels.index(self.tag(line_addr)) as usize
    }

    /// Splits a byte address into every field at once.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let tag = self.tag(addr);
        DecodedAddr {
            tag,
            set: self.set_of_tag(tag),
            sector: self.sector(addr),
            bank: self.banks.index(tag),
            channel: self.channels.index(tag),
        }
    }

    /// Reassembles the byte address of a sector from its decoded fields.
    /// Exact inverse of [`AddrDec::decode`] at sector granularity:
    /// `encode(d.tag, d.sector)` recovers the sector base address, and
    /// the hashed fields (`set`, `bank`, `channel`) are recomputed from
    /// the tag, never stored — which is what makes the decode aliasing-
    /// free: a `(bank, set)` pair can only collide when the tags already
    /// differ.
    pub fn encode(&self, tag: u64, sector: u32) -> u64 {
        (tag << self.line_shift) | ((sector as u64 & self.sector_mask as u64) << self.sector_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_mask_matches_modulo() {
        let h = HashedIndex::<LINE_HASH_MUL, 32>::new(64);
        for tag in (0..10_000u64).chain([u64::MAX / 32, u64::MAX / 33]) {
            let raw = tag.wrapping_mul(LINE_HASH_MUL) >> 32;
            assert_eq!(h.index(tag), raw % 64);
        }
    }

    #[test]
    fn non_pow2_uses_modulo() {
        let h = HashedIndex::<LINE_HASH_MUL, 24>::new(6);
        for tag in 0..10_000u64 {
            assert!(h.index(tag) < 6);
        }
    }

    #[test]
    fn decode_encode_round_trip() {
        let d = AddrDec::for_cache(128, 32, 32);
        for addr in (0..4096u64).map(|i| i * 32) {
            let dec = d.decode(addr);
            assert_eq!(d.encode(dec.tag, dec.sector), addr);
            assert!(dec.set < 32);
            assert!(dec.sector < 4);
        }
    }

    #[test]
    fn device_decoder_fields_in_range() {
        let d = AddrDec::for_device(32, 6, 5);
        for line in (0..4096u64).map(|i| i * 32) {
            assert!(d.bank(line) < 6);
            assert!(d.channel(line) < 5);
            assert_eq!(d.decode(line).bank, d.bank(line) as u64);
        }
    }

    #[test]
    fn modulo_mode_indexes_without_the_hash() {
        let modulo = AddrDec::for_cache_indexed(128, 128, 32, IndexFn::Modulo);
        for tag in (0..10_000u64).chain([u64::MAX / 7, u64::MAX]) {
            assert_eq!(modulo.set_of_tag(tag), tag % 32);
        }
        for tag in 0..10_000u64 {
            assert_eq!(modulo.decode(tag * 128).set, tag % 32);
        }
        // `Hashed` through the explicit constructor is exactly `for_cache`.
        let a = AddrDec::for_cache_indexed(128, 32, 32, IndexFn::Hashed);
        let b = AddrDec::for_cache(128, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn single_target_dimensions_decode_to_zero() {
        let d = AddrDec::for_cache(128, 128, 1);
        let dec = d.decode(12_345 * 128);
        assert_eq!((dec.set, dec.sector, dec.bank, dec.channel), (0, 0, 0, 0));
    }
}
