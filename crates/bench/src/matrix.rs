//! The committed benchmark matrix, as one reusable enumeration.
//!
//! `sim_core` measures the simulator core over a fixed request matrix —
//! every preset × Table 2 app × Figure 12 variant, plus the
//! aggregated-tag-array sweep — and commits the aggregate as
//! `BENCH_sim_core.json` (885 runs). The static cost model's soundness
//! gate (`analyze --verify-costmodel`) must check its hit-rate intervals
//! against *exactly those runs*, so the enumeration lives here and both
//! binaries drive it through [`drive_matrix`].
//!
//! Every run is metered: the engine's conservation laws are checked and
//! violations are counted (and logged) rather than aborting, so a single
//! broken invariant doesn't mask others.

use crate::runner::{AppPlan, SimRequest};
use cta_clustering::ClusterError;
use gpu_sim::{EngineMetrics, GpuConfig, RunStats};
use std::time::{Duration, Instant};

/// Aggregates over one matrix drive.
#[derive(Debug, Default)]
pub struct MatrixTotals {
    /// Simulations executed.
    pub runs: u64,
    /// Conservation-law violations observed (already logged to stderr).
    pub violations: u64,
    /// Summed engine event accounting.
    pub engine: EngineMetrics,
    /// Program-cache hits across all plans.
    pub cache_hits: u64,
    /// Program-cache fills across all plans.
    pub cache_fills: u64,
}

impl MatrixTotals {
    /// Fraction of cycles the event-driven engine never stepped.
    pub fn skip_ratio(&self) -> f64 {
        let denom = self.engine.issues + self.engine.cycles_skipped;
        if denom > 0 {
            self.engine.cycles_skipped as f64 / denom as f64
        } else {
            0.0
        }
    }

    /// Program-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_fills;
        if lookups > 0 {
            self.cache_hits as f64 / lookups as f64
        } else {
            0.0
        }
    }
}

/// One ATA-sweep comparison row: an app's demand hit rates under the
/// stock Maxwell preset and its aggregated-tag-array variant.
#[derive(Debug, Clone)]
pub struct AtaRow {
    /// Table 2 abbreviation.
    pub abbr: String,
    /// Baseline L1 read hit rate.
    pub l1_base: f64,
    /// ATA-variant L1 read hit rate.
    pub l1_ata: f64,
    /// Baseline L2 read hit rate.
    pub l2_base: f64,
    /// ATA-variant L2 read hit rate.
    pub l2_ata: f64,
}

/// The full ATA sweep result.
#[derive(Debug, Clone)]
pub struct AtaSummary {
    /// Stock preset name.
    pub base_arch: String,
    /// Variant preset name.
    pub ata_arch: String,
    /// One row per Table 2 app.
    pub rows: Vec<AtaRow>,
    /// Apps whose L1 hit rate improved under ATA.
    pub improved: u32,
    /// Mean L1 hit-rate delta (ATA − base).
    pub mean_l1_delta: f64,
}

/// Observer invoked once per metered run with the plan, the request, the
/// run's stats and engine metrics, and its wall time.
pub type RunObserver<'a> =
    &'a mut dyn FnMut(&AppPlan, SimRequest, &RunStats, &EngineMetrics, Duration);

/// Runs the `sim_core` matrix over `configs` (the Figure 12 phase-A/B
/// stack per app) and, when `ata` is set, the aggregated-tag-array sweep
/// appended after it — the exact run set `BENCH_sim_core.json` commits.
///
/// `observe` fires after every run; totals accumulate into `totals` so a
/// caller can drive several parts and sum them.
///
/// # Errors
///
/// Propagates the first harness failure (transform construction, suite
/// lookup, simulation error).
pub fn drive_matrix(
    configs: &[GpuConfig],
    reduced: bool,
    ata: bool,
    totals: &mut MatrixTotals,
    observe: RunObserver<'_>,
) -> Result<Option<AtaSummary>, ClusterError> {
    // Serial on purpose: the metrics aggregate deterministically and the
    // consumers (bench, soundness gate) both want reproducible order.
    for cfg in configs {
        let workloads = if reduced {
            reduced_apps(cfg)?
        } else {
            gpu_kernels::suite::table2_suite(cfg.arch)
        };
        for workload in workloads {
            let plan = AppPlan::new(cfg, workload);
            let mut phase_a: Vec<RunStats> = Vec::new();
            for req in plan.phase_a() {
                phase_a.push(metered(&plan, req, totals, observe)?);
            }
            let chosen = plan.select_throttle(&phase_a);
            for req in plan.phase_b(chosen.0) {
                metered(&plan, req, totals, observe)?;
            }
            let (hits, fills) = plan.cache_counters();
            totals.cache_hits += hits;
            totals.cache_fills += fills;
        }
    }
    if !ata {
        return Ok(None);
    }
    // ATA sweep: every Table 2 app under the stock Maxwell preset and
    // under its ATA variant (identical except `l1.aggregated_tags`),
    // Baseline request. The runs are metered like the matrix runs, so
    // they obey the same conservation laws and count into the totals.
    let base_cfg = gpu_sim::arch::gtx980();
    let ata_cfg = gpu_sim::arch::ata_variant(base_cfg.clone());
    let mut rows: Vec<AtaRow> = Vec::new();
    let mut improved = 0u32;
    let mut delta_sum = 0.0f64;
    for workload in gpu_kernels::suite::table2_suite(base_cfg.arch) {
        let base_plan = AppPlan::new(&base_cfg, workload);
        let abbr = base_plan.info.abbr.to_string();
        let twin = gpu_kernels::suite::by_abbr(&abbr, ata_cfg.arch)
            .ok_or_else(|| ClusterError::harness(format!("{abbr} not in suite")))?;
        let ata_plan = AppPlan::new(&ata_cfg, twin);
        let base = metered(&base_plan, SimRequest::Baseline, totals, observe)?;
        let ata_stats = metered(&ata_plan, SimRequest::Baseline, totals, observe)?;
        let (l1_base, l1_ata) = (base.l1.read_hit_rate(), ata_stats.l1.read_hit_rate());
        if l1_ata > l1_base {
            improved += 1;
        }
        delta_sum += l1_ata - l1_base;
        rows.push(AtaRow {
            abbr,
            l1_base,
            l1_ata,
            l2_base: base.l2.read_hit_rate(),
            l2_ata: ata_stats.l2.read_hit_rate(),
        });
    }
    let apps = rows.len().max(1);
    Ok(Some(AtaSummary {
        base_arch: base_cfg.name,
        ata_arch: ata_cfg.name,
        improved,
        mean_l1_delta: delta_sum / apps as f64,
        rows,
    }))
}

/// The reduced (CI smoke) app subset of one preset.
pub fn reduced_apps(cfg: &GpuConfig) -> Result<Vec<Box<dyn gpu_kernels::Workload>>, ClusterError> {
    ["NW", "BS", "HS"]
        .iter()
        .map(|a| {
            gpu_kernels::suite::by_abbr(a, cfg.arch)
                .ok_or_else(|| ClusterError::harness(format!("{a} not in suite")))
        })
        .collect()
}

fn metered(
    plan: &AppPlan,
    req: SimRequest,
    totals: &mut MatrixTotals,
    observe: RunObserver<'_>,
) -> Result<RunStats, ClusterError> {
    let t0 = Instant::now();
    let (stats, metrics) = plan.run_metered(req)?;
    let elapsed = t0.elapsed();
    if let Err(law) = metrics.check_conservation(&stats) {
        eprintln!(
            "conservation violation: {}/{}/{}: {law}",
            plan.cfg.name,
            plan.info.abbr,
            req.label()
        );
        totals.violations += 1;
    }
    totals.engine.absorb(&metrics);
    totals.runs += 1;
    observe(plan, req, &stats, &metrics, elapsed);
    Ok(stats)
}
