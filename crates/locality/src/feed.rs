//! Feeding profilers from *static* op streams.
//!
//! The profilers in this crate are [`TraceSink`]s: they normally consume
//! the access stream a simulation emits. Static analysis (the
//! `cta-analyzer` crate) wants the same classifiers over address streams
//! read directly off warp programs — no timing model, no cache state.
//! [`StaticFeed`] bridges the two: it wraps any sink and synthesizes
//! order-preserving [`AccessEvent`]s from `(cta, warp, op)` triples.
//!
//! All analyses in this crate are defined over the *pre-L1* stream and
//! deliberately ignore timing fields, so the synthetic `time = issue
//! counter`, `latency = 1`, `served_by = L1` placeholders do not perturb
//! any signature metric.

use gpu_sim::{AccessEvent, ArrayTag, Level, Op, TraceSink};

/// Wraps a [`TraceSink`] so it can be fed from static op streams.
#[derive(Debug, Default)]
pub struct StaticFeed<S> {
    sink: S,
    issued: u64,
}

impl<S: TraceSink> StaticFeed<S> {
    /// Wraps `sink`.
    pub fn new(sink: S) -> Self {
        StaticFeed { sink, issued: 0 }
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Unwraps into the fed sink.
    pub fn into_inner(self) -> S {
        self.sink
    }

    /// Accesses fed so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Feeds one raw access. Atomics are fed with both `is_write` and
    /// `is_atomic` set: they mutate their word (write-sharing for the
    /// reuse profilers) while staying distinguishable as synchronization
    /// for concurrency-aware sinks.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        cta: u64,
        sm_id: usize,
        warp: u32,
        tag: ArrayTag,
        is_write: bool,
        is_atomic: bool,
        bytes_per_lane: u32,
        addrs: &[u64],
    ) {
        self.sink.record(&AccessEvent {
            time: self.issued,
            sm_id,
            slot: 0,
            cta,
            warp,
            tag,
            is_write,
            is_atomic,
            bytes_per_lane,
            addrs,
            latency: 1,
            served_by: Level::L1,
        });
        self.issued += 1;
    }

    /// Feeds every memory access of one warp-program op (compute ops and
    /// barriers are skipped; prefetches carry no demand and are skipped
    /// too).
    pub fn op(&mut self, cta: u64, sm_id: usize, warp: u32, op: &Op) {
        let (access, is_write, is_atomic) = match op {
            Op::Load(a) => (a, false, false),
            Op::Store(a) => (a, true, false),
            Op::Atomic(a) => (a, true, true),
            Op::Compute(_) | Op::Barrier => return,
        };
        if access.cache_op == gpu_sim::CacheOp::PrefetchL1 {
            return;
        }
        self.access(
            cta,
            sm_id,
            warp,
            access.tag,
            is_write,
            is_atomic,
            access.bytes_per_lane,
            &access.addrs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, CategoryProfiler, TagReuseProfiler};
    use gpu_sim::{CacheOp, MemAccess};

    #[test]
    fn op_feed_matches_manual_events() {
        let mut feed = StaticFeed::new(TagReuseProfiler::new());
        for cta in 0..4u64 {
            feed.op(cta, 0, 0, &Op::Load(MemAccess::coalesced(1, 0, 32, 4)));
            feed.op(
                cta,
                0,
                0,
                &Op::Load(MemAccess::coalesced(0, cta * 128, 32, 4)),
            );
        }
        let tags = feed.into_inner();
        assert_eq!(tags.summary(1).reuses, 96);
        assert_eq!(tags.streaming_tags(64), vec![0]);
    }

    #[test]
    fn non_memory_and_prefetch_ops_skipped() {
        let mut feed = StaticFeed::new(CategoryProfiler::new());
        feed.op(0, 0, 0, &Op::Compute(10));
        feed.op(0, 0, 0, &Op::Barrier);
        feed.op(
            0,
            0,
            0,
            &Op::Load(MemAccess::scalar(0, 0, 4).with_cache_op(CacheOp::PrefetchL1)),
        );
        assert_eq!(feed.issued(), 0);
        assert_eq!(feed.sink().classify(), Category::Streaming);
    }

    #[test]
    fn stores_and_atomics_count_as_writes() {
        let mut feed = StaticFeed::new(TagReuseProfiler::new());
        feed.op(0, 0, 0, &Op::Store(MemAccess::scalar(2, 0, 4)));
        feed.op(0, 0, 0, &Op::Atomic(MemAccess::scalar(2, 4, 4)));
        assert_eq!(feed.sink().summary(2).writes, 2);
    }
}
