//! Static cost summaries: the abstract interpretation behind the
//! analyzer's `CL2xx` performance lints and the `dse` pruning harness.
//!
//! [`AccessSummary::collect`] walks every warp program of a kernel once
//! (via [`gpu_sim::walk`], CTA-major order, no timing model) and folds
//! the demand-read line stream into an abstract state: per-line touch
//! counts, distinct-CTA counts, written flags, and an exact LRU
//! stack-distance histogram. From that single walk,
//! [`AccessSummary::hit_interval`] derives a **sound** L1 read hit-rate
//! interval `[lo, hi]` for any cache geometry — sound meaning the
//! interval contains the hit rate the event-driven simulator measures
//! for *every* scheduler policy and CTA placement the engine can
//! produce.
//!
//! # Why the bounds are sound
//!
//! The engine presents a load to L1 only when the L1 is enabled and the
//! op's cache policy is `CacheAll` or `PrefetchL1` (prefetches are
//! counted as ordinary L1 reads; only the returned latency differs).
//! Each presented load is split into line transactions by the same
//! [`gpu_sim::coalesce_lines_into`] the engine uses, so the transaction
//! count `T` is a property of the access multiset alone. For suite
//! kernels, programs are context-independent; for agent-transformed
//! kernels the walker's idealized-RR dispatch covers every `(sm, slot)`
//! worklist exactly once, so the multiset — and the grouping of touches
//! by executing CTA/agent — is placement-invariant.
//!
//! **Upper bound.** Caches start empty and only demand/prefetch reads
//! install lines (under write-evict, stores *invalidate*; under
//! write-back-allocate, stores install, so written lines are excluded).
//! The device-wide first read of each of the `U` qualifying lines can
//! therefore neither hit nor hit-reserve anywhere: `hits ≤ T − U`, i.e.
//! `hi = (T − U) / T`.
//!
//! **Lower bound.** A CTA is pinned to one SM and one sector array for
//! its whole life. Call a line *stable* under a geometry when (a) the
//! number of distinct install-capable lines mapping to its set — via the
//! same [`AddrDec`] the hardware model indexes with (honouring the
//! config's [`IndexFn`]), over the per-sector sub-array — is at most the
//! associativity, and (b) under write-evict it is never stored to.
//! Victim selection always prefers invalid ways, so a set whose
//! device-wide footprint fits its ways never evicts; a stable line, once
//! read by a CTA, stays resident in that CTA's array. Every non-first
//! read of a stable line by the same CTA is then a guaranteed hit (or
//! hit-reserved, which the simulator's `read_hit_rate` also counts):
//! `hits ≥ Σ_stable (touches − ctas)`.
//!
//! **Conflict-aware lower bound (CL3xx refinement).** Sets whose
//! footprint overflows the ways can still guarantee reuse. A warp issues
//! its line transactions in program order, so for a read by warp `w`
//! re-touching line `L` in set `S`, the number `d` of *distinct other*
//! install-capable `S`-lines `w` itself touched since its previous touch
//! of `L` is exact, placement- and schedule-independent. Every other
//! warp that could share `w`'s array — under *any* placement — can only
//! ever touch lines of `S` that are not exclusive to `w`, at most
//! `O = footprint(S) − exclusive(S, w)` distinct lines across the whole
//! run. The array evicts `L` (true LRU, invalid ways preferred) only
//! after at least `associativity` distinct other lines are touched in
//! `S` while `L` sits untouched; each touch of `L` — read hit, read
//! miss (installs immediately), hit-reserved (refreshes the stamp), or
//! write-back-allocate store — leaves `L` resident or in flight. Hence
//! whenever `d + O ≤ associativity − 1`, the re-touch is a guaranteed
//! hit (or hit-reserved). Under write-evict, stores never install (they
//! only invalidate, freeing ways), so only read touches count toward
//! `d`/`O` and stored-to lines earn no credit; under write-back-allocate
//! stores install and are counted as touches. The refinement is skipped
//! entirely under [`CacheConfig::aggregated_tags`]: its LIP-style cold
//! inserts stamp new lines *below* the LRU order, so a cold-inserted
//! line can be victimized regardless of recency and the distance
//! argument does not apply (the footprint-fits bound above survives ATA,
//! because an install with a free or invalidatable way never evicts).
//!
//! The stack-distance histogram and working-set sizes are *reports*,
//! not bounds: they describe the walk's canonical interleaving, which a
//! real schedule may improve on or degrade. [`AccessSummary::set_conflicts`]
//! exposes the per-set domain itself — install-capable footprints under
//! the configured and the modulo decoder, per-set read counts and
//! stack-distance histograms — for the analyzer's CL3xx lints and the
//! `--verify-costmodel` machine check against the simulator's per-set
//! counters.
//!
//! [`CacheConfig::aggregated_tags`]: gpu_sim::CacheConfig
//! [`IndexFn`]: gpu_sim::IndexFn

use gpu_sim::{
    coalesce_lines_into, walk, AddrDec, CacheOp, FxHashMap, GpuConfig, IndexFn, KernelSpec, Op,
    WritePolicy,
};

use crate::distance::ReuseDistance;

/// Absolute slack allowed when testing measured rates against the
/// interval: covers the single rounding step of the simulator's
/// `hits / reads` division, nothing more.
pub const CONTAINMENT_EPS: f64 = 1e-9;

/// Per-line abstract state accumulated by the walk.
#[derive(Debug, Clone, Copy, Default)]
struct LineRec {
    /// Demand/prefetch read line transactions touching this line.
    touches: u64,
    /// Distinct CTAs among those touches (exact: the walk is CTA-major).
    ctas: u64,
    /// Last CTA that read-touched the line, for the distinct count.
    last_cta: u64,
    /// Touched by a cacheable (`CacheAll`/`PrefetchL1`) read.
    read: bool,
    /// Touched by a `CacheAll` store (write-evict: invalidates;
    /// write-back-allocate: installs).
    written: bool,
    /// Distinct warps among the read touches (exact: the walk is
    /// warp-contiguous).
    rwarps: u64,
    /// Walk-sequential id of the last warp that read-touched the line.
    last_rwarp: u32,
    /// Distinct warps among the `CacheAll` stores.
    swarps: u64,
    /// Walk-sequential id of the last warp that stored to the line.
    last_swarp: u32,
}

impl LineRec {
    /// The single warp that can ever have installed or touched this line
    /// on an L1 array, if one exists — the exclusivity witness of the
    /// conflict-aware bound. Under write-evict only readers install (and
    /// interfere); under write-back-allocate storers install too.
    fn exclusive_owner(&self, wba: bool) -> Option<u32> {
        if wba {
            match (self.rwarps, self.swarps) {
                (1, 0) => Some(self.last_rwarp),
                (0, 1) => Some(self.last_swarp),
                (1, 1) if self.last_rwarp == self.last_swarp => Some(self.last_rwarp),
                _ => None,
            }
        } else {
            (self.rwarps == 1).then_some(self.last_rwarp)
        }
    }
}

/// A sound L1 read hit-rate interval for one cache geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitInterval {
    /// Guaranteed-hit fraction: the measured rate cannot fall below.
    pub lo: f64,
    /// Cold-miss bound: the measured rate cannot exceed.
    pub hi: f64,
    /// Read transactions presented to the L1 (`T`); equals the
    /// simulator's `CacheStats::reads` for the same kernel and config.
    pub reads: u64,
    /// Lines whose first read provably misses (`U`).
    pub cold_lines: u64,
    /// Transactions provably hitting (stable-line reuse plus the
    /// conflict-aware per-warp credit).
    pub guaranteed_hits: u64,
    /// The subset of [`HitInterval::guaranteed_hits`] contributed by the
    /// conflict-aware refinement (reuse proven inside sets whose
    /// footprint overflows the ways). Zero under aggregated-tag mode.
    pub conflict_hits: u64,
}

impl HitInterval {
    /// Interval width `hi − lo` (the model's imprecision).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a measured hit rate lies inside the interval, allowing
    /// [`CONTAINMENT_EPS`] of floating-point slack.
    pub fn contains(&self, rate: f64) -> bool {
        rate >= self.lo - CONTAINMENT_EPS && rate <= self.hi + CONTAINMENT_EPS
    }
}

/// The walked abstract state of one kernel at one L1 line size.
///
/// Collection runs the walk exactly once; geometry queries
/// ([`AccessSummary::hit_interval`]) are pure functions of the summary
/// and can be evaluated for any number of candidate configurations.
#[derive(Debug)]
pub struct AccessSummary {
    /// L1 line size the stream was coalesced at.
    line_bytes: u32,
    /// Total cacheable read line transactions (`T`).
    reads: u64,
    /// Read transactions that bypass the L1 (`BypassL1` ops), counted at
    /// the same line granularity. Reporting only.
    bypassed_reads: u64,
    /// Store ops walked. Reporting only.
    stores: u64,
    /// Atomic ops walked (never touch the L1). Reporting only.
    atomics: u64,
    /// Memory ops of any kind (loads, stores, atomics).
    mem_ops: u64,
    /// Per-line abstract state, keyed by line number (`addr >> log2`).
    lines: FxHashMap<u64, LineRec>,
    /// Exact LRU stack distances of the cacheable read stream in walk
    /// order (reporting only — not part of the sound bounds).
    distance: ReuseDistance,
    /// Line tags of every cacheable access in walk order (CTA-major,
    /// warp-minor, per-warp program order — the engine's issue order for
    /// each individual warp). Bypassed reads and atomics are excluded.
    warp_tags: Vec<u64>,
    /// Parallel to `warp_tags`: `true` for `CacheAll` stores, `false`
    /// for cacheable reads.
    warp_stores: Vec<bool>,
    /// Start offset of each walked warp's slice in `warp_tags`; the
    /// vector length is the number of warps walked.
    warp_starts: Vec<usize>,
}

impl AccessSummary {
    /// Walks `kernel` under idealized-RR dispatch on `num_sms` SMs and
    /// folds its access stream at `line_bytes` granularity.
    pub fn collect<K: KernelSpec + ?Sized>(
        kernel: &K,
        num_sms: usize,
        warp_size: u32,
        line_bytes: u32,
    ) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let shift = line_bytes.trailing_zeros();
        let mut s = AccessSummary {
            line_bytes,
            reads: 0,
            bypassed_reads: 0,
            stores: 0,
            atomics: 0,
            mem_ops: 0,
            lines: FxHashMap::default(),
            distance: ReuseDistance::new(),
            warp_tags: Vec::new(),
            warp_stores: Vec::new(),
            warp_starts: Vec::new(),
        };
        let mut line_buf: Vec<u64> = Vec::new();
        walk::each_warp_program(kernel, num_sms, warp_size, |ctx, _warp, prog| {
            s.warp_starts.push(s.warp_tags.len());
            let wid = (s.warp_starts.len() - 1) as u32;
            for op in prog {
                match op {
                    Op::Load(a) => {
                        s.mem_ops += 1;
                        if a.cache_op == CacheOp::BypassL1 {
                            coalesce_lines_into(a, line_bytes, &mut line_buf);
                            s.bypassed_reads += line_buf.len() as u64;
                            continue;
                        }
                        // CacheAll and PrefetchL1 both present to the L1
                        // and count into its read statistics.
                        coalesce_lines_into(a, line_bytes, &mut line_buf);
                        for &line in line_buf.iter() {
                            let tag = line >> shift;
                            s.reads += 1;
                            s.distance.access(tag);
                            s.warp_tags.push(tag);
                            s.warp_stores.push(false);
                            let rec = s.lines.entry(tag).or_default();
                            rec.touches += 1;
                            if rec.ctas == 0 || rec.last_cta != ctx.cta {
                                rec.ctas += 1;
                                rec.last_cta = ctx.cta;
                            }
                            if rec.rwarps == 0 || rec.last_rwarp != wid {
                                rec.rwarps += 1;
                                rec.last_rwarp = wid;
                            }
                            rec.read = true;
                        }
                    }
                    Op::Store(a) => {
                        s.mem_ops += 1;
                        s.stores += 1;
                        if a.cache_op == CacheOp::CacheAll {
                            coalesce_lines_into(a, line_bytes, &mut line_buf);
                            for &line in line_buf.iter() {
                                let tag = line >> shift;
                                s.warp_tags.push(tag);
                                s.warp_stores.push(true);
                                let rec = s.lines.entry(tag).or_default();
                                rec.written = true;
                                if rec.swarps == 0 || rec.last_swarp != wid {
                                    rec.swarps += 1;
                                    rec.last_swarp = wid;
                                }
                            }
                        }
                    }
                    Op::Atomic(_) => {
                        s.mem_ops += 1;
                        s.atomics += 1;
                    }
                    Op::Compute(_) | Op::Barrier => {}
                }
            }
        });
        s
    }

    /// [`AccessSummary::collect`] with geometry taken from a GPU preset
    /// (its SM count, warp size and L1 line size).
    pub fn collect_on<K: KernelSpec + ?Sized>(kernel: &K, cfg: &GpuConfig) -> Self {
        AccessSummary::collect(kernel, cfg.num_sms, cfg.warp_size, cfg.l1.line_bytes)
    }

    /// L1 line size the stream was coalesced at.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Cacheable read line transactions (`T`).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Read transactions carrying an explicit `BypassL1` op.
    pub fn bypassed_reads(&self) -> u64 {
        self.bypassed_reads
    }

    /// Store ops walked.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Atomic ops walked.
    pub fn atomics(&self) -> u64 {
        self.atomics
    }

    /// Memory ops of any kind (loads including bypassed, stores,
    /// atomics).
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops
    }

    /// Distinct lines touched by cacheable reads — the read working set,
    /// in lines.
    pub fn read_working_set(&self) -> u64 {
        self.lines.values().filter(|r| r.read).count() as u64
    }

    /// Distinct lines touched by any access (read or written).
    pub fn working_set(&self) -> u64 {
        self.lines.len() as u64
    }

    /// The LRU stack-distance histogram of the walked read stream,
    /// sorted by distance. Descriptive: the walk's canonical
    /// interleaving, not a bound.
    pub fn distance_histogram(&self) -> Vec<(u64, u64)> {
        self.distance.histogram()
    }

    /// Mean stack distance over all walked reuses (`None` without
    /// reuse).
    pub fn mean_distance(&self) -> Option<f64> {
        self.distance.mean_distance()
    }

    /// Whether the kernel presents no reads to the L1 at all — cache
    /// geometry is then provably irrelevant to its hit statistics.
    pub fn geometry_irrelevant(&self) -> bool {
        self.reads == 0
    }

    /// Whether **every** cacheable read provably misses under `policy`,
    /// in every geometry and under every placement: each read line is
    /// touched exactly once device-wide, and (under write-back-allocate)
    /// never installed by a store first. Clustering, scheduling, L1
    /// capacity and associativity then cannot change the miss count.
    pub fn all_reads_cold(&self, policy: WritePolicy) -> bool {
        self.reads > 0
            && self.lines.values().all(|r| {
                !r.read || (r.touches == 1 && (policy == WritePolicy::WriteEvict || !r.written))
            })
    }

    /// The sound hit-rate interval for `cfg`'s L1 geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.l1.line_bytes` differs from the line size the
    /// summary was collected at — the transaction stream would not be
    /// the one the configuration coalesces.
    pub fn hit_interval(&self, cfg: &GpuConfig) -> HitInterval {
        assert_eq!(
            cfg.l1.line_bytes, self.line_bytes,
            "summary collected at {}B lines, queried at {}B",
            self.line_bytes, cfg.l1.line_bytes
        );
        let t = self.reads;
        if t == 0 || !cfg.l1_enabled {
            // No load is ever presented to the L1: the simulator reports
            // a 0/0 hit rate as 0.0.
            return HitInterval {
                lo: 0.0,
                hi: 0.0,
                reads: 0,
                cold_lines: 0,
                guaranteed_hits: 0,
                conflict_hits: 0,
            };
        }
        let wba = cfg.l1.write_policy == WritePolicy::WriteBackAllocate;
        // U: first read provably misses when no store can pre-install.
        let cold_lines = self
            .lines
            .values()
            .filter(|r| r.read && (!wba || !r.written))
            .count() as u64;
        let hi = (t - cold_lines) as f64 / t as f64;

        let dec = self.sub_decoder(cfg);
        let assoc = cfg.l1.associativity as u64;
        let footprint = self.set_footprints(&dec, wba);
        // A stable-set line is never evicted, so it misses at most once
        // per L1 array it is read on — and the device only has
        // `num_sms * l1_sectors` arrays. A line read by more CTAs than
        // there are arrays must co-locate readers, and every reader after
        // the array's first is a guaranteed hit under any placement.
        let arrays = cfg.num_sms as u64 * cfg.l1_sectors as u64;
        let mut guaranteed = 0u64;
        for (&tag, rec) in &self.lines {
            if !rec.read || (!wba && rec.written) {
                continue;
            }
            if footprint[dec.set_of_tag(tag) as usize] <= assoc {
                guaranteed += rec.touches - rec.ctas.min(arrays);
            }
        }
        let conflict = if cfg.l1.aggregated_tags {
            0
        } else {
            self.conflict_credit(&dec, assoc, wba, &footprint)
        };
        guaranteed += conflict;
        let lo = guaranteed as f64 / t as f64;
        debug_assert!(
            lo <= hi + CONTAINMENT_EPS,
            "interval inverted: lo {lo} > hi {hi}"
        );
        HitInterval {
            lo: lo.min(hi),
            hi,
            reads: t,
            cold_lines,
            guaranteed_hits: guaranteed,
            conflict_hits: conflict,
        }
    }

    /// The address decoder of `cfg`'s per-sector L1 sub-array — the same
    /// geometry and set-index function every [`gpu_sim::Cache`] array of
    /// a simulation run is built with.
    fn sub_decoder(&self, cfg: &GpuConfig) -> AddrDec {
        let sub = gpu_sim::CacheConfig {
            size_bytes: cfg.l1.size_bytes / cfg.l1_sectors,
            ..cfg.l1.clone()
        };
        AddrDec::for_cache_indexed(
            sub.line_bytes,
            sub.effective_sector_bytes(),
            sub.num_sets() as u64,
            cfg.l1.index_fn,
        )
    }

    /// Install-capable lines per set under `dec`: lines a read installs,
    /// plus (under write-back-allocate) lines a store installs.
    fn set_footprints(&self, dec: &AddrDec, wba: bool) -> Vec<u64> {
        let mut footprint = vec![0u64; dec.num_sets() as usize];
        for (&tag, rec) in &self.lines {
            if rec.read || (wba && rec.written) {
                footprint[dec.set_of_tag(tag) as usize] += 1;
            }
        }
        footprint
    }

    /// The conflict-aware per-warp credit: read transactions provably
    /// hitting inside sets whose footprint overflows the ways (see the
    /// module docs for the `d + O ≤ assoc − 1` argument). Callers must
    /// gate out aggregated-tag configurations.
    fn conflict_credit(&self, dec: &AddrDec, assoc: u64, wba: bool, footprint: &[u64]) -> u64 {
        if assoc == 0 || !footprint.iter().any(|&f| f > assoc) {
            return 0;
        }
        // Exclusive install-capable lines per (warp, conflict set): the
        // lines no other warp can ever touch on the same array.
        let mut excl: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for (&tag, rec) in &self.lines {
            if !(rec.read || (wba && rec.written)) {
                continue;
            }
            let set = dec.set_of_tag(tag);
            if footprint[set as usize] <= assoc {
                continue;
            }
            if let Some(w) = rec.exclusive_owner(wba) {
                *excl.entry((w, set)).or_insert(0) += 1;
            }
        }
        let mut credit = 0u64;
        // Per-set MRU recency lists, capped at `assoc` entries: the
        // position of a re-touched tag is its exact distinct-line
        // distance `d` within this warp's stream.
        let mut recency: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for (w, start) in self.warp_starts.iter().enumerate() {
            let end = self
                .warp_starts
                .get(w + 1)
                .copied()
                .unwrap_or(self.warp_tags.len());
            recency.clear();
            for i in *start..end {
                let is_store = self.warp_stores[i];
                if is_store && !wba {
                    // Write-evict stores never install: invisible to the
                    // recency argument (they can only free ways).
                    continue;
                }
                let tag = self.warp_tags[i];
                let set = dec.set_of_tag(tag);
                let f = footprint[set as usize];
                if f <= assoc {
                    continue; // stable set: handled by the fits-ways bound
                }
                let list = recency.entry(set).or_default();
                match list.iter().position(|&t| t == tag) {
                    Some(d) => {
                        list.remove(d);
                        list.insert(0, tag);
                        if !is_store {
                            let rec = &self.lines[&tag];
                            // Write-evict: a stored-to line may be
                            // invalidated between the touches.
                            let creditable = wba || !rec.written;
                            let o = f - excl.get(&(w as u32, set)).copied().unwrap_or(0);
                            if creditable && d as u64 + o < assoc {
                                credit += 1;
                            }
                        }
                    }
                    None => {
                        if list.len() as u64 == assoc {
                            list.pop();
                        }
                        list.insert(0, tag);
                    }
                }
            }
        }
        credit
    }

    /// The per-set conflict domain of this kernel under `cfg`'s L1
    /// geometry: everything the CL3xx lints and the `--verify-costmodel`
    /// per-set machine check consume.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.l1.line_bytes` differs from the line size the
    /// summary was collected at (as [`AccessSummary::hit_interval`]).
    pub fn set_conflicts(&self, cfg: &GpuConfig) -> SetConflictModel {
        assert_eq!(
            cfg.l1.line_bytes, self.line_bytes,
            "summary collected at {}B lines, queried at {}B",
            self.line_bytes, cfg.l1.line_bytes
        );
        let dec = self.sub_decoder(cfg);
        let num_sets = dec.num_sets() as usize;
        let assoc = cfg.l1.associativity as u64;
        if !cfg.l1_enabled {
            // Nothing is ever presented to (or installed in) the L1.
            return SetConflictModel {
                associativity: assoc,
                index_fn: cfg.l1.index_fn,
                footprint: vec![0; num_sets],
                modulo_footprint: vec![0; num_sets],
                set_reads: vec![0; num_sets],
                distances: vec![Vec::new(); num_sets],
                conflict_hits: 0,
            };
        }
        let wba = cfg.l1.write_policy == WritePolicy::WriteBackAllocate;
        let footprint = self.set_footprints(&dec, wba);
        let modulo_dec = AddrDec::for_cache_indexed(
            dec.line_bytes(),
            dec.line_bytes() / dec.sectors_per_line(),
            num_sets as u64,
            IndexFn::Modulo,
        );
        let modulo_footprint = self.set_footprints(&modulo_dec, wba);
        let mut set_reads = vec![0u64; num_sets];
        for (&tag, rec) in &self.lines {
            if rec.read {
                set_reads[dec.set_of_tag(tag) as usize] += rec.touches;
            }
        }
        // Per-set stack distances of the walked read stream, projected by
        // the configured decoder (descriptive, like the global histogram).
        let mut rd: Vec<ReuseDistance> = vec![ReuseDistance::new(); num_sets];
        for (i, &tag) in self.warp_tags.iter().enumerate() {
            if !self.warp_stores[i] {
                rd[dec.set_of_tag(tag) as usize].access(tag);
            }
        }
        let conflict_hits = if cfg.l1.aggregated_tags {
            0
        } else {
            self.conflict_credit(&dec, assoc, wba, &footprint)
        };
        SetConflictModel {
            associativity: assoc,
            index_fn: cfg.l1.index_fn,
            footprint,
            modulo_footprint,
            set_reads,
            distances: rd.into_iter().map(|r| r.histogram()).collect(),
            conflict_hits,
        }
    }
}

/// Per-set view of a kernel's install-capable footprint under one L1
/// geometry — the abstract domain of the analyzer's CL3xx lints and of
/// the per-set machine check in `analyze --verify-costmodel`.
///
/// All vectors are indexed by set of the per-sector sub-array (the
/// geometry every simulated [`gpu_sim::Cache`] array shares).
#[derive(Debug, Clone)]
pub struct SetConflictModel {
    /// Ways per set.
    pub associativity: u64,
    /// Set-index function of the configuration the model was built for.
    pub index_fn: IndexFn,
    /// Install-capable lines per set under the configured decoder. The
    /// simulator invariant: the union of distinct tags ever installed
    /// into set `s`, across every SM's sector arrays, equals
    /// `footprint[s]` exactly.
    pub footprint: Vec<u64>,
    /// The same lines pushed through the modulo twin decoder — the other
    /// end of the DSE indexing axis.
    pub modulo_footprint: Vec<u64>,
    /// Read transactions per set: the simulator's per-set
    /// `read_hits + read_misses`, summed over all arrays, equals this
    /// exactly.
    pub set_reads: Vec<u64>,
    /// Per-set stack-distance histograms of the walked read stream
    /// (descriptive — the canonical interleaving, not a bound).
    pub distances: Vec<Vec<(u64, u64)>>,
    /// Read transactions credited by the conflict-aware refinement at
    /// this geometry (zero under aggregated-tag mode).
    pub conflict_hits: u64,
}

impl SetConflictModel {
    /// Number of sets in the sub-array.
    pub fn num_sets(&self) -> u64 {
        self.footprint.len() as u64
    }

    /// Sets with at least one install-capable line.
    pub fn occupied_sets(&self) -> u64 {
        self.footprint.iter().filter(|&&f| f > 0).count() as u64
    }

    /// Sets whose footprint overflows the ways — where eviction is
    /// possible at all.
    pub fn conflict_sets(&self) -> u64 {
        self.footprint
            .iter()
            .filter(|&&f| f > self.associativity)
            .count() as u64
    }

    /// Whether every set's footprint fits its ways under the configured
    /// decoder — zero evictions in every array, under any scheduler.
    pub fn conflict_free(&self) -> bool {
        self.footprint.iter().all(|&f| f <= self.associativity)
    }

    /// [`SetConflictModel::conflict_free`] under the modulo decoder.
    pub fn modulo_conflict_free(&self) -> bool {
        self.modulo_footprint
            .iter()
            .all(|&f| f <= self.associativity)
    }

    /// Whether the hashed-vs-modulo indexing axis is provably dead for
    /// this kernel and geometry: the footprint fits the ways under
    /// *both* decoders, so neither configuration ever evicts and the run
    /// statistics are identical — the sound CL302 condition.
    pub fn indexing_insensitive(&self) -> bool {
        self.conflict_free() && self.modulo_conflict_free()
    }

    /// Largest per-set footprint.
    pub fn max_footprint(&self) -> u64 {
        self.footprint.iter().copied().max().unwrap_or(0)
    }

    /// Mean footprint over occupied sets (`0.0` when nothing installs).
    pub fn mean_occupied_footprint(&self) -> f64 {
        let occ = self.occupied_sets();
        if occ == 0 {
            return 0.0;
        }
        self.footprint.iter().sum::<u64>() as f64 / occ as f64
    }

    /// Camping skew: the largest per-set footprint relative to a uniform
    /// spread of the whole footprint over *all* sets (`0.0` when nothing
    /// installs). Near `1.0` means the decoder spreads the working set
    /// evenly; `num_sets()` means everything camps on a single set.
    pub fn camping_ratio(&self) -> f64 {
        let total: u64 = self.footprint.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.max_footprint() as f64 * self.num_sets() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Program};

    /// CTAs re-read a private slice `reps` times; optionally every CTA
    /// also reads one shared table line.
    #[derive(Debug, Clone)]
    struct Slices {
        ctas: u64,
        reps: u64,
        shared: bool,
    }

    impl KernelSpec for Slices {
        fn name(&self) -> String {
            "slices".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(self.ctas as u32), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            let mut prog = Vec::new();
            if self.shared {
                prog.push(Op::Load(MemAccess::coalesced(0, 0, 32, 4)));
            }
            let own = (1 << 20) + ctx.cta * 128;
            for _ in 0..self.reps {
                prog.push(Op::Load(MemAccess::coalesced(1, own, 32, 4)));
            }
            prog
        }
    }

    #[test]
    fn counts_and_working_set() {
        let k = Slices {
            ctas: 4,
            reps: 3,
            shared: true,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        // Per CTA: 1 shared line + 3 touches of its own line.
        assert_eq!(s.reads(), 4 * 4);
        assert_eq!(s.read_working_set(), 5);
        assert_eq!(s.working_set(), 5);
        assert_eq!(s.stores(), 0);
        assert!(!s.geometry_irrelevant());
    }

    #[test]
    fn interval_brackets_private_reuse() {
        let k = Slices {
            ctas: 4,
            reps: 3,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let iv = s.hit_interval(&arch::gtx570());
        // 4 lines, 3 touches each: 12 reads, 4 cold, 8 guaranteed hits
        // (tiny footprint, so every line is stable).
        assert_eq!(iv.reads, 12);
        assert_eq!(iv.cold_lines, 4);
        assert_eq!(iv.guaranteed_hits, 8);
        assert!((iv.lo - 8.0 / 12.0).abs() < 1e-12);
        assert!((iv.hi - 8.0 / 12.0).abs() < 1e-12);
        assert!(iv.contains(8.0 / 12.0));
        assert!(!iv.contains(0.5));
    }

    #[test]
    fn shared_line_loosens_lower_bound() {
        let k = Slices {
            ctas: 4,
            reps: 1,
            shared: true,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let iv = s.hit_interval(&arch::gtx570());
        // Shared line: 4 touches by 4 distinct CTAs — no guaranteed
        // reuse; own lines are cold. hi still credits the 3 potential
        // shared-line hits.
        assert_eq!(iv.reads, 8);
        assert_eq!(iv.cold_lines, 5);
        assert_eq!(iv.guaranteed_hits, 0);
        assert!((iv.hi - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(iv.lo, 0.0);
    }

    #[test]
    fn streaming_kernel_is_provably_cold() {
        let k = Slices {
            ctas: 8,
            reps: 1,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        assert!(s.all_reads_cold(WritePolicy::WriteEvict));
        let iv = s.hit_interval(&arch::gtx570());
        assert_eq!((iv.lo, iv.hi), (0.0, 0.0));
    }

    /// Store-then-read of one line: write-evict keeps the read cold,
    /// write-back-allocate may install it.
    #[derive(Debug, Clone)]
    struct WriteThenRead;

    impl KernelSpec for WriteThenRead {
        fn name(&self) -> String {
            "write-then-read".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(1), 32u32)
        }
        fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
            vec![
                Op::Store(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
                Op::Load(MemAccess::coalesced(0, 0, 32, 4)),
            ]
        }
    }

    #[test]
    fn write_policy_changes_both_bounds() {
        let s = AccessSummary::collect(&WriteThenRead, 1, 32, 128);
        let we = arch::gtx570();
        let iv = s.hit_interval(&we);
        // Write-evict: the store invalidates, the line is written — not
        // stable — so no guaranteed hits; first read still provably
        // misses.
        assert_eq!(iv.cold_lines, 1);
        assert_eq!(iv.guaranteed_hits, 0);
        assert!((iv.hi - 0.5).abs() < 1e-12);

        let mut wba = arch::gtx570();
        wba.l1.write_policy = WritePolicy::WriteBackAllocate;
        let iv = s.hit_interval(&wba);
        // Write-back-allocate: the store may install the line, so even
        // the first read may hit (hi = 1); reuse is guaranteed for the
        // second.
        assert_eq!(iv.cold_lines, 0);
        assert!((iv.hi - 1.0).abs() < 1e-12);
        assert_eq!(iv.guaranteed_hits, 1);
        assert!(!s.all_reads_cold(WritePolicy::WriteBackAllocate));
    }

    #[test]
    fn disabled_l1_collapses_interval() {
        let k = Slices {
            ctas: 2,
            reps: 2,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 2, 32, 128);
        let cfg = arch::gtx570().with_l1_disabled();
        let iv = s.hit_interval(&cfg);
        assert_eq!((iv.lo, iv.hi, iv.reads), (0.0, 0.0, 0));
    }

    /// One CTA; warp `w` runs its tag sequence in order (128B lines),
    /// each entry a scalar read or (`true`) a `CacheAll` store.
    #[derive(Debug, Clone)]
    struct WarpTags {
        seqs: Vec<Vec<(u64, bool)>>,
    }

    impl WarpTags {
        fn reads(seqs: Vec<Vec<u64>>) -> Self {
            WarpTags {
                seqs: seqs
                    .into_iter()
                    .map(|s| s.into_iter().map(|t| (t, false)).collect())
                    .collect(),
            }
        }
    }

    impl KernelSpec for WarpTags {
        fn name(&self) -> String {
            "warp-tags".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(1), self.seqs.len() as u32 * 32)
        }
        fn warp_program(&self, _ctx: &CtaContext, warp: u32) -> Program {
            self.seqs[warp as usize]
                .iter()
                .map(|&(t, st)| {
                    let a = MemAccess::scalar(0, t * 128, 4);
                    if st {
                        Op::Store(a)
                    } else {
                        Op::Load(a)
                    }
                })
                .collect()
        }
    }

    /// A gtx570 variant with a tiny modulo-indexed L1: `sets` sets of
    /// `assoc` ways, so tag `t` lands in set `t % sets` predictably.
    fn modulo_cfg(assoc: u32, sets: u32) -> GpuConfig {
        let mut cfg = arch::gtx570();
        cfg.l1.size_bytes = 128 * assoc * sets;
        cfg.l1.associativity = assoc;
        cfg.l1.index_fn = gpu_sim::IndexFn::Modulo;
        cfg
    }

    #[test]
    fn conflict_credit_tight_reuse_in_overflowing_set() {
        // Tags 0, 4, 8 all land in set 0 of a 4-set modulo array: the
        // footprint (3) overflows the 2 ways, so the stable bound gives
        // nothing — but re-touching 0 with only one distinct line in
        // between (d = 1, O = 0) is a guaranteed hit.
        let cfg = modulo_cfg(2, 4);
        let k = WarpTags::reads(vec![vec![0, 4, 0, 8]]);
        let s = AccessSummary::collect(&k, 1, 32, 128);
        let iv = s.hit_interval(&cfg);
        assert_eq!(iv.reads, 4);
        assert_eq!(iv.cold_lines, 3);
        assert_eq!(iv.conflict_hits, 1);
        assert_eq!(iv.guaranteed_hits, 1);
        assert!((iv.lo - 0.25).abs() < 1e-12);
        assert!((iv.hi - 0.25).abs() < 1e-12);

        // Two distinct lines in between (d = 2 = assoc): the line may be
        // the LRU victim, no credit.
        let far = WarpTags::reads(vec![vec![0, 4, 8, 0]]);
        let s = AccessSummary::collect(&far, 1, 32, 128);
        let iv = s.hit_interval(&cfg);
        assert_eq!(iv.conflict_hits, 0);
        assert_eq!(iv.lo, 0.0);
        assert!((iv.hi - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_lines_veto_conflict_credit() {
        // Line 4 is shared with warp 1 and line 8 belongs to it: only
        // line 0 is exclusive to warp 0, so O = 3 − 1 = 2 and the
        // re-touch (d = 1) cannot be proven resident: d + O ≥ assoc.
        let cfg = modulo_cfg(2, 4);
        let k = WarpTags::reads(vec![vec![0, 4, 0], vec![4, 8]]);
        let s = AccessSummary::collect(&k, 1, 32, 128);
        let iv = s.hit_interval(&cfg);
        assert_eq!(iv.conflict_hits, 0);
        assert_eq!(iv.lo, 0.0);
    }

    #[test]
    fn aggregated_tags_disable_conflict_credit() {
        // LIP-style cold inserts stamp below the LRU order, so the
        // distance argument does not hold: the refinement must vanish.
        let mut cfg = modulo_cfg(2, 4);
        cfg.l1.aggregated_tags = true;
        let k = WarpTags::reads(vec![vec![0, 4, 0, 8]]);
        let s = AccessSummary::collect(&k, 1, 32, 128);
        let iv = s.hit_interval(&cfg);
        assert_eq!(iv.conflict_hits, 0);
        assert_eq!(iv.guaranteed_hits, 0);
        assert_eq!(iv.lo, 0.0);
    }

    #[test]
    fn wba_stores_install_and_count_toward_distance() {
        let k = WarpTags {
            seqs: vec![vec![(8, false), (0, false), (4, true), (0, false)]],
        };
        let s = AccessSummary::collect(&k, 1, 32, 128);

        // Write-evict: the store never installs, so the read footprint
        // {8, 0} fits the 2 ways and the stable bound credits the
        // re-touch of line 0.
        let we = modulo_cfg(2, 4);
        let iv = s.hit_interval(&we);
        assert_eq!(iv.guaranteed_hits, 1);
        assert_eq!(iv.conflict_hits, 0);

        // Write-back-allocate: the store installs line 4, the footprint
        // {8, 0, 4} overflows — but the conflict credit still proves the
        // re-touch (d = 1 across the store, O = 0).
        let mut wba = modulo_cfg(2, 4);
        wba.l1.write_policy = WritePolicy::WriteBackAllocate;
        let iv = s.hit_interval(&wba);
        assert_eq!(iv.conflict_hits, 1);
        assert_eq!(iv.guaranteed_hits, 1);
    }

    #[test]
    fn set_model_reports_footprints_and_axis() {
        let cfg = modulo_cfg(2, 4);
        let k = WarpTags::reads(vec![vec![0, 4, 8, 1, 5]]);
        let s = AccessSummary::collect(&k, 1, 32, 128);
        let m = s.set_conflicts(&cfg);
        assert_eq!(m.num_sets(), 4);
        assert_eq!(m.associativity, 2);
        assert_eq!(m.footprint, vec![3, 2, 0, 0]);
        assert_eq!(m.modulo_footprint, m.footprint, "config is already modulo");
        assert_eq!(m.set_reads, vec![3, 2, 0, 0]);
        assert_eq!(m.conflict_sets(), 1);
        assert_eq!(m.occupied_sets(), 2);
        assert_eq!(m.max_footprint(), 3);
        assert!(!m.conflict_free());
        assert!(!m.indexing_insensitive());
        assert!((m.camping_ratio() - 3.0 * 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.conflict_hits, 0, "no re-touches in the stream");
        assert!(m.distances.iter().all(|h| h.is_empty()), "no reuse");

        // A tiny footprint fits the ways under both decoders: the
        // indexing axis is provably dead.
        let small = AccessSummary::collect(&WarpTags::reads(vec![vec![0, 1]]), 1, 32, 128);
        assert!(small.set_conflicts(&cfg).indexing_insensitive());
        assert!(small.set_conflicts(&arch::gtx570()).indexing_insensitive());

        // Disabled L1: nothing installs, the model is all-zero.
        let off = s.set_conflicts(&cfg.clone().with_l1_disabled());
        assert_eq!(off.footprint, vec![0; 4]);
        assert_eq!(off.occupied_sets(), 0);
        assert_eq!(off.camping_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "collected at")]
    fn line_size_mismatch_panics() {
        let k = Slices {
            ctas: 1,
            reps: 1,
            shared: false,
        };
        let s = AccessSummary::collect(&k, 1, 32, 32);
        let _ = s.hit_interval(&arch::gtx570()); // 128B lines
    }
}
