//! The fully randomized scheduler model.

use super::CtaScheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dispatches a uniformly random pending CTA on every request — the
/// behaviour the paper observed on the GTX750Ti (first-generation
/// Maxwell), where "CTAs are randomly assigned to SM 0 within each
/// individual turnaround instead of following any specific rule".
#[derive(Debug, Clone)]
pub struct Randomized {
    seed: u64,
    rng: StdRng,
    pending: Vec<u64>,
}

impl Randomized {
    /// Creates the scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Randomized {
            seed,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
        }
    }
}

impl CtaScheduler for Randomized {
    fn reset(&mut self, total_ctas: u64) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.pending = (0..total_ctas).collect();
    }

    fn next_for_sm(&mut self, _sm_id: usize, _now: u64) -> Option<u64> {
        if self.pending.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.pending.len());
        Some(self.pending.swap_remove(i))
    }

    fn remaining(&self) -> u64 {
        self.pending.len() as u64
    }

    fn label(&self) -> &'static str {
        "randomized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_in_order_for_large_grids() {
        let mut s = Randomized::new(3);
        s.reset(256);
        let got: Vec<_> = std::iter::from_fn(|| s.next_for_sm(0, 0)).collect();
        assert_ne!(got, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut s = Randomized::new(seed);
            s.reset(32);
            std::iter::from_fn(|| s.next_for_sm(0, 0)).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }
}
