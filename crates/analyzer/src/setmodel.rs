//! Pass family 8: the `CL3xx` set-conflict verifier.
//!
//! Where `CL2xx` proves hit-rate facts over the whole read stream, this
//! family looks at *where* lines land: it pushes the kernel's
//! install-capable line footprint through the same set-index decoder the
//! cache arrays use ([`gpu_sim::AddrDec`], honouring the configured
//! [`gpu_sim::IndexFn`]) and reasons per set.
//!
//! * [`SET_CAMPING`] (CL301) — one set absorbs a super-proportional
//!   footprint share under the configured indexing and overflows its
//!   ways: the classic power-of-two-stride pathology.
//! * [`INDEXING_INSENSITIVE`] (CL302) — every set's footprint fits its
//!   ways under *both* the hashed and the modulo decoder, so neither
//!   array ever evicts and the two indexing variants are provably
//!   byte-identical in their cache statistics: a dead DSE axis, and the
//!   proof rule `bench::sweep` prunes with.
//! * [`CONFLICT_BOUND_GEOMETRY`] (CL303) — most reads land in
//!   overflowing sets and the sound interval stays wide there: the
//!   geometry point's cost-model verdict is weak evidence for DSE
//!   decisions.
//! * [`SETMODEL_UNSOUND`] (CL304) — the machine-checked soundness
//!   obligation: a per-set prediction diverged from the simulator's
//!   per-set counters (emitted only by the `analyze --verify-costmodel`
//!   gate, never by the static pass).
//!
//! The per-set predictions CL304 checks are exact equalities, not
//! bounds: the union of tags ever installed into set `s` across every
//! sector array must equal the decoder-computed footprint, the per-set
//! read transaction count must match, and a set whose footprint fits its
//! ways must record zero evictions.

use crate::costmodel::MIN_READS;
use crate::diag::{
    Report, CONFLICT_BOUND_GEOMETRY, INDEXING_INSENSITIVE, SETMODEL_UNSOUND, SET_CAMPING,
};
use gpu_sim::{GpuConfig, KernelSpec, SetProfile};
use locality::{AccessSummary, SetConflictModel};

/// CL301 fires when the camping ratio (max per-set footprint over the
/// uniform per-set share) reaches this, on an overflowing set.
pub const CAMPING_RATIO: f64 = 8.0;

/// CL303 fires when at least this fraction of read transactions land in
/// overflowing sets…
pub const CONFLICT_READS_SHARE: f64 = 0.5;

/// …and the sound interval is at least this wide at the geometry.
pub const WIDE_INTERVAL: f64 = 0.5;

/// Runs the set-conflict analysis over `kernel` and appends any CL3xx
/// findings for the geometry in `cfg`, returning the per-set model so
/// callers (the DSE harness, the machine check) can consume it directly.
pub fn check_kernel<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) -> SetConflictModel {
    let summary = AccessSummary::collect_on(kernel, cfg);
    check_summary(&summary, cfg, subject, report)
}

/// [`check_kernel`] over an already-collected summary (one walk serves
/// both the CL2xx and the CL3xx pass).
pub fn check_summary(
    summary: &AccessSummary,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) -> SetConflictModel {
    report.note_subject();
    let model = summary.set_conflicts(cfg);
    if summary.reads() < MIN_READS || model.occupied_sets() == 0 {
        return model; // micro-kernels and read-free kernels stay quiet
    }
    if model.camping_ratio() >= CAMPING_RATIO && model.max_footprint() > model.associativity {
        report.emit(
            &SET_CAMPING,
            subject,
            format!(
                "set {} absorbs {} of {} install-capable lines \
                 ({:.1}x its uniform share) under {} indexing",
                model
                    .footprint
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &f)| f)
                    .map(|(s, _)| s)
                    .unwrap_or(0),
                model.max_footprint(),
                model.footprint.iter().sum::<u64>(),
                model.camping_ratio(),
                model.index_fn.label(),
            ),
        );
    }
    if model.indexing_insensitive() {
        report.emit(
            &INDEXING_INSENSITIVE,
            subject,
            format!(
                "per-set footprint fits {} ways under both hashed and modulo \
                 indexing (max {} lines): the indexing axis is provably dead",
                model.associativity,
                model.max_footprint(),
            ),
        );
    } else {
        let conflict_reads: u64 = model
            .set_reads
            .iter()
            .zip(&model.footprint)
            .filter(|&(_, &f)| f > model.associativity)
            .map(|(&r, _)| r)
            .sum();
        let share = conflict_reads as f64 / summary.reads() as f64;
        let iv = summary.hit_interval(cfg);
        if share >= CONFLICT_READS_SHARE && iv.width() >= WIDE_INTERVAL {
            report.emit(
                &CONFLICT_BOUND_GEOMETRY,
                subject,
                format!(
                    "{:.0}% of reads land in {} overflowing sets (of {}); \
                     interval width {:.4} at this geometry — prefer simulation \
                     over the static verdict for this point",
                    share * 100.0,
                    model.conflict_sets(),
                    model.num_sets(),
                    iv.width(),
                ),
            );
        }
    }
    model
}

/// The CL304 machine check: compares one kernel's per-set model against
/// the per-set counters a profiled simulation of the same kernel and
/// configuration recorded, emitting one deny-level CL304 per divergent
/// invariant. Returns the number of mismatched invariants (0 = sound).
///
/// Three exact invariants, each independent of scheduler and placement:
///
/// 1. the union of distinct tags installed into set `s` across every
///    sector array equals the decoder-computed install-capable
///    footprint of `s`;
/// 2. per-set `read_hits + read_misses` equals the modeled per-set read
///    transaction count;
/// 3. a set whose footprint fits its ways records zero evictions.
pub fn check_profile(
    model: &SetConflictModel,
    profile: &SetProfile,
    subject: &str,
    report: &mut Report,
) -> u64 {
    if profile.num_sets() as u64 != model.num_sets() {
        report.emit(
            &SETMODEL_UNSOUND,
            subject,
            format!(
                "modeled {} sets, simulator profiled {}",
                model.num_sets(),
                profile.num_sets()
            ),
        );
        return 1;
    }
    let mut mismatches = 0u64;
    let mut first: Option<String> = None;
    for s in 0..model.num_sets() as usize {
        let inst = profile.installed_footprint(s);
        if inst != model.footprint[s] {
            mismatches += 1;
            first.get_or_insert_with(|| {
                format!(
                    "set {s}: modeled footprint {} lines, simulator installed {inst}",
                    model.footprint[s]
                )
            });
            continue;
        }
        let reads = profile.read_hits[s] + profile.read_misses[s];
        if reads != model.set_reads[s] {
            mismatches += 1;
            first.get_or_insert_with(|| {
                format!(
                    "set {s}: modeled {} read transactions, simulator measured {reads}",
                    model.set_reads[s]
                )
            });
            continue;
        }
        if model.footprint[s] <= model.associativity && profile.evictions[s] != 0 {
            mismatches += 1;
            first.get_or_insert_with(|| {
                format!(
                    "set {s}: footprint {} fits {} ways yet simulator evicted {} times",
                    model.footprint[s], model.associativity, profile.evictions[s]
                )
            });
        }
    }
    if mismatches > 0 {
        report.emit(
            &SETMODEL_UNSOUND,
            subject,
            format!(
                "{mismatches} per-set invariant(s) diverge; first: {}",
                first.expect("mismatches imply a recorded example")
            ),
        );
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, IndexFn, LaunchConfig, MemAccess, Op, Program};

    /// `ctas` CTAs each stream `lines_per_cta` distinct lines with a
    /// configurable line stride (in lines), repeated `reps` times.
    #[derive(Debug, Clone)]
    struct Strided {
        ctas: u64,
        lines_per_cta: u64,
        stride_lines: u64,
        reps: u64,
    }

    impl KernelSpec for Strided {
        fn name(&self) -> String {
            "strided".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(self.ctas as u32), 32u32)
        }
        fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
            let mut prog = Vec::new();
            for _ in 0..self.reps {
                for i in 0..self.lines_per_cta {
                    let line = (ctx.cta * self.lines_per_cta + i) * self.stride_lines;
                    prog.push(Op::Load(MemAccess::coalesced(0, line * 128, 32, 4)));
                }
            }
            prog
        }
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code).collect()
    }

    /// GTX570 with a modulo-indexed L1 of `assoc` ways and `sets` sets.
    fn modulo_cfg(assoc: u32, sets: u32) -> GpuConfig {
        let mut cfg = arch::gtx570();
        cfg.l1.size_bytes = 128 * assoc * sets;
        cfg.l1.associativity = assoc;
        cfg.l1.index_fn = IndexFn::Modulo;
        cfg
    }

    #[test]
    fn pow2_stride_under_modulo_fires_cl301() {
        // Stride 32 lines over a 32-set modulo array: every line camps
        // on set 0 while 31 sets stay empty.
        let cfg = modulo_cfg(4, 32);
        let k = Strided {
            ctas: 8,
            lines_per_cta: 4,
            stride_lines: 32,
            reps: 16,
        };
        let mut r = Report::new();
        let model = check_kernel(&k, &cfg, "t/camp", &mut r);
        assert_eq!(model.occupied_sets(), 1);
        assert_eq!(model.max_footprint(), 32);
        assert!(codes(&r).contains(&"CL301"), "{}", r.render_human());
    }

    #[test]
    fn hashed_indexing_dissolves_the_camping() {
        // The same access pattern under the preset (hashed) decoder
        // spreads over many sets: CL301 must not fire.
        let mut cfg = modulo_cfg(4, 32);
        cfg.l1.index_fn = IndexFn::Hashed;
        let k = Strided {
            ctas: 8,
            lines_per_cta: 4,
            stride_lines: 32,
            reps: 16,
        };
        let mut r = Report::new();
        let model = check_kernel(&k, &cfg, "t/spread", &mut r);
        assert!(model.occupied_sets() > 4);
        assert!(model.camping_ratio() < CAMPING_RATIO);
        assert!(!codes(&r).contains(&"CL301"), "{}", r.render_human());
    }

    #[test]
    fn tiny_footprint_fires_cl302_and_nothing_else() {
        // 8 distinct unit-stride lines over 32 sets x 4 ways fit under
        // both decoders: the indexing axis is provably dead.
        let cfg = modulo_cfg(4, 32);
        let k = Strided {
            ctas: 8,
            lines_per_cta: 1,
            stride_lines: 1,
            reps: 64,
        };
        let mut r = Report::new();
        let model = check_kernel(&k, &cfg, "t/dead-axis", &mut r);
        assert!(model.indexing_insensitive());
        assert_eq!(codes(&r), vec!["CL302"], "{}", r.render_human());
    }

    #[test]
    fn overflowing_reuse_fires_cl303() {
        // 64 lines re-read 16x camp on one 4-way set: all reads land in
        // an overflowing set and the interval stays [0, ~1).
        let cfg = modulo_cfg(4, 32);
        let k = Strided {
            ctas: 1,
            lines_per_cta: 64,
            stride_lines: 32,
            reps: 16,
        };
        let mut r = Report::new();
        let model = check_kernel(&k, &cfg, "t/wide", &mut r);
        assert!(!model.conflict_free());
        assert!(codes(&r).contains(&"CL303"), "{}", r.render_human());
    }

    #[test]
    fn small_kernels_stay_quiet() {
        let cfg = modulo_cfg(4, 32);
        let k = Strided {
            ctas: 1,
            lines_per_cta: 4,
            stride_lines: 32,
            reps: 2,
        }; // 8 reads < MIN_READS
        let mut r = Report::new();
        check_kernel(&k, &cfg, "t/quiet", &mut r);
        assert!(codes(&r).is_empty(), "{}", r.render_human());
    }

    #[test]
    fn profile_agreement_and_divergence_drive_cl304() {
        let cfg = modulo_cfg(4, 32);
        let k = Strided {
            ctas: 4,
            lines_per_cta: 8,
            stride_lines: 1,
            reps: 8,
        };
        let model = {
            let mut r = Report::new();
            check_kernel(&k, &cfg, "t/model", &mut r)
        };
        let (_stats, _metrics, profile) = gpu_sim::Simulation::new(cfg.clone(), &k)
            .run_profiled()
            .expect("profiled run");

        let mut r = Report::new();
        assert_eq!(check_profile(&model, &profile, "t/sound", &mut r), 0);
        assert!(codes(&r).is_empty(), "{}", r.render_human());

        // Corrupt one per-set prediction: the machine check must catch it.
        let mut bad = model.clone();
        let s = bad
            .footprint
            .iter()
            .position(|&f| f > 0)
            .expect("occupied set exists");
        bad.footprint[s] += 1;
        assert_eq!(check_profile(&bad, &profile, "t/unsound", &mut r), 1);
        assert_eq!(codes(&r), vec!["CL304"]);
        assert_eq!(r.deny_count(), 1);
    }
}
