//! Chrome `trace_event` exporter.
//!
//! Renders a snapshot's completed spans as a JSON array of complete
//! (`"ph":"X"`) events loadable in `chrome://tracing`, Perfetto, or
//! <https://ui.perfetto.dev>. Unlike the JSONL export this view carries
//! real wall-clock timestamps (microseconds since the recorder epoch)
//! and thread lanes, so it is *not* deterministic across runs — it is
//! the flamegraph view, not the golden-file view.

use crate::jsonl::TIME_PREFIX;
use crate::snapshot::Snapshot;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot's trace as Chrome `trace_event` JSON.
///
/// `process` labels the single emitted process (pid 0); thread lanes map
/// to recorder sink indices. Wall-clock counters (`time/…`) are attached
/// as process-wide counter events at t=0 so queue-wait/busy totals show
/// up alongside the spans.
pub fn render_chrome_trace(snap: &Snapshot, process: &str) -> String {
    let mut events = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        escape(process)
    ));
    for span in &snap.trace {
        // trace_event timestamps are microseconds; keep sub-microsecond
        // spans visible by rounding the duration up to 1us.
        let ts_us = span.begin_ns / 1_000;
        let dur_us = ((span.end_ns - span.begin_ns) / 1_000).max(1);
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            escape(&span.name),
            span.thread,
            ts_us,
            dur_us,
            span.depth
        ));
    }
    for ((name, key), v) in &snap.counters {
        if !name.starts_with(TIME_PREFIX) {
            continue;
        }
        let label = if key.is_empty() {
            name.clone()
        } else {
            format!("{name}[{key}]")
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{{\"ns\":{}}}}}",
            escape(&label),
            v
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::{parse_json, Json};
    use crate::Obs;

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let obs = Obs::new();
        {
            let _outer = obs.span("matrix");
            let _inner = obs.span("GTX570/MM/BSL");
        }
        obs.counter("time/busy_ns", "", 42_000);
        let text = render_chrome_trace(&obs.snapshot(), "fig12_speedup");
        let doc = parse_json(&text).expect("valid JSON");
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        // metadata + 2 spans + 1 counter
        assert_eq!(events.len(), 4);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert!(s.get("dur").and_then(Json::as_u64).unwrap() >= 1);
        }
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("time/busy_ns")
        );
    }

    #[test]
    fn logical_counters_stay_out_of_the_trace() {
        let obs = Obs::new();
        obs.counter("sim/l1_hits", "sm0", 5);
        let text = render_chrome_trace(&obs.snapshot(), "x");
        assert!(!text.contains("l1_hits"));
    }
}
