//! Pass family 2: IR lints over warp-program op streams.
//!
//! Walks every warp program of a kernel (idealized-RR dispatch, see
//! [`gpu_sim::walk`]) and checks the *mechanical* properties of the
//! emitted ops: bypasses must not rob reused lines of their L1 residency,
//! prefetches must arrive before the demand they serve, throttles must
//! respect occupancy, and coalescing must not be pathologically divergent.

use crate::diag::{
    Report, BYPASS_ON_REUSED_LINE, DUPLICATE_PREFETCH, PATHOLOGICAL_DIVERGENCE,
    PREFETCH_AFTER_LAST_USE, PREFETCH_NEVER_USED,
};
use gpu_sim::{walk, ArrayTag, CacheOp, FxHashMap, GpuConfig, KernelSpec, Op};

/// Reference line size (128-byte Fermi/Kepler L1 line).
const LINE_BYTES: u64 = 128;

/// A bypassed tag is flagged when more than this fraction of its line
/// touches land on lines that carry demand-read reuse.
const BYPASS_REUSE_SHARE_MAX: f64 = 0.25;

/// Coalescing floor: below this many lanes per transaction on average,
/// the access pattern is pathologically divergent.
const DIVERGENCE_FLOOR: f64 = 2.0;

#[derive(Debug, Default)]
struct IrStats {
    /// Demand-read touches per (tag, line) — across the whole kernel.
    line_touches: FxHashMap<(ArrayTag, u64), u32>,
    /// Bypassed-load touches per (tag, line).
    bypass_touches: FxHashMap<(ArrayTag, u64), u32>,
    /// Prefetches with no later demand and no earlier demand either.
    prefetch_never_used: u64,
    /// Prefetches issued after the line's last demand access.
    prefetch_after_last_use: u64,
    /// Re-prefetches of a line with no intervening demand.
    duplicate_prefetch: u64,
    /// Total prefetch line touches.
    prefetches: u64,
    /// Example findings (first occurrence each).
    example_never: Option<String>,
    example_stale: Option<String>,
    example_dup: Option<String>,
    /// Coalescing accounting over demand accesses.
    lanes: u64,
    txns: u64,
}

/// The streaming IR linter: feed it warp programs in walk order
/// ([`visit`](IrPass::visit)), then [`finish`](IrPass::finish) to emit
/// findings. The driver fuses this pass with others over one walk.
#[derive(Debug, Default)]
pub struct IrPass {
    stats: IrStats,
    // Per-program scratch, recycled across warps: op-indexed event lists.
    demand_pos: FxHashMap<(ArrayTag, u64), Vec<usize>>,
    prefetch_pos: Vec<(usize, ArrayTag, u64)>,
    last_prefetch: FxHashMap<(ArrayTag, u64), usize>,
    lines_scratch: Vec<u64>,
}

impl IrPass {
    /// A fresh pass.
    pub fn new() -> Self {
        IrPass::default()
    }

    /// Feeds one warp program (walk order: CTA-major, warp-minor).
    pub fn visit(&mut self, ctx: &gpu_sim::CtaContext, _warp: u32, prog: &gpu_sim::Program) {
        let stats = &mut self.stats;
        self.demand_pos.clear();
        self.prefetch_pos.clear();
        for (idx, op) in prog.iter().enumerate() {
            let access = match op.access() {
                Some(a) => a,
                None => continue,
            };
            self.lines_scratch.clear();
            for &addr in &access.addrs {
                let line = addr / LINE_BYTES;
                if !self.lines_scratch.contains(&line) {
                    self.lines_scratch.push(line);
                }
            }
            let is_prefetch = matches!(op, Op::Load(a) if a.cache_op == CacheOp::PrefetchL1);
            if is_prefetch {
                for &line in &self.lines_scratch {
                    self.prefetch_pos.push((idx, access.tag, line));
                }
                continue;
            }
            // Demand access: coalescing accounting plus, for reads, the
            // global line-touch census feeding the bypass lint.
            stats.txns += self.lines_scratch.len() as u64;
            stats.lanes += access.addrs.len() as u64;
            if let Op::Load(a) = op {
                for &line in &self.lines_scratch {
                    *stats.line_touches.entry((a.tag, line)).or_insert(0) += 1;
                    if a.cache_op == CacheOp::BypassL1 {
                        *stats.bypass_touches.entry((a.tag, line)).or_insert(0) += 1;
                    }
                    self.demand_pos.entry((a.tag, line)).or_default().push(idx);
                }
            }
        }
        // Prefetch life-cycle per warp program.
        self.last_prefetch.clear();
        for &(idx, tag, line) in &self.prefetch_pos {
            stats.prefetches += 1;
            let key = (tag, line);
            let demands = self.demand_pos.get(&key);
            let used_after = demands.map(|d| d.iter().any(|&p| p > idx)).unwrap_or(false);
            let used_before = demands.map(|d| d.iter().any(|&p| p < idx)).unwrap_or(false);
            if let Some(&prev) = self.last_prefetch.get(&key) {
                let demand_between = demands
                    .map(|d| d.iter().any(|&p| p > prev && p < idx))
                    .unwrap_or(false);
                if !demand_between {
                    stats.duplicate_prefetch += 1;
                    stats.example_dup.get_or_insert_with(|| {
                        format!(
                            "CTA {}: tag {tag} line {line:#x} re-prefetched at op {idx}",
                            ctx.cta
                        )
                    });
                }
            }
            self.last_prefetch.insert(key, idx);
            if used_after {
                continue;
            }
            if used_before {
                stats.prefetch_after_last_use += 1;
                stats.example_stale.get_or_insert_with(|| {
                    format!(
                        "CTA {}: tag {tag} line {line:#x} prefetched at op {idx}, last demand earlier",
                        ctx.cta
                    )
                });
            } else {
                stats.prefetch_never_used += 1;
                stats.example_never.get_or_insert_with(|| {
                    format!(
                        "CTA {}: tag {tag} line {line:#x} prefetched at op {idx}, never demanded",
                        ctx.cta
                    )
                });
            }
        }
    }

    /// Emits the pass's findings onto `report` under `subject`.
    pub fn finish(self, subject: &str, report: &mut Report) {
        report.note_subject();
        finish_stats(self.stats, subject, report);
    }
}

/// Walks `kernel` and emits the IR lints onto `report` under `subject`
/// (standalone wrapper around [`IrPass`]).
pub fn check_kernel<K: KernelSpec + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    subject: &str,
    report: &mut Report,
) {
    let mut pass = IrPass::new();
    walk::each_warp_program_on(kernel, cfg, |ctx, warp, prog| pass.visit(ctx, warp, prog));
    pass.finish(subject, report);
}

fn finish_stats(stats: IrStats, subject: &str, report: &mut Report) {
    // CL021: per-tag share of bypassed line touches landing on lines with
    // demand-read reuse (touched more than once overall).
    let mut per_tag: FxHashMap<ArrayTag, (u64, u64)> = FxHashMap::default();
    for (&(tag, line), &n) in &stats.bypass_touches {
        let entry = per_tag.entry(tag).or_insert((0, 0));
        entry.0 += u64::from(n);
        if stats.line_touches.get(&(tag, line)).copied().unwrap_or(0) > 1 {
            entry.1 += u64::from(n);
        }
    }
    let mut flagged: Vec<(ArrayTag, f64)> = per_tag
        .iter()
        .filter(|(_, &(total, reused))| {
            total > 0 && reused as f64 / total as f64 > BYPASS_REUSE_SHARE_MAX
        })
        .map(|(&t, &(total, reused))| (t, reused as f64 / total as f64))
        .collect();
    flagged.sort_by_key(|a| a.0);
    for (tag, share) in flagged {
        report.emit(
            &BYPASS_ON_REUSED_LINE,
            subject,
            format!(
                "tag {tag}: {:.0}% of bypassed line touches hit reused lines (threshold {:.0}%)",
                share * 100.0,
                BYPASS_REUSE_SHARE_MAX * 100.0
            ),
        );
    }

    // CL022/CL023/CL024: prefetch life-cycle findings.
    if stats.prefetch_never_used > 0 {
        report.emit(
            &PREFETCH_NEVER_USED,
            subject,
            format!(
                "{} of {} prefetches never demanded (e.g. {})",
                stats.prefetch_never_used,
                stats.prefetches,
                stats.example_never.as_deref().unwrap_or("?")
            ),
        );
    }
    if stats.prefetch_after_last_use > 0 {
        report.emit(
            &PREFETCH_AFTER_LAST_USE,
            subject,
            format!(
                "{} of {} prefetches issued after the line's last use (e.g. {})",
                stats.prefetch_after_last_use,
                stats.prefetches,
                stats.example_stale.as_deref().unwrap_or("?")
            ),
        );
    }
    if stats.duplicate_prefetch > 0 {
        report.emit(
            &DUPLICATE_PREFETCH,
            subject,
            format!(
                "{} of {} prefetches duplicate a pending prefetch (e.g. {})",
                stats.duplicate_prefetch,
                stats.prefetches,
                stats.example_dup.as_deref().unwrap_or("?")
            ),
        );
    }

    // CL025: pathological divergence.
    if stats.txns > 0 {
        let avg = stats.lanes as f64 / stats.txns as f64;
        if avg < DIVERGENCE_FLOOR {
            report.emit(
                &PATHOLOGICAL_DIVERGENCE,
                subject,
                format!(
                    "average coalescing degree {avg:.2} lanes/transaction (floor {DIVERGENCE_FLOOR:.1})"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{arch, CtaContext, Dim3, LaunchConfig, MemAccess, Program};

    fn cfg() -> GpuConfig {
        arch::gtx570()
    }

    /// Kernel emitting a fixed program for every CTA/warp.
    #[derive(Debug, Clone)]
    struct Fixed {
        prog: Program,
        ctas: u32,
    }

    impl KernelSpec for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(Dim3::linear(self.ctas), 32u32)
        }
        fn warp_program(&self, _ctx: &CtaContext, _warp: u32) -> Program {
            self.prog.clone()
        }
    }

    #[test]
    fn clean_program_stays_clean() {
        let k = Fixed {
            prog: vec![
                Op::Load(MemAccess::scalar(0, 0, 4).with_cache_op(CacheOp::PrefetchL1)),
                Op::Compute(4),
                Op::Load(MemAccess::scalar(0, 0, 4)),
                Op::Load(MemAccess::coalesced(1, 4096, 32, 4)),
            ],
            ctas: 2,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert_eq!(r.deny_count(), 0, "{}", r.render_human());
        assert_eq!(r.warn_count(), 0);
    }

    #[test]
    fn never_used_prefetch_fires_cl022() {
        let k = Fixed {
            prog: vec![
                Op::Load(MemAccess::scalar(0, 1 << 20, 4).with_cache_op(CacheOp::PrefetchL1)),
                Op::Load(MemAccess::scalar(0, 0, 4)),
            ],
            ctas: 1,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert!(r.has(&PREFETCH_NEVER_USED), "{}", r.render_human());
    }

    #[test]
    fn stale_prefetch_fires_cl023() {
        let k = Fixed {
            prog: vec![
                Op::Load(MemAccess::scalar(0, 0, 4)),
                Op::Load(MemAccess::scalar(0, 0, 4).with_cache_op(CacheOp::PrefetchL1)),
            ],
            ctas: 1,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert!(r.has(&PREFETCH_AFTER_LAST_USE));
        assert!(!r.has(&PREFETCH_NEVER_USED));
    }

    #[test]
    fn duplicate_prefetch_fires_cl024() {
        let k = Fixed {
            prog: vec![
                Op::Load(MemAccess::scalar(0, 0, 4).with_cache_op(CacheOp::PrefetchL1)),
                Op::Load(MemAccess::scalar(0, 0, 4).with_cache_op(CacheOp::PrefetchL1)),
                Op::Load(MemAccess::scalar(0, 0, 4)),
            ],
            ctas: 1,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert!(r.has(&DUPLICATE_PREFETCH));
        assert_eq!(r.deny_count(), 0, "duplicates are warn-level");
    }

    #[test]
    fn bypass_on_reused_table_fires_cl021() {
        // Every CTA bypass-loads the same table line: 100% of bypassed
        // touches hit a reused line.
        let k = Fixed {
            prog: vec![Op::Load(
                MemAccess::coalesced(0, 0, 32, 4).with_cache_op(CacheOp::BypassL1),
            )],
            ctas: 8,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert!(r.has(&BYPASS_ON_REUSED_LINE), "{}", r.render_human());
    }

    #[test]
    fn bypass_of_true_stream_is_clean() {
        #[derive(Debug, Clone)]
        struct Stream;
        impl KernelSpec for Stream {
            fn name(&self) -> String {
                "stream".into()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig::new(Dim3::linear(8), 32u32)
            }
            fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
                vec![Op::Load(
                    MemAccess::coalesced(0, ctx.cta * 128, 32, 4).with_cache_op(CacheOp::BypassL1),
                )]
            }
        }
        let mut r = Report::new();
        check_kernel(&Stream, &cfg(), "t", &mut r);
        assert!(!r.has(&BYPASS_ON_REUSED_LINE));
    }

    #[test]
    fn divergent_gather_fires_cl025() {
        // 32 lanes spread across 32 distinct lines: 1 lane/transaction.
        let addrs: Vec<u64> = (0..32).map(|l| l * 4096).collect();
        let k = Fixed {
            prog: vec![Op::Load(MemAccess::gather(0, addrs, 4))],
            ctas: 2,
        };
        let mut r = Report::new();
        check_kernel(&k, &cfg(), "t", &mut r);
        assert!(r.has(&PATHOLOGICAL_DIVERGENCE));
        assert_eq!(r.deny_count(), 0, "divergence is warn-level");
    }
}
