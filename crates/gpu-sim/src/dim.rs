//! Three-dimensional launch geometry, mirroring CUDA's `dim3`.

use std::fmt;

/// A three-dimensional extent or coordinate, like CUDA's `dim3`.
///
/// Used for both kernel grid dimensions (CTAs per grid) and block
/// dimensions (threads per CTA).
///
/// # Examples
///
/// ```
/// use gpu_sim::Dim3;
///
/// let grid = Dim3::new(4, 2, 1);
/// assert_eq!(grid.count(), 8);
/// assert_eq!(grid.linear_row_major(3, 1, 0), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dim3 {
    /// Extent along X (fastest-varying in row-major order).
    pub x: u32,
    /// Extent along Y.
    pub y: u32,
    /// Extent along Z (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// Creates a new extent. Zero components are permitted here but are
    /// rejected by [`LaunchConfig::validate`](crate::LaunchConfig::validate).
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A one-dimensional extent `(n, 1, 1)`.
    pub const fn linear(n: u32) -> Self {
        Dim3::new(n, 1, 1)
    }

    /// A two-dimensional extent `(x, y, 1)`.
    pub const fn plane(x: u32, y: u32) -> Self {
        Dim3::new(x, y, 1)
    }

    /// Total number of elements covered by this extent.
    pub const fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Row-major linearization: `z * (x*y) + y * x + x`.
    ///
    /// This is CUDA's default CTA indexing
    /// (`blockIdx.y * gridDim.x + blockIdx.x` for 2D grids).
    pub const fn linear_row_major(&self, x: u32, y: u32, z: u32) -> u64 {
        (z as u64 * self.y as u64 + y as u64) * self.x as u64 + x as u64
    }

    /// Column-major linearization for 2D extents:
    /// `x * gridDim.y + y` (the paper's column-major CTA indexing).
    pub const fn linear_col_major(&self, x: u32, y: u32) -> u64 {
        x as u64 * self.y as u64 + y as u64
    }

    /// Inverse of [`linear_row_major`](Self::linear_row_major).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `linear >= self.count()`.
    pub const fn coords_row_major(&self, linear: u64) -> (u32, u32, u32) {
        debug_assert!(linear < self.count());
        let x = (linear % self.x as u64) as u32;
        let rest = linear / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        (x, y, z)
    }

    /// Inverse of [`linear_col_major`](Self::linear_col_major) for 2D extents.
    pub const fn coords_col_major(&self, linear: u64) -> (u32, u32) {
        debug_assert!(linear < self.count());
        let x = (linear / self.y as u64) as u32;
        let y = (linear % self.y as u64) as u32;
        (x, y)
    }
}

impl Default for Dim3 {
    /// The unit extent `(1, 1, 1)`.
    fn default() -> Self {
        Dim3::new(1, 1, 1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(n: u32) -> Self {
        Dim3::linear(n)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::plane(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_components() {
        assert_eq!(Dim3::new(3, 4, 5).count(), 60);
        assert_eq!(Dim3::linear(7).count(), 7);
        assert_eq!(Dim3::default().count(), 1);
    }

    #[test]
    fn row_major_round_trip() {
        let d = Dim3::new(5, 3, 2);
        for z in 0..2 {
            for y in 0..3 {
                for x in 0..5 {
                    let lin = d.linear_row_major(x, y, z);
                    assert_eq!(d.coords_row_major(lin), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn col_major_round_trip() {
        let d = Dim3::plane(5, 3);
        for x in 0..5 {
            for y in 0..3 {
                let lin = d.linear_col_major(x, y);
                assert_eq!(d.coords_col_major(lin), (x, y));
            }
        }
    }

    #[test]
    fn row_major_matches_cuda_convention() {
        // blockIdx.y * gridDim.x + blockIdx.x
        let d = Dim3::plane(3, 2);
        assert_eq!(d.linear_row_major(1, 1, 0), 4);
        assert_eq!(d.linear_col_major(1, 1), 3);
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(4u32), Dim3::linear(4));
        assert_eq!(Dim3::from((4u32, 2u32)), Dim3::plane(4, 2));
        assert_eq!(Dim3::from((4u32, 2u32, 3u32)), Dim3::new(4, 2, 3));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Dim3::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }
}
