//! # gpu-sim
//!
//! A cycle-approximate, trace-driven GPU execution-model simulator — the
//! hardware substrate for the reproduction of *"Locality-Aware CTA
//! Clustering for Modern GPUs"* (ASPLOS 2017).
//!
//! The simulator models the parts of a GPU that the paper's phenomena live
//! in:
//!
//! * **SMs** with warp slots, CTA slots, register-file and shared-memory
//!   occupancy limits, greedy loose-round-robin warp issue, and CTA-wide
//!   barriers ([`occupancy`], [`Simulation`]);
//! * **per-SM L1 / L1/Tex unified caches** — 128-byte-line write-evict L1
//!   on Fermi/Kepler, 32-byte-line *sectored* unified cache on
//!   Maxwell/Pascal — with MSHRs and hit-reserved semantics
//!   ([`Cache`]);
//! * a **banked, write-back L2** and multi-channel DRAM with finite
//!   bandwidth ([`MemorySystem`]);
//! * pluggable **GigaThread-engine models** ([`sched`]): strict
//!   round-robin (the folklore assumption), a perturbed hardware-like
//!   default, and the randomized behaviour of first-generation Maxwell.
//!
//! Kernels are *workload models*: implementations of [`KernelSpec`] that
//! describe, per warp, the global-memory accesses, compute delays and
//! barriers of the real kernel. Programs are generated after CTA dispatch
//! through a [`CtaContext`] carrying the physical SM id, CTA slot and
//! per-SM arrival ticket — the same hardware state (`%smid`, `%warpid`,
//! global atomics) the paper's agent-based clustering reads at run time.
//!
//! Simulations are deterministic: identical inputs and seeds produce
//! identical [`RunStats`].
//!
//! ## Quick start
//!
//! ```
//! use gpu_sim::{arch, CtaContext, KernelSpec, LaunchConfig, MemAccess, Op, Program, Simulation};
//!
//! /// Each CTA re-reads a small shared table, then streams its own slice.
//! struct TableLookup;
//!
//! impl KernelSpec for TableLookup {
//!     fn name(&self) -> String { "table-lookup".into() }
//!     fn launch(&self) -> LaunchConfig { LaunchConfig::new(128u32, 64u32) }
//!     fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
//!         let own = 0x100000 + (ctx.cta * 2 + warp as u64) * 128;
//!         vec![
//!             Op::Load(MemAccess::coalesced(0, 0, 32, 4)),   // shared table
//!             Op::Load(MemAccess::coalesced(1, own, 32, 4)), // private slice
//!         ]
//!     }
//! }
//!
//! let stats = Simulation::new(arch::tesla_k40(), &TableLookup).run()?;
//! println!("cycles: {}, L1 hit rate: {:.2}", stats.cycles, stats.l1_hit_rate());
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addrdec;
pub mod arch;
mod cache;
mod coalesce;
mod config;
mod dim;
mod engine;
mod error;
pub mod export;
pub mod fasthash;
mod kernel;
mod memory;
mod occupancy;
mod program;
pub mod sched;
mod sm;
mod stats;
mod trace;
pub mod walk;
mod work;

pub use addrdec::{AddrDec, DecodedAddr, HashedIndex};
pub use cache::{Cache, CacheStats, ReadOutcome, SetProfile, WriteOutcome};
pub use coalesce::{
    coalesce_line_count, coalesce_lines, coalesce_lines_into, coalescing_degree, CoalesceShape,
    LaneSet,
};
pub use config::{ArchGen, CacheConfig, GpuConfig, IndexFn, MemoryTimings, WritePolicy};
pub use dim::Dim3;
pub use engine::{EngineMetrics, Simulation};
pub use error::SimError;
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kernel::{
    ArrayTag, CacheOp, CtaContext, KernelSpec, LaunchConfig, MemAccess, Op, Program, ShapeHint,
};
pub use memory::{Level, MemoryStats, MemorySystem};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use program::ProgramBuilder;
pub use stats::{geometric_mean, CtaPlacement, RunStats};
pub use trace::{AccessEvent, OwnedAccessEvent, TraceSink, VecSink};
pub use work::{CacheWork, WorkModel};
