//! Seeded negative tests at the driver level: deliberately broken
//! workloads and mismatched configurations must make the lints that the
//! module-level unit tests cannot reach (construction failures,
//! cross-config occupancy disagreement) fire through the same entry
//! points the `analyze` bin uses.

use cta_analyzer::diag::{lint_by_code, Report};
use cta_analyzer::{analyze_workload, transform};
use cta_clustering::{AgentKernel, Indexing, Partition};
use gpu_kernels::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{arch, CtaContext, Dim3, KernelSpec, LaunchConfig, MemAccess, Op, Program};

/// A workload whose block is too large for any Table 1 preset (64 warps
/// against 48–64 warp slots with 21 registers per thread), so the agent
/// transform's occupancy probe must fail.
#[derive(Debug, Clone)]
struct Unschedulable;

impl KernelSpec for Unschedulable {
    fn name(&self) -> String {
        "unschedulable".into()
    }
    fn launch(&self) -> LaunchConfig {
        let mut l = LaunchConfig::new(Dim3::linear(30), 2048u32);
        l.regs_per_thread = 64;
        l
    }
    fn warp_program(&self, ctx: &CtaContext, _warp: u32) -> Program {
        vec![Op::Load(MemAccess::coalesced(0, ctx.cta * 128, 32, 4))]
    }
}

impl Workload for Unschedulable {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            abbr: "XX",
            full_name: "unschedulable fixture",
            description: "negative-test fixture",
            category: PaperCategory::Streaming,
            warps_per_cta: 64,
            partition: PartitionHint::Y,
            opt_agents: [1, 1, 1, 1],
            regs: [64, 64, 64, 64],
            smem: 0,
            source: "test",
        }
    }
}

#[test]
fn unschedulable_workload_fires_cl004() {
    let mut r = Report::new();
    analyze_workload(Box::new(Unschedulable), &arch::gtx570(), &mut r);
    assert!(
        r.has(lint_by_code("CL004").unwrap()),
        "construction failure must be reported:\n{}",
        r.render_human()
    );
    assert!(r.deny_count() > 0);
}

#[test]
fn cross_config_agents_fire_cl014() {
    // Agents built for the 15-SM GTX570 audited against the 16-SM
    // GTX980: the grid is no longer SMs x MAX_AGENTS and the occupancy
    // bound differs.
    let built_on = arch::gtx570();
    let audited_on = arch::gtx980();
    let w = gpu_kernels::suite::by_abbr("MM", built_on.arch).unwrap();
    let partition =
        Partition::new(w.launch().grid, built_on.num_sms as u64, Indexing::RowMajor).unwrap();
    let agents = AgentKernel::with_partition(w, &built_on, partition).unwrap();
    let mut r = Report::new();
    transform::check_agent_occupancy(&agents, &audited_on, "neg", &mut r);
    assert!(
        r.has(lint_by_code("CL014").unwrap()),
        "cross-config audit must flag the mismatch:\n{}",
        r.render_human()
    );
}
