//! HST — 64-bin histogramming (CUDA SDK `histogram`).
//!
//! Each CTA streams a slice of input data and scatters counts into
//! per-CTA partial histograms that are later merged. The inter-CTA
//! locality that exists (popular bins touched by everyone) is
//! data-dependent — the paper's data-related category, not exploitable
//! before runtime.

use crate::common::{gather_words, mix_range, read_words, scatter_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "HST",
    full_name: "histogram",
    description: "64-bin histogramming",
    category: PaperCategory::Data,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [5, 5, 6, 7],
    regs: [15, 19, 20, 15],
    smem: 1024,
    source: "CUDA SDK",
};

const TAG_DATA: u16 = 0;
const TAG_BINS: u16 = 1;

/// The histogram workload model.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// CTAs in the 1D grid.
    pub grid: u32,
    /// Input chunks (of 256 words) per CTA.
    pub chunks: u32,
    /// Deterministic seed shaping the bin distribution.
    pub seed: u64,
    /// Registers per thread.
    pub regs: u32,
}

impl Histogram {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Histogram {
            grid: 256,
            chunks: 4,
            seed: 0x4057,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid: u32, chunks: u32, seed: u64) -> Self {
        Histogram {
            grid,
            chunks,
            seed,
            regs: INFO.regs[0],
        }
    }
}

impl KernelSpec for Histogram {
    fn name(&self) -> String {
        format!("HST(grid={},c{})", self.grid, self.chunks)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid, 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let mut prog = Program::new();
        for c in 0..self.chunks as u64 {
            // Stream this warp's input slice.
            let word = (ctx.cta * self.chunks as u64 + c) * 2048 + warp as u64 * 32;
            prog.push(read_words(TAG_DATA, word, 32));
            // Scatter into bins: a skewed, data-dependent distribution of
            // the 64 global bins (per-CTA sub-histograms of 64 bins each,
            // the popular bins colliding across CTAs by accident).
            let bins: Vec<u64> = (0..32)
                .map(|l| {
                    let h = mix_range(self.seed ^ (word + l), 256);
                    // Zipf-flavoured skew: most updates land in few bins.
                    let bin = if h < 128 { h % 8 } else { h % 64 };
                    (ctx.cta % 16) * 64 + bin
                })
                .collect();
            prog.push(scatter_words(TAG_BINS, &bins));
            prog.push(Op::Compute(4));
        }
        // Merge pass: re-read this CTA's sub-histogram.
        prog.push(Op::Barrier);
        let indices: Vec<u64> = (0..32)
            .map(|l| (ctx.cta % 16) * 64 + warp as u64 * 8 + l % 8)
            .collect();
        prog.push(gather_words(TAG_BINS, &indices));
        prog
    }
}

impl Workload for Histogram {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn bins_collide_across_ctas() {
        let h = Histogram::new(32, 1, 1);
        let bins = |cta| {
            h.warp_program(&ctx(cta), 0)
                .iter()
                .filter_map(|op| match op {
                    Op::Store(a) if a.tag == TAG_BINS => Some(a.addrs.clone()),
                    _ => None,
                })
                .flatten()
                .collect::<std::collections::BTreeSet<_>>()
        };
        // CTAs 0 and 16 map to the same sub-histogram: accidental sharing.
        assert!(bins(0).intersection(&bins(16)).count() > 0);
    }

    #[test]
    fn input_stream_is_disjoint() {
        let h = Histogram::new(8, 2, 1);
        let data = |cta| {
            (0..8)
                .flat_map(|w| h.warp_program(&ctx(cta), w))
                .filter_map(|op| match op {
                    Op::Load(a) if a.tag == TAG_DATA => Some(a.addrs.clone()),
                    _ => None,
                })
                .flatten()
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(data(0).intersection(&data(1)).count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Histogram::new(4, 1, 9).warp_program(&ctx(0), 0);
        let b = Histogram::new(4, 1, 9).warp_program(&ctx(0), 0);
        assert_eq!(a, b);
    }
}
