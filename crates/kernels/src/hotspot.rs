//! HS — processor thermal simulation (Rodinia `hotspot`).
//!
//! A 2D Jacobi-style stencil over temperature and power grids. Each
//! 16x16-pixel CTA loads its tile plus a one-pixel halo; the vertical
//! halo columns overlap same-row neighbour CTAs, giving algorithm-related
//! reuse clustered by Y-partitioning. The pyramid structure re-reads the
//! expanded tile once per time step.

use crate::common::{read_words, write_words};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "HS",
    full_name: "hotspot",
    description: "Estimate processor temperature",
    category: PaperCategory::Algorithm,
    warps_per_cta: 8,
    partition: PartitionHint::Y,
    opt_agents: [3, 5, 6, 6],
    regs: [35, 38, 36, 38],
    smem: 3072,
    source: "Rodinia",
};

const TAG_TEMP: u16 = 0;
const TAG_POWER: u16 = 1;
const TAG_OUT: u16 = 2;

/// The hotspot stencil workload model.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// CTA tiles along X (16 pixels each).
    pub grid_x: u32,
    /// CTA tiles along Y.
    pub grid_y: u32,
    /// Pyramid time steps fused per kernel.
    pub steps: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Hotspot {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Hotspot {
            grid_x: 16,
            grid_y: 48,
            steps: 2,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32, steps: u32) -> Self {
        Hotspot {
            grid_x,
            grid_y,
            steps,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_x as u64 * 16 + 2
    }
}

impl KernelSpec for Hotspot {
    fn name(&self) -> String {
        format!("HS({}x{},t{})", self.grid_x, self.grid_y, self.steps)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), Dim3::plane(16, 16))
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let mut prog = Program::new();
        // 18 halo-expanded rows split across 8 warps: warp w loads rows
        // [ceil(18*w/8), ceil(18*(w+1)/8)).
        let r0 = (18 * warp as u64).div_ceil(8);
        let r1 = (18 * (warp as u64 + 1)).div_ceil(8);
        for step in 0..self.steps as u64 {
            for r in r0..r1 {
                let row = by as u64 * 16 + r;
                let col = bx as u64 * 16;
                let word = row * self.row_words() + col;
                // 18 columns: the +-1 halo overlaps bx-neighbours.
                prog.push(read_words(TAG_TEMP, word, 18));
                if step == 0 {
                    prog.push(read_words(TAG_POWER, word, 18));
                }
            }
            prog.push(Op::Barrier);
            prog.push(Op::Compute(12));
            prog.push(Op::Barrier);
        }
        // Warp w writes 2 interior output rows.
        for r in 0..2u64 {
            let row = by as u64 * 16 + warp as u64 * 2 + r;
            let word = row * self.row_words() + bx as u64 * 16;
            prog.push(write_words(TAG_OUT, word, 16));
        }
        prog
    }
}

impl Workload for Hotspot {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn table2_occupancy() {
        // Table 2 reports 3/5/6/6; our calculator (no register-allocation
        // granularity) gives 3/6/6/6 — Kepler rounds 64K/(38*256) up to 6
        // where real ptxas allocation granularity yields 5.
        let expect = [3u32, 6, 7, 6];
        for (i, cfg) in arch::all_presets().into_iter().enumerate() {
            let h = Hotspot::for_arch(cfg.arch);
            let occ = gpu_sim::occupancy(&cfg, &h.launch()).unwrap();
            assert_eq!(occ.ctas_per_sm, expect[i], "on {}", cfg.name);
        }
    }

    #[test]
    fn warps_cover_all_18_halo_rows() {
        let h = Hotspot::new(2, 2, 1);
        let mut rows: Vec<u64> = Vec::new();
        for w in 0..8 {
            rows.extend(
                h.warp_program(&ctx(0), w)
                    .iter()
                    .filter_map(|op| op.access())
                    .filter(|a| a.tag == TAG_TEMP)
                    .map(|a| a.addrs[0] / 4 / h.row_words()),
            );
        }
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn horizontal_halo_overlaps_row_neighbour() {
        let h = Hotspot::new(4, 2, 1);
        let words = |cta| {
            (0..8)
                .flat_map(|w| h.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_TEMP)
                .flat_map(|a| a.addrs)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let shared = words(0).intersection(&words(1)).count();
        assert!(
            shared > 0,
            "halo columns must be shared between bx=0 and bx=1"
        );
    }

    #[test]
    fn steps_scale_temp_rereads() {
        let h1 = Hotspot::new(2, 2, 1);
        let h3 = Hotspot::new(2, 2, 3);
        let count = |h: &Hotspot| {
            h.warp_program(&ctx(0), 0)
                .iter()
                .filter(|op| op.access().map(|a| a.tag == TAG_TEMP).unwrap_or(false))
                .count()
        };
        assert_eq!(count(&h3), 3 * count(&h1));
    }
}
