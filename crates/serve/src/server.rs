//! The serving core: a sharded worker pool over line-delimited JSON.
//!
//! Three roles, wired with bounded handoff:
//!
//! * The **reader** (caller thread) pulls request lines, stamps each
//!   with a sequence number and enqueue time, and hands it to the
//!   worker pool. When the number of in-flight requests reaches the
//!   configured queue capacity the request is **shed** instead: the
//!   reader immediately emits an `"overload"` response with
//!   `retry_after_ms` (the 429 idiom) without touching the pool.
//! * **Workers** (`threads` of them, defaulting to the
//!   `cluster_bench::par` thread configuration) parse, consult the
//!   content-addressed [`PlanCache`], plan on miss, and render.
//! * The **writer** reorders completed responses by sequence number so
//!   output order always equals input order, no matter how workers
//!   interleave — the property that makes responses byte-identical
//!   across 1, 2 and 8 worker threads.
//!
//! Graceful shutdown: EOF on the input drains the queue, flushes the
//! writer and joins the pool; a `{"op":"shutdown"}` control line does
//! the same from the client side (and stops a TCP accept loop).
//!
//! Everything is instrumented through `cta-obs` when enabled: request /
//! response / shed counters, per-code error counters, cache hit and
//! miss counters, and latency + queue-wait histograms (under the
//! `time/` prefix, so the deterministic JSONL export stays stable).

use crate::cache::{CacheStats, PlanCache};
use crate::planner::plan_request;
use crate::proto::{parse_request, render_error, ProtoError};
use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; `0` means the `cluster_bench::par` configuration
    /// (`CLUSTER_BENCH_THREADS` or the machine's parallelism).
    pub threads: usize,
    /// In-flight request cap before the reader sheds; `0` disables
    /// shedding (tests and batch runs want determinism, not backpressure).
    pub queue_cap: usize,
    /// `retry_after_ms` hint attached to shed responses.
    pub retry_after_ms: u64,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            queue_cap: 1024,
            retry_after_ms: 25,
            default_deadline_ms: None,
        }
    }
}

/// What one [`Server::serve_lines`] session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Request lines read.
    pub requests: u64,
    /// Response lines written (== requests: every line is answered).
    pub responses: u64,
    /// Requests answered with `"overload"` by the shedding path.
    pub shed: u64,
    /// Whether a shutdown control line ended the session.
    pub shutdown: bool,
}

/// The plan server: configuration plus the shared content-addressed
/// cache. One instance serves any number of batches, stdin sessions and
/// TCP connections; the cache persists across all of them.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    cache: PlanCache,
    shutting_down: AtomicBool,
}

fn obs_counter(name: &str, key: &str, delta: u64) {
    if let Some(obs) = cta_obs::maybe_global() {
        obs.counter(name, key, delta);
    }
}

fn obs_hist(name: &str, key: &str, sample: u64) {
    if let Some(obs) = cta_obs::maybe_global() {
        obs.hist(name, key, sample);
    }
}

impl Server {
    /// A server with the given configuration and an empty cache.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            cfg,
            cache: PlanCache::new(),
            shutting_down: AtomicBool::new(false),
        }
    }

    /// The shared plan cache (tests read its conservation counters).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Snapshot of the cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        if self.cfg.threads == 0 {
            cluster_bench::par::configured_threads()
        } else {
            self.cfg.threads
        }
    }

    /// Answers one request line: parse, deadline check, cache lookup or
    /// plan, render. Always returns exactly one response line (no
    /// trailing newline). Pure in the request's semantic content —
    /// the foundation of both the cache and cross-thread determinism.
    ///
    /// `enqueued` is the queue-entry timestamp for deadline accounting;
    /// batch callers pass `None` (a fresh request cannot be late).
    pub fn answer(&self, line: &str, enqueued: Option<Instant>) -> String {
        let started = Instant::now();
        obs_counter("serve/requests", "all", 1);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err((id, err)) => {
                obs_counter("serve/errors", err.code, 1);
                obs_counter("serve/responses", "error", 1);
                return render_error(&id, &err, None);
            }
        };
        if let Some(t0) = enqueued {
            let wait_us = t0.elapsed().as_micros() as u64;
            obs_hist("time/serve/queue_wait_us", "all", wait_us);
            let deadline = req.deadline_ms.or(self.cfg.default_deadline_ms);
            if let Some(ms) = deadline {
                if wait_us > ms.saturating_mul(1000) {
                    let err = ProtoError::new(
                        "deadline",
                        format!("request waited {wait_us}us, past its {ms}ms deadline"),
                    );
                    obs_counter("serve/errors", err.code, 1);
                    obs_counter("serve/responses", "error", 1);
                    return render_error(&req.id, &err, None);
                }
            }
        }
        let (outcome, hit) = self.cache.get_or_plan(req.digest(), || plan_request(&req));
        obs_counter("serve/cache", if hit { "hit" } else { "miss" }, 1);
        let rendered = match &outcome {
            Ok(body) => {
                obs_counter("serve/responses", "plan", 1);
                body.render(&req.id)
            }
            Err(err) => {
                obs_counter("serve/errors", err.code, 1);
                obs_counter("serve/responses", "error", 1);
                render_error(&req.id, err, None)
            }
        };
        obs_hist(
            "time/serve/latency_us",
            req.mode.as_str(),
            started.elapsed().as_micros() as u64,
        );
        rendered
    }

    /// Answers a batch of request lines in input order, fanning the work
    /// across the worker pool via [`cluster_bench::par::par_map`]. This
    /// is the path the soak tests, the golden tests and the benchmark
    /// drive; it never sheds (there is no queue to overflow).
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        cluster_bench::par::par_map(lines, self.threads(), |line| self.answer(line, None))
    }

    fn is_shutdown_line(line: &str) -> bool {
        line.contains("\"op\"")
            && cta_obs::parse_json(line)
                .ok()
                .and_then(|doc| doc.get("op").and_then(|v| v.as_str()).map(String::from))
                .as_deref()
                == Some("shutdown")
    }

    /// Serves one line-delimited session: reads requests from `input`
    /// until EOF or a `{"op":"shutdown"}` control line, writes exactly
    /// one response line per request line, in request order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the input or output stream.
    pub fn serve_lines<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> std::io::Result<ServeSummary> {
        let threads = self.threads();
        let mut summary = ServeSummary::default();
        let in_flight = AtomicUsize::new(0);
        // Workers pull (seq, line, enqueue time); the writer reorders
        // (seq, response) back into input order.
        let (work_tx, work_rx) = mpsc::channel::<(u64, String, Instant)>();
        let work_rx = Mutex::new(work_rx);
        let (done_tx, done_rx) = mpsc::channel::<(u64, String)>();
        let written = AtomicU64::new(0);
        let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

        std::thread::scope(|scope| -> std::io::Result<()> {
            let io_error = &io_error;
            let written = &written;
            let writer = scope.spawn(move || {
                let mut output = output;
                let mut next = 0u64;
                let mut held = BinaryHeap::new();
                for (seq, resp) in done_rx.iter() {
                    held.push(std::cmp::Reverse((seq, resp)));
                    while held.peek().is_some_and(|r| r.0 .0 == next) {
                        let std::cmp::Reverse((_, line)) = held.pop().expect("peeked");
                        if let Err(e) = writeln!(output, "{line}").and_then(|()| output.flush()) {
                            *io_error.lock().expect("io slot") = Some(e);
                            return;
                        }
                        next += 1;
                        written.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            for _ in 0..threads {
                let work_rx = &work_rx;
                let done_tx = done_tx.clone();
                let in_flight = &in_flight;
                scope.spawn(move || loop {
                    let job = work_rx.lock().expect("work queue").recv();
                    let Ok((seq, line, t0)) = job else { break };
                    let resp = self.answer(&line, Some(t0));
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    if done_tx.send((seq, resp)).is_err() {
                        break;
                    }
                });
            }

            let mut seq = 0u64;
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                summary.requests += 1;
                if Self::is_shutdown_line(&line) {
                    self.shutting_down.store(true, Ordering::Relaxed);
                    summary.shutdown = true;
                    let id = cta_obs::parse_json(&line)
                        .ok()
                        .and_then(|d| d.get("id").and_then(|v| v.as_str()).map(String::from))
                        .unwrap_or_default();
                    let bye = format!(
                        "{{\"proto\":\"{}\",\"id\":\"{}\",\"ok\":\"shutting-down\"}}",
                        crate::proto::PROTO,
                        crate::proto::json_escape(&id)
                    );
                    let _ = done_tx.send((seq, bye));
                    break;
                }
                let queued = in_flight.load(Ordering::Relaxed);
                if self.cfg.queue_cap > 0 && queued >= self.cfg.queue_cap {
                    summary.shed += 1;
                    obs_counter("serve/shed", "overload", 1);
                    let id = cta_obs::parse_json(&line)
                        .ok()
                        .and_then(|d| d.get("id").and_then(|v| v.as_str()).map(String::from))
                        .unwrap_or_default();
                    let err = ProtoError::new(
                        "overload",
                        format!(
                            "{queued} requests in flight at a cap of {}",
                            self.cfg.queue_cap
                        ),
                    );
                    let resp = render_error(&id, &err, Some(self.cfg.retry_after_ms));
                    let _ = done_tx.send((seq, resp));
                } else {
                    in_flight.fetch_add(1, Ordering::Relaxed);
                    work_tx
                        .send((seq, line, Instant::now()))
                        .expect("workers alive");
                }
                seq += 1;
            }
            // EOF (or shutdown): close the work queue so workers drain
            // and exit, then the done channel so the writer flushes.
            drop(work_tx);
            drop(done_tx);
            let _ = writer;
            Ok(())
        })?;
        if let Some(e) = io_error.into_inner().expect("io slot") {
            return Err(e);
        }
        summary.responses = written.into_inner();
        Ok(summary)
    }

    /// Accept loop: serves connections one at a time (each connection
    /// gets the full worker pool; the cache persists across them) until
    /// a client sends the shutdown control line.
    ///
    /// # Errors
    ///
    /// Propagates accept/stream failures.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let reader = BufReader::new(stream.try_clone()?);
            let summary = self.serve_lines(reader, stream)?;
            if summary.shutdown {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(threads: usize) -> Server {
        Server::new(ServerConfig {
            threads,
            queue_cap: 0,
            ..ServerConfig::default()
        })
    }

    fn mix() -> Vec<String> {
        let mut lines = Vec::new();
        for i in 0..12 {
            let app = ["MM", "NW", "BS", "HS"][i % 4];
            lines.push(format!(r#"{{"id":"r{i}","gpu":"GTX570","app":"{app}"}}"#));
        }
        lines.push("{broken".into());
        lines.push(r#"{"id":"u","gpu":"GTX570","app":"NOPE"}"#.into());
        lines
    }

    #[test]
    fn batch_output_is_in_input_order_and_thread_invariant() {
        let serial: Vec<String> = {
            let s = server(1);
            s.handle_batch(&mix())
        };
        for (i, resp) in serial.iter().take(12).enumerate() {
            assert!(resp.contains(&format!("\"id\":\"r{i}\"")), "{resp}");
        }
        let parallel = server(4).handle_batch(&mix());
        assert_eq!(serial, parallel, "responses byte-identical across pools");
    }

    #[test]
    fn cache_collapses_duplicates_in_a_batch() {
        let s = server(4);
        s.handle_batch(&mix());
        let stats = s.cache_stats();
        // 12 well-formed app requests over 4 distinct apps, plus the
        // unknown-app request (cached too); the parse failure never
        // reaches the cache.
        assert_eq!(stats.lookups, 13);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
    }

    #[test]
    fn serve_lines_answers_every_line_in_order() {
        let input = mix().join("\n");
        let mut out = Vec::new();
        let s = server(3);
        let summary = s
            .serve_lines(input.as_bytes(), &mut out)
            .expect("session runs");
        assert_eq!(summary.requests, 14);
        assert_eq!(summary.responses, 14);
        assert_eq!(summary.shed, 0);
        assert!(!summary.shutdown);
        let written = String::from_utf8(out).expect("utf8");
        let batch = server(1).handle_batch(&mix());
        let expect: String = batch.iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(written, expect, "stream path matches batch path");
    }

    #[test]
    fn shutdown_line_ends_the_session() {
        let input = format!(
            "{}\n{}\n{}\n",
            r#"{"id":"a","gpu":"GTX570","app":"NW"}"#,
            r#"{"id":"bye","op":"shutdown"}"#,
            r#"{"id":"never","gpu":"GTX570","app":"MM"}"#
        );
        let mut out = Vec::new();
        let s = server(2);
        let summary = s.serve_lines(input.as_bytes(), &mut out).expect("session");
        assert!(summary.shutdown);
        assert_eq!(summary.responses, 2, "shutdown answered, tail never read");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("shutting-down"));
        assert!(!text.contains("\"id\":\"never\""));
    }

    #[test]
    fn tiny_queue_sheds_with_retry_after() {
        // One worker, capacity 1: with many instant arrivals from a
        // pre-buffered reader, some requests must overflow.
        let s = Server::new(ServerConfig {
            threads: 1,
            queue_cap: 1,
            retry_after_ms: 7,
            default_deadline_ms: None,
        });
        let lines: Vec<String> = (0..64)
            .map(|i| format!(r#"{{"id":"q{i}","gpu":"GTX570","app":"MM"}}"#))
            .collect();
        let input = lines.join("\n");
        let mut out = Vec::new();
        let summary = s.serve_lines(input.as_bytes(), &mut out).expect("session");
        assert_eq!(summary.responses, 64, "shed requests are still answered");
        assert!(summary.shed > 0, "capacity 1 must shed under a 64-burst");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"error\":\"overload\""));
        assert!(text.contains("\"retry_after_ms\":7"));
    }

    #[test]
    fn stale_requests_miss_their_deadline() {
        let s = server(1);
        let stale = Instant::now() - std::time::Duration::from_millis(50);
        let resp = s.answer(
            r#"{"id":"d","gpu":"GTX570","app":"NW","deadline_ms":10}"#,
            Some(stale),
        );
        assert!(resp.contains("\"error\":\"deadline\""), "{resp}");
        let fresh = s.answer(
            r#"{"id":"d","gpu":"GTX570","app":"NW","deadline_ms":10}"#,
            None,
        );
        assert!(fresh.contains("\"category\""), "{fresh}");
    }
}
