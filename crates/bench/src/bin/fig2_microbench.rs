//! Regenerates the paper's Figure 2: per-CTA access cycles on the SM
//! holding CTA 0, under default (temporal locality) and staggered
//! (spatial locality) execution, for all four architectures.

use cluster_bench::fig2;
use cluster_bench::report::Table;
use cta_clustering::ClusterError;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("fig2_microbench", run)
}

fn run() -> Result<(), ClusterError> {
    println!("Figure 2: exploiting inter-CTA reuse on the SM that holds CTA-0");
    println!("(A) default scheduling = temporal locality; (B) staggered = spatial locality");
    println!();
    for cfg in gpu_sim::arch::all_presets() {
        let (default, staggered) = fig2::run_gpu(&cfg)?;
        for panel in [&default, &staggered] {
            println!(
                "--- {} {} ({} CTAs, observed SM {}; L1 ~{} cycles, L2 ~{} cycles) ---",
                panel.gpu,
                if panel.staggered {
                    "(B) staggered"
                } else {
                    "(A) default"
                },
                panel.ctas,
                panel.observed_sm,
                panel.l1_latency,
                panel.l2_latency,
            );
            let mut t = Table::new(&["CTA id", "access cycles", "class"]);
            for p in &panel.series {
                let class = if p.cycles <= (panel.l1_latency as u64 * 6) / 5 {
                    "L1"
                } else if p.cycles <= panel.l2_latency as u64 {
                    "L2"
                } else {
                    "DRAM/reserved"
                };
                t.row(vec![p.cta.to_string(), p.cycles.to_string(), class.into()]);
            }
            print!("{t}");
            println!(
                "summary: {} CTAs at the L1 plateau, {} above the L2 plateau, of {}",
                panel.l1_class(),
                panel.slow_class(),
                panel.series.len()
            );
            println!();
        }
    }
    println!("paper shape: only (part of) the first turnaround pays the long");
    println!("latency; every later CTA on the same SM lands at the L1 plateau.");
    Ok(())
}
