//! Benchmarks the simulator core itself: wall-clock over the Figure 12
//! request matrix, engine event accounting, and program-cache
//! effectiveness, emitted as a single JSON document (`sim-core-bench/v1`)
//! on stdout.
//!
//! Every run is checked against the engine's conservation laws
//! (issues == instructions, one dispatch poll per CTA retirement, ...);
//! any violation is reported on stderr and the process exits nonzero, so
//! CI can gate on it.
//!
//! Usage:
//!   sim_core [--reduced] [--before <seconds>] [--out <path>]
//!
//! `--reduced` runs a small Fermi-only subset (the CI smoke matrix).
//! `--before` overrides the committed pre-rework baseline wall time the
//! speedup is normalized against (full matrix, 1 thread).
//! `--out` additionally writes the JSON to a file.

use cluster_bench::{AppPlan, SimRequest};
use cta_clustering::ClusterError;
use gpu_sim::{EngineMetrics, GpuConfig, RunStats};
use std::time::Instant;

/// Wall-clock of the full request matrix at 1 thread on the cycle-stepped
/// engine this bin's rework replaced (commit 2ceca1b, `fig12_speedup`).
const BASELINE_COMMIT: &str = "2ceca1b";
const BASELINE_WALL_S: f64 = 188.4;

fn main() -> Result<(), ClusterError> {
    cluster_bench::tune_allocator();
    let mut reduced = false;
    let mut verbose = false;
    let mut before = BASELINE_WALL_S;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--verbose" => verbose = true,
            "--before" => {
                let v = args
                    .next()
                    .ok_or_else(|| ClusterError::harness("--before needs a value"))?;
                before = v
                    .parse()
                    .map_err(|e| ClusterError::harness(format!("--before {v:?}: {e}")))?;
            }
            "--out" => {
                out_path = Some(
                    args.next()
                        .ok_or_else(|| ClusterError::harness("--out needs a path"))?,
                );
            }
            other => {
                return Err(ClusterError::harness(format!(
                    "unknown argument {other:?}; usage: \
                     sim_core [--reduced] [--verbose] [--before <s>] [--out <path>]"
                )))
            }
        }
    }

    let configs: Vec<GpuConfig> = if reduced {
        vec![gpu_sim::arch::gtx570()]
    } else {
        gpu_sim::arch::all_presets().to_vec()
    };

    let t0 = Instant::now();
    let mut total = EngineMetrics::default();
    let mut runs = 0u64;
    let mut violations = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_fills = 0u64;

    // Serial on purpose: this bin measures the simulator core, not the
    // worker pool, and serial metrics aggregate deterministically.
    for cfg in &configs {
        let workloads = if reduced {
            ["NW", "BS", "HS"]
                .iter()
                .map(|a| {
                    gpu_kernels::suite::by_abbr(a, cfg.arch)
                        .ok_or_else(|| ClusterError::harness(format!("{a} not in suite")))
                })
                .collect::<Result<Vec<_>, _>>()?
        } else {
            gpu_kernels::suite::table2_suite(cfg.arch)
        };
        for workload in workloads {
            let plan = AppPlan::new(cfg, workload);
            let mut phase_a: Vec<RunStats> = Vec::new();
            for req in plan.phase_a() {
                phase_a.push(metered(
                    &plan,
                    req,
                    verbose,
                    &mut total,
                    &mut runs,
                    &mut violations,
                )?);
            }
            let chosen = plan.select_throttle(&phase_a);
            for req in plan.phase_b(chosen.0) {
                metered(&plan, req, verbose, &mut total, &mut runs, &mut violations)?;
            }
            let (hits, fills) = plan.cache_counters();
            cache_hits += hits;
            cache_fills += fills;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let skip_denom = total.issues + total.cycles_skipped;
    let skip_ratio = if skip_denom > 0 {
        total.cycles_skipped as f64 / skip_denom as f64
    } else {
        0.0
    };
    let cache_lookups = cache_hits + cache_fills;
    let hit_rate = if cache_lookups > 0 {
        cache_hits as f64 / cache_lookups as f64
    } else {
        0.0
    };
    let baseline = if reduced {
        "null".to_string()
    } else {
        format!(
            "{{\"commit\": \"{BASELINE_COMMIT}\", \"wall_s\": {BASELINE_WALL_S}, \"speedup\": {:.2}}}",
            before / wall_s
        )
    };
    let json = format!(
        "{{\n  \"format\": \"sim-core-bench/v1\",\n  \"mode\": \"{mode}\",\n  \"runs\": {runs},\n  \"wall_s\": {wall_s:.2},\n  \"baseline\": {baseline},\n  \"conservation_violations\": {violations},\n  \"engine\": {{\n    \"events\": {events},\n    \"issues\": {issues},\n    \"cycles_skipped\": {skipped},\n    \"skip_ratio\": {skip_ratio:.4},\n    \"warps_dispatched\": {warps},\n    \"warp_retires\": {warp_retires},\n    \"cta_retires\": {cta_retires},\n    \"dispatch_polls\": {polls}\n  }},\n  \"program_cache\": {{\n    \"hits\": {cache_hits},\n    \"fills\": {cache_fills},\n    \"hit_rate\": {hit_rate:.4}\n  }}\n}}",
        mode = if reduced { "reduced" } else { "full" },
        events = total.events,
        issues = total.issues,
        skipped = total.cycles_skipped,
        warps = total.warps_dispatched,
        warp_retires = total.warp_retires,
        cta_retires = total.cta_retires,
        polls = total.dispatch_polls,
    );
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| ClusterError::harness(format!("writing {path}: {e}")))?;
    }
    if violations > 0 {
        eprintln!("sim_core: {violations} conservation violation(s)");
        std::process::exit(1);
    }
    Ok(())
}

/// One metered run: accumulates the engine metrics and checks the
/// conservation laws, reporting (not aborting on) a violation so a
/// single broken invariant doesn't mask others.
fn metered(
    plan: &AppPlan,
    req: SimRequest,
    verbose: bool,
    total: &mut EngineMetrics,
    runs: &mut u64,
    violations: &mut u64,
) -> Result<RunStats, ClusterError> {
    let t0 = Instant::now();
    let (stats, metrics) = plan.run_metered(req)?;
    if verbose {
        eprintln!(
            "{}/{}/{}: {:.0}ms ({} issues)",
            plan.cfg.name,
            plan.info.abbr,
            req.label(),
            t0.elapsed().as_secs_f64() * 1e3,
            metrics.issues,
        );
    }
    if let Err(law) = metrics.check_conservation(&stats) {
        eprintln!(
            "conservation violation: {}/{}/{}: {law}",
            plan.cfg.name,
            plan.info.abbr,
            req.label()
        );
        *violations += 1;
    }
    total.events += metrics.events;
    total.issues += metrics.issues;
    total.cycles_skipped += metrics.cycles_skipped;
    total.warps_dispatched += metrics.warps_dispatched;
    total.warp_retires += metrics.warp_retires;
    total.cta_retires += metrics.cta_retires;
    total.dispatch_polls += metrics.dispatch_polls;
    *runs += 1;
    Ok(stats)
}
