//! Shape tests: the headline qualitative results of the paper must hold
//! in the reproduction — who wins, where, and in which direction.

use cluster_bench::{evaluate_app, Variant};
use gpu_kernels::suite;
use gpu_sim::{arch, ArchGen};

fn best_clustering(eval: &cluster_bench::AppEvaluation) -> f64 {
    [
        Variant::Clustering,
        Variant::ClusteringThrottled,
        Variant::ClusteringThrottledBypass,
    ]
    .iter()
    .map(|&v| eval.speedup(v))
    .fold(f64::MIN, f64::max)
}

#[test]
fn cache_line_apps_win_big_on_fermi() {
    // Paper: cache-line locality is a 128B-line phenomenon; Fermi gains.
    let w = suite::by_abbr("ATX", ArchGen::Fermi).unwrap();
    let eval = evaluate_app(&arch::gtx570(), w).expect("evaluation");
    assert!(
        eval.speedup(Variant::ClusteringThrottled) > 1.3,
        "ATX CLU+TOT on Fermi: {:.2}",
        eval.speedup(Variant::ClusteringThrottled)
    );
    assert!(
        eval.l2_norm(Variant::ClusteringThrottled) < 0.5,
        "ATX L2 must drop sharply, got {:.2}",
        eval.l2_norm(Variant::ClusteringThrottled)
    );
}

#[test]
fn cache_line_sharing_vanishes_on_short_line_archs() {
    // Paper: "for Maxwell and Pascal, the 32B cache line is just one
    // fourth of a load of a warp, hence hardly any inter-CTA reuse".
    let w = suite::by_abbr("SYK", ArchGen::Pascal).unwrap();
    let eval = evaluate_app(&arch::gtx1080(), w).expect("evaluation");
    // No meaningful L2 reduction from pure clustering.
    assert!(
        eval.l2_norm(Variant::Clustering) > 0.85,
        "SYK on Pascal should see no cache-line effect, got {:.2}",
        eval.l2_norm(Variant::Clustering)
    );
}

#[test]
fn algorithm_app_gains_on_both_generations() {
    for (cfg, arch_gen) in [
        (arch::gtx570(), ArchGen::Fermi),
        (arch::gtx980(), ArchGen::Maxwell),
    ] {
        let w = suite::by_abbr("NN", arch_gen).unwrap();
        let eval = evaluate_app(&cfg, w).expect("evaluation");
        assert!(
            best_clustering(&eval) > 1.15,
            "NN on {}: {:.2}",
            cfg.name,
            best_clustering(&eval)
        );
        assert!(eval.l2_norm(Variant::Clustering) < 0.6);
    }
}

#[test]
fn streaming_apps_are_unaffected() {
    // Paper Figure 12 right panels: ~1.0x everywhere.
    for abbr in ["BS", "MON"] {
        let w = suite::by_abbr(abbr, ArchGen::Kepler).unwrap();
        let eval = evaluate_app(&arch::tesla_k40(), w).expect("evaluation");
        let s = best_clustering(&eval);
        assert!(
            (0.9..1.15).contains(&s),
            "{abbr} should be ~1.0x, got {s:.2}"
        );
        let l2 = eval.l2_norm(Variant::Clustering);
        assert!((0.95..1.05).contains(&l2), "{abbr} L2 {l2:.2}");
    }
}

#[test]
fn agents_beat_redirection_where_locality_exists() {
    // The core claim: SM-based binding is the robust scheme.
    for abbr in ["NN", "SYK"] {
        let w = suite::by_abbr(abbr, ArchGen::Fermi).unwrap();
        let eval = evaluate_app(&arch::gtx570(), w).expect("evaluation");
        assert!(
            best_clustering(&eval) >= eval.speedup(Variant::Redirection) - 0.05,
            "{abbr}: agents {:.2} vs RD {:.2}",
            best_clustering(&eval),
            eval.speedup(Variant::Redirection)
        );
    }
}

#[test]
fn throttling_rescues_contention_bound_apps() {
    // Paper: S2K's optimum is 1 agent on Fermi/Kepler.
    let w = suite::by_abbr("S2K", ArchGen::Kepler).unwrap();
    let eval = evaluate_app(&arch::tesla_k40(), w).expect("evaluation");
    assert!(
        eval.speedup(Variant::ClusteringThrottled) > eval.speedup(Variant::Clustering),
        "TOT {:.2} must beat CLU {:.2} for S2K",
        eval.speedup(Variant::ClusteringThrottled),
        eval.speedup(Variant::Clustering)
    );
    assert!(eval.chosen_agents <= 2, "chosen {}", eval.chosen_agents);
}

#[test]
fn l2_reduction_accompanies_speedup() {
    // Paper observation (5): "when the L2 transactions decline, the
    // overall performance improves".
    let w = suite::by_abbr("MVT", ArchGen::Fermi).unwrap();
    let eval = evaluate_app(&arch::gtx570(), w).expect("evaluation");
    let tot = Variant::ClusteringThrottled;
    assert!(eval.speedup(tot) > 1.0);
    assert!(eval.l2_norm(tot) < 1.0);
}
