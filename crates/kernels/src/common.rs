//! Shared building blocks for the workload models: array address layout
//! and the recurring access-pattern primitives of GPU kernels.

use gpu_sim::{ArrayTag, MemAccess, Op};

/// Base byte address of a logical array. Arrays are placed in disjoint
/// 4GiB windows so patterns never alias across tags.
pub const fn array_base(tag: ArrayTag) -> u64 {
    (tag as u64) << 32
}

/// A coalesced warp read of `lanes` consecutive 4-byte words starting at
/// word `word` of array `tag`.
pub fn read_words(tag: ArrayTag, word: u64, lanes: u32) -> Op {
    Op::Load(MemAccess::coalesced(
        tag,
        array_base(tag) + word * 4,
        lanes,
        4,
    ))
}

/// A coalesced warp store of `lanes` consecutive 4-byte words.
pub fn write_words(tag: ArrayTag, word: u64, lanes: u32) -> Op {
    Op::Store(MemAccess::coalesced(
        tag,
        array_base(tag) + word * 4,
        lanes,
        4,
    ))
}

/// A column access into a row-major matrix: lane `l` reads word
/// `(row0 + l) * row_words + col`. This is the divergent
/// one-line-per-lane pattern behind the cache-line-related locality
/// category: each lane's miss drags a whole L1 line of its row into the
/// cache, and CTAs working on nearby columns of the same rows reuse those
/// lines.
pub fn read_column(tag: ArrayTag, row0: u64, row_words: u64, col: u64, lanes: u32) -> Op {
    let base = array_base(tag) + (row0 * row_words + col) * 4;
    Op::Load(MemAccess::strided(tag, base, lanes, row_words * 4, 4))
}

/// Column-access store (divergent scatter down a matrix column).
pub fn write_column(tag: ArrayTag, row0: u64, row_words: u64, col: u64, lanes: u32) -> Op {
    let base = array_base(tag) + (row0 * row_words + col) * 4;
    Op::Store(MemAccess::strided(tag, base, lanes, row_words * 4, 4))
}

/// An irregular gather: lane `l` reads the 4-byte word at
/// `indices[l]`. Used by the data-related workloads (graphs, trees,
/// histograms).
pub fn gather_words(tag: ArrayTag, indices: &[u64]) -> Op {
    let addrs = indices.iter().map(|w| array_base(tag) + w * 4).collect();
    Op::Load(MemAccess::gather(tag, addrs, 4))
}

/// An irregular scatter write.
pub fn scatter_words(tag: ArrayTag, indices: &[u64]) -> Op {
    let addrs = indices.iter().map(|w| array_base(tag) + w * 4).collect();
    Op::Store(MemAccess::gather(tag, addrs, 4))
}

/// The *row-panel* pattern shared by the PolyBench cache-line-related
/// workloads (SYK, S2K, ATX, MVT, BC): lane `l` of the warp walks
/// `words`-consecutive column words of its own matrix row `row0 + l`.
///
/// Each lane's first touch drags a whole L1 line of its row into the
/// cache. A CTA only consumes `words` (x4 bytes) of that line, so on
/// 128-byte-line architectures the rest is reusable by the CTAs covering
/// the *neighbouring column panels of the same rows* — line-granularity
/// inter-CTA sharing with zero word-granularity sharing, the signature of
/// the paper's cache-line category (Figure 4-(B)). On 32-byte-line
/// architectures a panel of `words >= 8` covers its fetch exactly and no
/// sharing is left, which is why the paper's cache-line gains vanish on
/// Maxwell/Pascal.
pub fn panel_reads(
    tag: ArrayTag,
    row0: u64,
    row_words: u64,
    col0: u64,
    words: u64,
    lanes: u32,
) -> Vec<Op> {
    (0..words)
        .map(|j| read_column(tag, row0, row_words, col0 + j, lanes))
        .collect()
}

/// A deterministic 64-bit mix (splitmix64 finalizer) used by the
/// irregular workloads to derive reproducible pseudo-random indices from
/// loop counters without carrying RNG state through `KernelSpec`'s
/// immutable interface.
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `mix64` folded into `[0, bound)`.
pub const fn mix_range(x: u64, bound: u64) -> u64 {
    mix64(x) % bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    #[test]
    fn arrays_do_not_alias() {
        assert_eq!(array_base(0), 0);
        assert_eq!(array_base(1), 1 << 32);
        assert!(array_base(2) > array_base(1));
    }

    #[test]
    fn read_words_is_coalesced() {
        let op = read_words(1, 10, 32);
        let a = op.access().unwrap();
        assert_eq!(a.addrs[0], array_base(1) + 40);
        // 32 consecutive words span at most two 128B lines.
        assert!(coalesce_lines(a, 128).len() <= 2);
        let aligned = read_words(1, 0, 32);
        assert_eq!(coalesce_lines(aligned.access().unwrap(), 128).len(), 1);
    }

    #[test]
    fn read_column_is_divergent() {
        let op = read_column(0, 0, 1024, 5, 32);
        let a = op.access().unwrap();
        // Each lane lands on its own 128B line.
        assert_eq!(coalesce_lines(a, 128).len(), 32);
        assert_eq!(a.addrs[1] - a.addrs[0], 4096);
    }

    #[test]
    fn gather_addresses_offset_by_base() {
        let op = gather_words(3, &[0, 7]);
        let a = op.access().unwrap();
        assert_eq!(a.addrs, vec![array_base(3), array_base(3) + 28]);
    }

    #[test]
    fn mix64_is_deterministic_and_spread() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(1), mix64(2));
        let r = mix_range(1234, 100);
        assert!(r < 100);
    }
}
