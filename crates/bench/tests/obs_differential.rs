//! Differential test for the observability layer: turning telemetry on
//! must not change a single byte of the figures. The fig12-style matrix
//! is evaluated with recording off, then again with recording forced on
//! (serially and across worker threads), and every `RunStats` and every
//! rendered table cell must match exactly.
//!
//! One `#[test]` on purpose: `cta_obs::force_enable` is process-wide and
//! irreversible, so the off-phase must run first and exactly once.

use cluster_bench::report::{ratio, Table};
use cluster_bench::{evaluate_apps_par, AppEvaluation, Variant};
use gpu_sim::arch;

fn workloads() -> Vec<Box<dyn gpu_kernels::Workload>> {
    ["NW", "BS"]
        .iter()
        .map(|a| gpu_kernels::suite::by_abbr(a, gpu_sim::ArchGen::Fermi).expect("suite app"))
        .collect()
}

/// Renders the fig12-style rows exactly as the bins do.
fn render(evals: &[AppEvaluation]) -> String {
    let mut t = Table::new(&["app", "RD", "CLU", "CLU+TOT", "+BPS", "PFH+TOT", "agents"]);
    for eval in evals {
        t.row(vec![
            eval.info.abbr.to_string(),
            ratio(eval.speedup(Variant::Redirection)),
            ratio(eval.speedup(Variant::Clustering)),
            ratio(eval.speedup(Variant::ClusteringThrottled)),
            ratio(eval.speedup(Variant::ClusteringThrottledBypass)),
            ratio(eval.speedup(Variant::PrefetchThrottled)),
            eval.chosen_agents.to_string(),
        ]);
    }
    t.render()
}

#[test]
fn telemetry_does_not_change_the_figures() {
    let cfg = arch::gtx570();

    // Phase 1: telemetry off (the test environment does not set
    // CLUSTER_OBS; if a caller exported it anyway, the comparison
    // below still must hold — it just degenerates to on-vs-on).
    let off_serial = evaluate_apps_par(&cfg, workloads(), 1).expect("off/serial evaluation");
    let off_par = evaluate_apps_par(&cfg, workloads(), 8).expect("off/parallel evaluation");
    let golden = render(&off_serial);
    assert_eq!(render(&off_par), golden, "thread-count determinism (off)");

    // Phase 2: telemetry on. Every simulation now streams through the
    // ObsSink, emits per-SM counters, spans, and queue clocks.
    cta_obs::force_enable();
    let on_serial = evaluate_apps_par(&cfg, workloads(), 1).expect("on/serial evaluation");
    let on_par = evaluate_apps_par(&cfg, workloads(), 8).expect("on/parallel evaluation");

    for (phase, on) in [("serial", &on_serial), ("8 threads", &on_par)] {
        assert_eq!(on.len(), off_serial.len());
        for (on_app, off_app) in on.iter().zip(&off_serial) {
            assert_eq!(on_app.info.abbr, off_app.info.abbr);
            assert_eq!(
                on_app.chosen_agents, off_app.chosen_agents,
                "{phase}: throttle choice"
            );
            for v in Variant::ALL {
                assert_eq!(
                    on_app.stats(v),
                    off_app.stats(v),
                    "{}: full stats, {phase}, telemetry on vs off",
                    v
                );
            }
        }
        assert_eq!(render(on), golden, "{phase}: rendered figure bytes");
    }

    // And the recording that piggybacked on phase 2 must itself be a
    // valid, conservation-clean export.
    let snap = cta_obs::global().snapshot();
    let jsonl = cta_obs::render_jsonl(&snap, "obs_differential");
    cta_obs::validate(&jsonl).expect("phase-2 export validates");
    assert!(
        snap.counter_total("sim/l1_reads") > 0,
        "instrumentation recorded cache traffic"
    );
    assert!(
        snap.span_count("GTX570/NW/BSL") >= 2,
        "each phase-2 evaluation opened a baseline span"
    );
}
