//! Regenerates the paper's Figure 3: percentage of inter- vs intra-CTA
//! reuse for 33 common GPU applications (paper average: ~45% inter-CTA).

use cluster_bench::fig3;
use cluster_bench::report::{pct, Table};
use cta_clustering::ClusterError;
use gpu_sim::ArchGen;

fn main() -> Result<(), ClusterError> {
    cluster_bench::with_obs("fig3_reuse", run)
}

fn run() -> Result<(), ClusterError> {
    println!("Figure 3: share of inter-CTA vs intra-CTA reuse (pre-L1 stream)");
    println!();
    let bars = fig3::profile_suite(ArchGen::Kepler)?;
    let mut t = Table::new(&["app", "Inter_CTA", "Intra_CTA", "reuse rate"]);
    for b in &bars {
        t.row(vec![
            b.abbr.to_string(),
            pct(b.inter),
            pct(b.intra),
            pct(b.summary.reuse_rate()),
        ]);
    }
    print!("{t}");
    println!();
    println!(
        "average inter-CTA share: {} (paper: ~45%)",
        pct(fig3::average_inter_share(&bars))
    );
    Ok(())
}
