//! Power-of-two-bucket histograms for logical quantities (reuse
//! distances, latencies in cycles).
//!
//! Buckets are keyed by `floor(log2(sample)) + 1` with bucket 0 reserved
//! for sample `0`, so bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`. The
//! bucketing is a pure function of the sample value, which makes
//! histogram merging commutative — the property the deterministic
//! exporter relies on when per-thread sinks are combined in any order.

/// A log2-bucketed histogram over `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Sparse buckets: `(bucket index, samples in bucket)`, kept sorted
    /// by index.
    buckets: Vec<(u8, u64)>,
}

/// The bucket a sample lands in: 0 for 0, otherwise `floor(log2(s)) + 1`.
pub fn bucket_of(sample: u64) -> u8 {
    (64 - sample.leading_zeros()) as u8
}

/// Inclusive value range `[lo, hi]` covered by a bucket index.
pub fn bucket_range(bucket: u8) -> (u64, u64) {
    match bucket {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.record_n(sample, 1);
    }

    /// Records `n` occurrences of `sample` at once — the flush path for
    /// sinks that already hold `(value, count)` aggregates (e.g. an exact
    /// reuse-distance histogram being folded into log2 buckets).
    pub fn record_n(&mut self, sample: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(sample.saturating_mul(n));
        let b = bucket_of(sample);
        match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (b, n)),
        }
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn absorb(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(b, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (b, n)),
            }
        }
    }

    /// The sparse `(bucket, count)` pairs, sorted by bucket index.
    pub fn buckets(&self) -> &[(u8, u64)] {
        &self.buckets
    }

    /// Total samples across buckets (equals [`Hist::count`] by
    /// construction; exposed so tests can state the conservation law).
    pub fn mass(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Mean sample value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), `None` when empty.
    ///
    /// Walks the buckets to the one containing the quantile rank and
    /// interpolates linearly inside its `[lo, hi]` value range — the
    /// standard estimate for pre-bucketed data. With log2 buckets the
    /// estimate is exact at bucket boundaries and within a factor of two
    /// elsewhere, which is the resolution service-latency reporting
    /// (p50/p90/p99 in the serve-bench artifact) needs; it is monotone
    /// in `q` and deterministic for a given bucket content.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [1, count]: the k-th smallest sample the quantile names.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            if seen + n >= rank {
                let (lo, hi) = bucket_range(b);
                // Position of the rank inside this bucket, in (0, 1].
                let within = (rank - seen) as f64 / n as f64;
                return Some(lo as f64 + (hi - lo) as f64 * within);
            }
            seen += n;
        }
        // Unreachable while mass() == count holds; be safe anyway.
        let (_, hi) = bucket_range(self.buckets.last()?.0);
        Some(hi as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in [0u8, 1, 2, 7, 63, 64] {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(bucket_of(hi), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn record_and_mass_conservation() {
        let mut h = Hist::new();
        for s in [0u64, 1, 1, 3, 900, u64::MAX] {
            h.record(s);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.mass(), 6);
        assert_eq!(h.buckets().iter().filter(|&&(b, _)| b == 1).count(), 1);
    }

    #[test]
    fn absorb_is_commutative() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for s in [1u64, 5, 5, 1024] {
            a.record(s);
        }
        for s in [0u64, 7, 1 << 40] {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.mass(), 7);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Hist::new();
        for s in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(s);
        }
        assert_eq!(Hist::new().quantile(0.5), None);
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Quantiles stay inside the bucket range of the recorded values
        // (the top sample 1024 lives in the [1024, 2047] bucket).
        assert!(h.quantile(0.0).unwrap() >= 1.0);
        assert!(p99 <= 2047.0);
        // A single-sample histogram pins every quantile to its bucket.
        let mut one = Hist::new();
        one.record(100);
        let (lo, hi) = bucket_range(bucket_of(100));
        for q in [0.0, 0.5, 1.0] {
            let v = one.quantile(q).unwrap();
            assert!(v >= lo as f64 && v <= hi as f64, "q={q} v={v}");
        }
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(Hist::new().mean(), None);
        let mut h = Hist::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), Some(15.0));
    }
}
