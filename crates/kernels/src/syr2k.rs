//! S2K — symmetric rank-2k update (PolyBench `syr2k`).
//!
//! `C = alpha*(A*B' + B*A') + beta*C`: like [`Syrk`](crate::Syrk) but
//! walking *two* input matrices per panel, doubling the row-panel
//! pressure. Table 2 shows it is the most throttling-sensitive
//! cache-line app (optimal agents 1/1 on Fermi/Kepler).

use crate::common::{panel_reads, write_column};
use crate::info::{PaperCategory, PartitionHint, Workload, WorkloadInfo};
use gpu_sim::{ArchGen, CtaContext, Dim3, KernelSpec, LaunchConfig, Op, Program};

const INFO: WorkloadInfo = WorkloadInfo {
    abbr: "S2K",
    full_name: "syr2k",
    description: "Symmetric rank-2k operations",
    category: PaperCategory::CacheLine,
    warps_per_cta: 8,
    partition: PartitionHint::X,
    opt_agents: [1, 1, 6, 6],
    regs: [33, 38, 33, 19],
    smem: 0,
    source: "PolyBench",
};

const TAG_A: u16 = 0;
const TAG_B: u16 = 1;
const TAG_C: u16 = 2;

const PANEL_WORDS: u64 = 8;

/// The syr2k workload model.
#[derive(Debug, Clone)]
pub struct Syr2k {
    /// Row blocks (256 rows each).
    pub grid_x: u32,
    /// Column panels.
    pub grid_y: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl Syr2k {
    /// Default evaluation-scale instance for `arch`.
    pub fn for_arch(arch: ArchGen) -> Self {
        Syr2k {
            grid_x: 4,
            grid_y: 28,
            regs: INFO.regs_for(arch),
        }
    }

    /// Custom-sized instance.
    pub fn new(grid_x: u32, grid_y: u32) -> Self {
        Syr2k {
            grid_x,
            grid_y,
            regs: INFO.regs[0],
        }
    }

    fn row_words(&self) -> u64 {
        self.grid_y as u64 * PANEL_WORDS
    }
}

impl KernelSpec for Syr2k {
    fn name(&self) -> String {
        format!("S2K({}x{})", self.grid_x, self.grid_y)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::plane(self.grid_x, self.grid_y), 256u32)
            .with_regs(self.regs)
            .with_smem(INFO.smem)
    }

    fn warp_program(&self, ctx: &CtaContext, warp: u32) -> Program {
        let (bx, by, _) = self.launch().grid.coords_row_major(ctx.cta);
        let row0 = bx as u64 * 256 + warp as u64 * 32;
        let col0 = by as u64 * PANEL_WORDS;
        let mut prog = Program::new();
        // A*B' pass then B*A' pass: each walks both input panels.
        for pass in 0..2 {
            prog.extend(panel_reads(
                TAG_A,
                row0,
                self.row_words(),
                col0,
                PANEL_WORDS,
                32,
            ));
            prog.extend(panel_reads(
                TAG_B,
                row0,
                self.row_words(),
                col0,
                PANEL_WORDS,
                32,
            ));
            prog.push(Op::Compute(10));
            let _ = pass;
        }
        prog.extend(panel_reads(TAG_C, row0, self.row_words(), col0, 2, 32));
        prog.push(write_column(TAG_C, row0, self.row_words(), col0, 32));
        prog
    }
}

impl Workload for Syr2k {
    fn info(&self) -> WorkloadInfo {
        INFO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::coalesce_lines;

    fn ctx(cta: u64) -> CtaContext {
        CtaContext {
            cta,
            sm_id: 0,
            slot: 0,
            arrival: 0,
            num_sms: 15,
        }
    }

    #[test]
    fn reads_both_inputs_per_pass() {
        let s = Syr2k::new(2, 4);
        let p = s.warp_program(&ctx(0), 0);
        let count = |tag| {
            p.iter()
                .filter(|op| op.access().map(|a| a.tag == tag).unwrap_or(false))
                .count()
        };
        assert_eq!(count(TAG_A), 2 * PANEL_WORDS as usize);
        assert_eq!(count(TAG_B), 2 * PANEL_WORDS as usize);
    }

    #[test]
    fn panel_lines_shared_across_same_bx_ctas() {
        let s = Syr2k::new(2, 8);
        let lines = |cta: u64| {
            (0..8)
                .flat_map(|w| s.warp_program(&ctx(cta), w))
                .filter_map(|op| op.access().cloned())
                .filter(|a| a.tag == TAG_B)
                .flat_map(|a| coalesce_lines(&a, 128))
                .collect::<std::collections::BTreeSet<_>>()
        };
        // ctas 0 and 2 share bx=0 (row-major, grid_x=2).
        assert!(lines(0).intersection(&lines(2)).count() > 0);
    }

    #[test]
    fn table2_metadata() {
        let s = Syr2k::for_arch(ArchGen::Kepler);
        assert_eq!(s.info().opt_agents_for(ArchGen::Kepler), 1);
        assert_eq!(s.regs, 38);
        assert_eq!(s.info().partition, PartitionHint::X);
    }
}
