//! Golden tests for `analyze --explain`: one code per lint family
//! (CL0xx transforms/IR/plan, CL1xx concurrency/protocol, CL2xx cost
//! model, CL3xx set-conflict model). The goldens pin the exact bytes
//! the binary prints, so a wording or formatting change is a deliberate
//! golden update, not an accident.

use cta_analyzer::explain::render;

fn check(query: &str, golden: &str) {
    let rendered = render(query).unwrap_or_else(|| panic!("{query} must resolve"));
    assert_eq!(
        rendered, golden,
        "--explain {query} drifted from its golden; \
         regenerate crates/analyzer/tests/golden/ if intentional"
    );
}

#[test]
fn explain_cl012_matches_golden() {
    check("CL012", include_str!("golden/explain_CL012.txt"));
}

#[test]
fn explain_cl110_matches_golden() {
    check("CL110", include_str!("golden/explain_CL110.txt"));
}

#[test]
fn explain_cl202_matches_golden() {
    check("CL202", include_str!("golden/explain_CL202.txt"));
}

#[test]
fn explain_cl302_matches_golden() {
    check("CL302", include_str!("golden/explain_CL302.txt"));
}
