//! Workload metadata: the characteristics the paper tabulates in Table 2.

use gpu_sim::{ArchGen, KernelSpec};
use std::fmt;

/// The paper's locality-source category of a workload (Table 2
/// "Category"; Figure 4 defines the five patterns, and BFS carries the
/// combined "Data & Writing" label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperCategory {
    /// Inter-CTA reuse inherent in the algorithm.
    Algorithm,
    /// Inter-CTA reuse introduced by long L1 cache lines.
    CacheLine,
    /// Reuse dependent on irregular runtime data.
    Data,
    /// Reuse destroyed by write-evict interference.
    Write,
    /// Both data- and write-related (BFS).
    DataWrite,
    /// No reuse: coalesced, used-once streams.
    Streaming,
}

impl PaperCategory {
    /// Whether the paper treats this category's locality as exploitable by
    /// CTA-Clustering (§4.1).
    pub fn exploitable(&self) -> bool {
        matches!(self, PaperCategory::Algorithm | PaperCategory::CacheLine)
    }
}

impl fmt::Display for PaperCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PaperCategory::Algorithm => "Algorithm",
            PaperCategory::CacheLine => "Cache-line",
            PaperCategory::Data => "Data",
            PaperCategory::Write => "Writing",
            PaperCategory::DataWrite => "Data&Writing",
            PaperCategory::Streaming => "Streaming",
        })
    }
}

/// Which grid axis the paper's framework partitions the workload along
/// (Table 2 "Partition"): `X-P` clusters CTAs sharing a `blockIdx.x`
/// value (column-major indexing), `Y-P` clusters CTAs sharing a
/// `blockIdx.y` value (row-major indexing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionHint {
    /// Partition along X: column-major CTA indexing.
    X,
    /// Partition along Y: row-major CTA indexing.
    Y,
}

impl fmt::Display for PartitionHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionHint::X => "X-P",
            PartitionHint::Y => "Y-P",
        })
    }
}

/// Static description of one benchmark (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Paper abbreviation (e.g. `"MM"`).
    pub abbr: &'static str,
    /// Full application name.
    pub full_name: &'static str,
    /// One-line description (Table 2 "Description").
    pub description: &'static str,
    /// Locality-source category.
    pub category: PaperCategory,
    /// Warps per CTA (Table 2 "WP").
    pub warps_per_cta: u32,
    /// Partition axis the framework selects.
    pub partition: PartitionHint,
    /// Optimal active agents per SM for CTA throttling, per architecture
    /// in Table 1 order [Fermi, Kepler, Maxwell, Pascal]
    /// (Table 2 "Opt Agents").
    pub opt_agents: [u32; 4],
    /// Registers per thread, per architecture (Table 2 "Registers").
    pub regs: [u32; 4],
    /// Shared memory bytes per CTA (Table 2 "SMem").
    pub smem: u32,
    /// Benchmark suite of origin (Table 2 "Ref").
    pub source: &'static str,
}

impl WorkloadInfo {
    /// Index of `arch` into the per-architecture arrays.
    pub fn arch_index(arch: ArchGen) -> usize {
        match arch {
            ArchGen::Fermi => 0,
            ArchGen::Kepler => 1,
            ArchGen::Maxwell => 2,
            ArchGen::Pascal => 3,
        }
    }

    /// Registers per thread on `arch`.
    pub fn regs_for(&self, arch: ArchGen) -> u32 {
        self.regs[Self::arch_index(arch)]
    }

    /// Optimal throttling degree on `arch`.
    pub fn opt_agents_for(&self, arch: ArchGen) -> u32 {
        self.opt_agents[Self::arch_index(arch)]
    }
}

/// A benchmark workload: a simulatable kernel plus its Table 2 metadata.
///
/// `Send + Sync` is a supertrait bound so the evaluation harness can fan
/// workloads out across threads (`cluster_bench::par`); workload models
/// are pure data + arithmetic, so every implementor satisfies it
/// structurally.
pub trait Workload: KernelSpec + Send + Sync {
    /// Static characteristics (Table 2 row).
    fn info(&self) -> WorkloadInfo;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn info(&self) -> WorkloadInfo {
        (**self).info()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploitability_matches_paper() {
        assert!(PaperCategory::Algorithm.exploitable());
        assert!(PaperCategory::CacheLine.exploitable());
        assert!(!PaperCategory::Data.exploitable());
        assert!(!PaperCategory::Write.exploitable());
        assert!(!PaperCategory::DataWrite.exploitable());
        assert!(!PaperCategory::Streaming.exploitable());
    }

    #[test]
    fn arch_indexing() {
        assert_eq!(WorkloadInfo::arch_index(ArchGen::Fermi), 0);
        assert_eq!(WorkloadInfo::arch_index(ArchGen::Pascal), 3);
    }

    #[test]
    fn display_labels() {
        assert_eq!(PaperCategory::DataWrite.to_string(), "Data&Writing");
        assert_eq!(PartitionHint::X.to_string(), "X-P");
        assert_eq!(PartitionHint::Y.to_string(), "Y-P");
    }
}
